//! Binary encoding/decoding of the simulated ACPI tables.
//!
//! The layouts follow the spirit of ACPI: a signature + length +
//! revision + checksum header, then self-describing structures with a
//! type and a length field. Field widths differ slightly from the real
//! spec where the real widths are too narrow for our units (we store
//! u32 values directly instead of u16 entries scaled by a base unit);
//! this keeps the *code path* — parse, validate, tolerate unknown
//! structures — faithful without fixed-point gymnastics.

use crate::srat::{Srat, SratMemoryAffinity, SratProcessorAffinity};
use crate::tables::{
    DataType, Hmat, MemProximityAttrs, MemorySideCacheInfo, SystemLocalityLatencyBandwidth,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The signature did not match.
    BadSignature,
    /// The declared length disagrees with the buffer.
    BadLength,
    /// The checksum over the whole table is nonzero.
    BadChecksum,
    /// A structure was truncated or malformed.
    Truncated,
    /// A structure carried an invalid enum code.
    BadValue(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadSignature => write!(f, "bad table signature"),
            DecodeError::BadLength => write!(f, "table length mismatch"),
            DecodeError::BadChecksum => write!(f, "table checksum mismatch"),
            DecodeError::Truncated => write!(f, "truncated structure"),
            DecodeError::BadValue(what) => write!(f, "invalid value for {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const HMAT_SIG: &[u8; 4] = b"HMAT";
const SRAT_SIG: &[u8; 4] = b"SRAT";
const REVISION: u8 = 2;

const STRUCT_PROXIMITY: u16 = 0;
const STRUCT_SLLB: u16 = 1;
const STRUCT_CACHE: u16 = 2;

const SRAT_CPU: u16 = 0;
const SRAT_MEM: u16 = 1;

/// Finalizes a table: writes the real length and an ACPI-style checksum
/// (all bytes sum to 0 mod 256) into the header.
fn finalize(mut buf: BytesMut) -> Bytes {
    let len = buf.len() as u32;
    buf[4..8].copy_from_slice(&len.to_le_bytes());
    buf[9] = 0;
    let sum: u8 = buf.iter().fold(0u8, |a, &b| a.wrapping_add(b));
    buf[9] = 0u8.wrapping_sub(sum);
    buf.freeze()
}

fn header(sig: &[u8; 4]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_slice(sig);
    buf.put_u32_le(0); // length placeholder
    buf.put_u8(REVISION);
    buf.put_u8(0); // checksum placeholder
    buf
}

fn check_header(data: &[u8], sig: &[u8; 4]) -> Result<(), DecodeError> {
    if data.len() < 10 {
        return Err(DecodeError::Truncated);
    }
    if &data[0..4] != sig {
        return Err(DecodeError::BadSignature);
    }
    let len = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
    if len != data.len() {
        return Err(DecodeError::BadLength);
    }
    let sum: u8 = data.iter().fold(0u8, |a, &b| a.wrapping_add(b));
    if sum != 0 {
        return Err(DecodeError::BadChecksum);
    }
    Ok(())
}

/// Encodes an HMAT into its binary table form.
pub fn encode_hmat(hmat: &Hmat) -> Bytes {
    let mut buf = header(HMAT_SIG);
    for p in &hmat.proximity {
        buf.put_u16_le(STRUCT_PROXIMITY);
        buf.put_u32_le(2 + 4 + 1 + 4 + 4); // type + len + flag + 2 PDs
        buf.put_u8(p.initiator_pd.is_some() as u8);
        buf.put_u32_le(p.initiator_pd.unwrap_or(0));
        buf.put_u32_le(p.memory_pd);
    }
    for l in &hmat.localities {
        let body = 1 + 4 + 4 + 4 * l.initiators.len() + 4 * l.targets.len() + 4 * l.entries.len();
        buf.put_u16_le(STRUCT_SLLB);
        buf.put_u32_le((2 + 4 + body) as u32);
        buf.put_u8(l.data_type.code());
        buf.put_u32_le(l.initiators.len() as u32);
        buf.put_u32_le(l.targets.len() as u32);
        for &i in &l.initiators {
            buf.put_u32_le(i);
        }
        for &t in &l.targets {
            buf.put_u32_le(t);
        }
        for &e in &l.entries {
            buf.put_u32_le(e);
        }
    }
    for c in &hmat.caches {
        buf.put_u16_le(STRUCT_CACHE);
        buf.put_u32_le(2 + 4 + 4 + 8 + 4 + 1);
        buf.put_u32_le(c.memory_pd);
        buf.put_u64_le(c.size);
        buf.put_u32_le(c.line_size);
        buf.put_u8(c.level);
    }
    finalize(buf)
}

/// Decodes a binary HMAT, validating signature, length and checksum,
/// and skipping unknown structure types (forward compatibility, as a
/// real OS parser must).
pub fn decode_hmat(data: &Bytes) -> Result<Hmat, DecodeError> {
    check_header(data, HMAT_SIG)?;
    let mut cur = data.slice(10..);
    let mut hmat = Hmat::default();
    while cur.has_remaining() {
        if cur.remaining() < 6 {
            return Err(DecodeError::Truncated);
        }
        let stype = cur.get_u16_le();
        let slen = cur.get_u32_le() as usize;
        if slen < 6 || cur.remaining() + 6 < slen {
            return Err(DecodeError::Truncated);
        }
        let mut body = cur.slice(..slen - 6);
        cur.advance(slen - 6);
        match stype {
            STRUCT_PROXIMITY => {
                if body.remaining() < 9 {
                    return Err(DecodeError::Truncated);
                }
                let has_ini = body.get_u8() != 0;
                let ini = body.get_u32_le();
                let mem = body.get_u32_le();
                hmat.proximity.push(MemProximityAttrs {
                    initiator_pd: has_ini.then_some(ini),
                    memory_pd: mem,
                });
            }
            STRUCT_SLLB => {
                if body.remaining() < 9 {
                    return Err(DecodeError::Truncated);
                }
                let dt =
                    DataType::from_code(body.get_u8()).ok_or(DecodeError::BadValue("data type"))?;
                let ni = body.get_u32_le() as usize;
                let nt = body.get_u32_le() as usize;
                if body.remaining() < 4 * (ni + nt + ni * nt) {
                    return Err(DecodeError::Truncated);
                }
                let initiators: Vec<u32> = (0..ni).map(|_| body.get_u32_le()).collect();
                let targets: Vec<u32> = (0..nt).map(|_| body.get_u32_le()).collect();
                let entries: Vec<u32> = (0..ni * nt).map(|_| body.get_u32_le()).collect();
                hmat.localities.push(SystemLocalityLatencyBandwidth {
                    data_type: dt,
                    initiators,
                    targets,
                    entries,
                });
            }
            STRUCT_CACHE => {
                if body.remaining() < 17 {
                    return Err(DecodeError::Truncated);
                }
                let memory_pd = body.get_u32_le();
                let size = body.get_u64_le();
                let line_size = body.get_u32_le();
                let level = body.get_u8();
                hmat.caches.push(MemorySideCacheInfo { memory_pd, size, line_size, level });
            }
            _ => { /* unknown structure: skip */ }
        }
    }
    Ok(hmat)
}

/// Encodes an SRAT into its binary table form.
pub fn encode_srat(srat: &Srat) -> Bytes {
    let mut buf = header(SRAT_SIG);
    for p in &srat.processors {
        buf.put_u16_le(SRAT_CPU);
        buf.put_u32_le(2 + 4 + 4 + 4);
        buf.put_u32_le(p.pd);
        buf.put_u32_le(p.cpu);
    }
    for m in &srat.memory {
        buf.put_u16_le(SRAT_MEM);
        buf.put_u32_le(2 + 4 + 4 + 8 + 1);
        buf.put_u32_le(m.pd);
        buf.put_u64_le(m.bytes);
        buf.put_u8(m.hotplug as u8);
    }
    finalize(buf)
}

/// Decodes a binary SRAT.
pub fn decode_srat(data: &Bytes) -> Result<Srat, DecodeError> {
    check_header(data, SRAT_SIG)?;
    let mut cur = data.slice(10..);
    let mut srat = Srat::default();
    while cur.has_remaining() {
        if cur.remaining() < 6 {
            return Err(DecodeError::Truncated);
        }
        let stype = cur.get_u16_le();
        let slen = cur.get_u32_le() as usize;
        if slen < 6 || cur.remaining() + 6 < slen {
            return Err(DecodeError::Truncated);
        }
        let mut body = cur.slice(..slen - 6);
        cur.advance(slen - 6);
        match stype {
            SRAT_CPU => {
                if body.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                let pd = body.get_u32_le();
                let cpu = body.get_u32_le();
                srat.processors.push(SratProcessorAffinity { pd, cpu });
            }
            SRAT_MEM => {
                if body.remaining() < 13 {
                    return Err(DecodeError::Truncated);
                }
                let pd = body.get_u32_le();
                let bytes = body.get_u64_le();
                let hotplug = body.get_u8() != 0;
                srat.memory.push(SratMemoryAffinity { pd, bytes, hotplug });
            }
            _ => {}
        }
    }
    Ok(srat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hmat() -> Hmat {
        let mut bw = SystemLocalityLatencyBandwidth::new(
            DataType::AccessBandwidth,
            vec![0, 1],
            vec![0, 1, 2],
        );
        bw.set(0, 0, 131072);
        bw.set(1, 1, 131072);
        bw.set(0, 2, 78644);
        let mut lat =
            SystemLocalityLatencyBandwidth::new(DataType::AccessLatency, vec![0, 1], vec![0, 1, 2]);
        lat.set(0, 0, 26);
        lat.set(0, 2, 77);
        Hmat {
            proximity: vec![
                MemProximityAttrs { initiator_pd: Some(0), memory_pd: 0 },
                MemProximityAttrs { initiator_pd: Some(0), memory_pd: 2 },
                MemProximityAttrs { initiator_pd: None, memory_pd: 8 },
            ],
            localities: vec![bw, lat],
            caches: vec![MemorySideCacheInfo {
                memory_pd: 2,
                size: 192 << 30,
                line_size: 64,
                level: 1,
            }],
        }
    }

    #[test]
    fn hmat_roundtrip() {
        let h = sample_hmat();
        let bin = encode_hmat(&h);
        let back = decode_hmat(&bin).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn empty_hmat_roundtrip() {
        let h = Hmat::default();
        assert_eq!(decode_hmat(&encode_hmat(&h)).unwrap(), h);
    }

    #[test]
    fn srat_roundtrip() {
        let s = Srat {
            processors: (0..40).map(|c| SratProcessorAffinity { pd: c / 10, cpu: c }).collect(),
            memory: vec![
                SratMemoryAffinity { pd: 0, bytes: 96 << 30, hotplug: false },
                SratMemoryAffinity { pd: 2, bytes: 768 << 30, hotplug: true },
            ],
        };
        let bin = encode_srat(&s);
        assert_eq!(decode_srat(&bin).unwrap(), s);
    }

    #[test]
    fn bad_signature_rejected() {
        let bin = encode_hmat(&sample_hmat());
        assert_eq!(decode_srat(&bin), Err(DecodeError::BadSignature));
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let bin = encode_hmat(&sample_hmat());
        let mut v = bin.to_vec();
        let last = v.len() - 1;
        v[last] ^= 0xff;
        assert_eq!(decode_hmat(&Bytes::from(v)), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        let bin = encode_hmat(&sample_hmat());
        let mut v = bin.to_vec();
        v.truncate(v.len() - 3);
        let fixed_len = {
            // Re-fix length+checksum so only the *structure* is truncated.
            let len = v.len() as u32;
            v[4..8].copy_from_slice(&len.to_le_bytes());
            v[9] = 0;
            let sum: u8 = v.iter().fold(0u8, |a, &b| a.wrapping_add(b));
            v[9] = 0u8.wrapping_sub(sum);
            Bytes::from(v)
        };
        assert_eq!(decode_hmat(&fixed_len), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_structures_skipped() {
        // Append an unknown structure type and re-finalize.
        let h = sample_hmat();
        let bin = encode_hmat(&h);
        let mut v = bin.to_vec();
        v.extend_from_slice(&99u16.to_le_bytes());
        v.extend_from_slice(&10u32.to_le_bytes()); // type+len+4 bytes body
        v.extend_from_slice(&[1, 2, 3, 4]);
        let len = v.len() as u32;
        v[4..8].copy_from_slice(&len.to_le_bytes());
        v[9] = 0;
        let sum: u8 = v.iter().fold(0u8, |a, &b| a.wrapping_add(b));
        v[9] = 0u8.wrapping_sub(sum);
        assert_eq!(decode_hmat(&Bytes::from(v)).unwrap(), h);
    }
}
