//! The Linux sysfs reduction of HMAT data.
//!
//! Since Linux 5.2 (a change the paper's authors contributed to), HMAT
//! performance data is exported under
//! `/sys/devices/system/node/nodeN/accessM/initiators/{read,write}_{bandwidth,latency}`,
//! but **only for the best (local) initiator of each target** — the
//! full initiator×target matrix is not exposed. §IV-A1: "this is
//! currently limited to the performance of local accesses. Hence, it is
//! for instance currently impossible to compare the local DRAM with the
//! HBM of another processor."
//!
//! [`SysfsView`] models exactly that: from a full [`Hmat`] it keeps,
//! per target, the values of the initiator with the best access
//! latency (ties broken by bandwidth), i.e. what
//! `node*/access0/initiators` would contain.

use crate::srat::Srat;
use crate::tables::{DataType, Hmat};
use crate::ProximityDomain;
use hetmem_bitmap::Bitmap;

/// Local-only performance values for one target node, as Linux sysfs
/// would expose them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysfsNodePerf {
    /// The target proximity domain (== NUMA node OS index).
    pub target: ProximityDomain,
    /// The local initiator's CPU set (contents of
    /// `accessN/initiators/cpulist`).
    pub initiator_cpus: Bitmap,
    /// The initiator PD this came from.
    pub initiator_pd: ProximityDomain,
    /// `read_latency` in ns, if provided.
    pub read_latency: Option<u32>,
    /// `write_latency` in ns, if provided.
    pub write_latency: Option<u32>,
    /// `access latency` in ns, if provided.
    pub access_latency: Option<u32>,
    /// `read_bandwidth` in MB/s, if provided.
    pub read_bandwidth: Option<u32>,
    /// `write_bandwidth` in MB/s, if provided.
    pub write_bandwidth: Option<u32>,
    /// `access bandwidth` in MB/s, if provided.
    pub access_bandwidth: Option<u32>,
}

/// The sysfs-like, local-accesses-only view of an HMAT+SRAT pair.
#[derive(Debug, Clone, Default)]
pub struct SysfsView {
    nodes: Vec<SysfsNodePerf>,
}

impl SysfsView {
    /// Builds the view: for each memory target, picks the best
    /// initiator (lowest access latency, then highest access bandwidth)
    /// and keeps only that initiator's values — discarding the rest of
    /// the matrix like Linux does.
    ///
    /// When several initiators tie on the best values, their CPU sets
    /// are merged, exactly like `accessN/initiators/cpulist` lists
    /// every CPU with best-class access. This is why the paper's
    /// Fig. 5 reports the NVDIMM bandwidth "from Package L#0": both SNC
    /// groups of the package see identical performance to it.
    pub fn from_tables(hmat: &Hmat, srat: &Srat) -> Self {
        let mut nodes = Vec::new();
        for target in srat.target_domains() {
            let mut best: Option<(ProximityDomain, u32, u32)> = None;
            for ini in srat.initiator_domains() {
                let lat = hmat.value(DataType::AccessLatency, ini, target);
                let bw = hmat.value(DataType::AccessBandwidth, ini, target);
                if lat.is_none() && bw.is_none() {
                    continue;
                }
                let lat_key = lat.unwrap_or(u32::MAX);
                let bw_key = bw.unwrap_or(0);
                let better = match best {
                    None => true,
                    Some((_, bl, bb)) => lat_key < bl || (lat_key == bl && bw_key > bb),
                };
                if better {
                    best = Some((ini, lat_key, bw_key));
                }
            }
            let Some((ini, best_lat, best_bw)) = best else { continue };
            // Merge every initiator tying on the best values.
            let mut cpus = Bitmap::new();
            for other in srat.initiator_domains() {
                let lat = hmat.value(DataType::AccessLatency, other, target).unwrap_or(u32::MAX);
                let bw = hmat.value(DataType::AccessBandwidth, other, target).unwrap_or(0);
                if lat == best_lat && bw == best_bw {
                    cpus.or_assign(&srat.cpus_of(other));
                }
            }
            nodes.push(SysfsNodePerf {
                target,
                initiator_cpus: cpus,
                initiator_pd: ini,
                read_latency: hmat.value(DataType::ReadLatency, ini, target),
                write_latency: hmat.value(DataType::WriteLatency, ini, target),
                access_latency: hmat.value(DataType::AccessLatency, ini, target),
                read_bandwidth: hmat.value(DataType::ReadBandwidth, ini, target),
                write_bandwidth: hmat.value(DataType::WriteBandwidth, ini, target),
                access_bandwidth: hmat.value(DataType::AccessBandwidth, ini, target),
            });
        }
        SysfsView { nodes }
    }

    /// Per-node local performance entries, in target order.
    pub fn nodes(&self) -> &[SysfsNodePerf] {
        &self.nodes
    }

    /// The entry for one target node.
    pub fn node(&self, target: ProximityDomain) -> Option<&SysfsNodePerf> {
        self.nodes.iter().find(|n| n.target == target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srat::{SratMemoryAffinity, SratProcessorAffinity};
    use crate::tables::SystemLocalityLatencyBandwidth;

    /// Two initiators (PD 0, PD 1); target 2 is NVDIMM local to PD 0.
    fn tables() -> (Hmat, Srat) {
        let srat = Srat {
            processors: (0..8).map(|c| SratProcessorAffinity { pd: c / 4, cpu: c }).collect(),
            memory: vec![
                SratMemoryAffinity { pd: 0, bytes: 96 << 30, hotplug: false },
                SratMemoryAffinity { pd: 1, bytes: 96 << 30, hotplug: false },
                SratMemoryAffinity { pd: 2, bytes: 768 << 30, hotplug: true },
            ],
        };
        let mut lat =
            SystemLocalityLatencyBandwidth::new(DataType::AccessLatency, vec![0, 1], vec![0, 1, 2]);
        let mut bw = SystemLocalityLatencyBandwidth::new(
            DataType::AccessBandwidth,
            vec![0, 1],
            vec![0, 1, 2],
        );
        // Full matrix: remote accesses are worse.
        lat.set(0, 0, 26);
        lat.set(1, 1, 26);
        lat.set(0, 1, 80);
        lat.set(1, 0, 80);
        lat.set(0, 2, 77);
        lat.set(1, 2, 130);
        bw.set(0, 0, 131072);
        bw.set(1, 1, 131072);
        bw.set(0, 1, 40000);
        bw.set(1, 0, 40000);
        bw.set(0, 2, 78644);
        bw.set(1, 2, 30000);
        (Hmat { proximity: vec![], localities: vec![lat, bw], caches: vec![] }, srat)
    }

    #[test]
    fn keeps_best_initiator_only() {
        let (hmat, srat) = tables();
        let view = SysfsView::from_tables(&hmat, &srat);
        assert_eq!(view.nodes().len(), 3);
        let n2 = view.node(2).unwrap();
        // NVDIMM's best initiator is PD 0 (77ns beats 130ns).
        assert_eq!(n2.initiator_pd, 0);
        assert_eq!(n2.access_latency, Some(77));
        assert_eq!(n2.access_bandwidth, Some(78644));
        assert_eq!(n2.initiator_cpus.to_string(), "0-3");
    }

    #[test]
    fn remote_values_discarded() {
        let (hmat, srat) = tables();
        let view = SysfsView::from_tables(&hmat, &srat);
        // The view has exactly one entry per target: the cross-socket
        // 80ns/40GB values are gone — the paper's Linux limitation.
        let n0 = view.node(0).unwrap();
        assert_eq!(n0.initiator_pd, 0);
        assert_eq!(n0.access_latency, Some(26));
    }

    #[test]
    fn target_without_any_values_is_skipped() {
        let (mut hmat, mut srat) = tables();
        srat.memory.push(SratMemoryAffinity { pd: 9, bytes: 1 << 30, hotplug: false });
        hmat.localities.clear();
        let view = SysfsView::from_tables(&hmat, &srat);
        assert!(view.nodes().is_empty());
    }

    #[test]
    fn tie_broken_by_bandwidth() {
        let (mut hmat, srat) = tables();
        // Make initiator 1 tie on latency to target 2 but win on BW.
        if let Some(l) = hmat.localities.iter_mut().find(|l| l.data_type == DataType::AccessLatency)
        {
            l.set(1, 2, 77);
        }
        if let Some(b) =
            hmat.localities.iter_mut().find(|l| l.data_type == DataType::AccessBandwidth)
        {
            b.set(1, 2, 90000);
        }
        let view = SysfsView::from_tables(&hmat, &srat);
        assert_eq!(view.node(2).unwrap().initiator_pd, 1);
    }
}
