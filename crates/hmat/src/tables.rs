//! In-memory representation of the HMAT structures.

use crate::ProximityDomain;

/// Which metric a System Locality Latency & Bandwidth structure carries
/// (ACPI HMAT table 5-146, "Data Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Access latency (ns in our convention).
    AccessLatency,
    /// Read latency.
    ReadLatency,
    /// Write latency.
    WriteLatency,
    /// Access bandwidth (MB/s).
    AccessBandwidth,
    /// Read bandwidth.
    ReadBandwidth,
    /// Write bandwidth.
    WriteBandwidth,
}

impl DataType {
    /// ACPI encoding of the data type.
    pub fn code(self) -> u8 {
        match self {
            DataType::AccessLatency => 0,
            DataType::ReadLatency => 1,
            DataType::WriteLatency => 2,
            DataType::AccessBandwidth => 3,
            DataType::ReadBandwidth => 4,
            DataType::WriteBandwidth => 5,
        }
    }

    /// Decodes an ACPI data-type code.
    pub fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => DataType::AccessLatency,
            1 => DataType::ReadLatency,
            2 => DataType::WriteLatency,
            3 => DataType::AccessBandwidth,
            4 => DataType::ReadBandwidth,
            5 => DataType::WriteBandwidth,
            _ => return None,
        })
    }

    /// True for the latency variants.
    pub fn is_latency(self) -> bool {
        matches!(self, DataType::AccessLatency | DataType::ReadLatency | DataType::WriteLatency)
    }
}

/// HMAT structure type 0: associates a memory target PD with the
/// initiator PD "attached" to it (its local processors, if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemProximityAttrs {
    /// The initiator proximity domain; `None` when the target has no
    /// local processors (e.g. network-attached memory).
    pub initiator_pd: Option<ProximityDomain>,
    /// The memory target proximity domain.
    pub memory_pd: ProximityDomain,
}

/// HMAT structure type 1: a (initiators × targets) matrix for one data
/// type.
///
/// `entries[i * targets.len() + t]` is the value from `initiators[i]` to
/// `targets[t]`; [`Self::UNREACHABLE`] means "not provided" (the ACPI
/// spec uses an entry of 0xFFFF for this; we keep u32 values plus an
/// explicit sentinel so realistic MB/s magnitudes fit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemLocalityLatencyBandwidth {
    /// Which metric this matrix carries.
    pub data_type: DataType,
    /// Initiator proximity domains (row order).
    pub initiators: Vec<ProximityDomain>,
    /// Target proximity domains (column order).
    pub targets: Vec<ProximityDomain>,
    /// Row-major matrix values (ns or MB/s).
    pub entries: Vec<u32>,
}

impl SystemLocalityLatencyBandwidth {
    /// Sentinel for "value not provided by firmware".
    pub const UNREACHABLE: u32 = u32::MAX;

    /// Builds an empty (all-unprovided) matrix.
    pub fn new(
        data_type: DataType,
        initiators: Vec<ProximityDomain>,
        targets: Vec<ProximityDomain>,
    ) -> Self {
        let entries = vec![Self::UNREACHABLE; initiators.len() * targets.len()];
        SystemLocalityLatencyBandwidth { data_type, initiators, targets, entries }
    }

    /// Sets the value from `initiator` to `target`. Ignores unknown PDs.
    pub fn set(&mut self, initiator: ProximityDomain, target: ProximityDomain, value: u32) {
        if let (Some(i), Some(t)) = (
            self.initiators.iter().position(|&p| p == initiator),
            self.targets.iter().position(|&p| p == target),
        ) {
            self.entries[i * self.targets.len() + t] = value;
        }
    }

    /// Looks up the value from `initiator` to `target`.
    pub fn get(&self, initiator: ProximityDomain, target: ProximityDomain) -> Option<u32> {
        let i = self.initiators.iter().position(|&p| p == initiator)?;
        let t = self.targets.iter().position(|&p| p == target)?;
        let v = self.entries[i * self.targets.len() + t];
        (v != Self::UNREACHABLE).then_some(v)
    }

    /// Iterates over all provided `(initiator, target, value)` triples.
    pub fn provided(&self) -> impl Iterator<Item = (ProximityDomain, ProximityDomain, u32)> + '_ {
        self.initiators.iter().enumerate().flat_map(move |(i, &ini)| {
            self.targets.iter().enumerate().filter_map(move |(t, &tgt)| {
                let v = self.entries[i * self.targets.len() + t];
                (v != Self::UNREACHABLE).then_some((ini, tgt, v))
            })
        })
    }
}

/// HMAT structure type 2: a memory-side cache in front of a target PD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySideCacheInfo {
    /// The memory target PD this cache fronts.
    pub memory_pd: ProximityDomain,
    /// Cache capacity in bytes.
    pub size: u64,
    /// Cache line size in bytes.
    pub line_size: u32,
    /// Cache level counted from the memory side (1 = closest to memory).
    pub level: u8,
}

/// A full simulated HMAT.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hmat {
    /// Type-0 structures.
    pub proximity: Vec<MemProximityAttrs>,
    /// Type-1 structures, one per data type present.
    pub localities: Vec<SystemLocalityLatencyBandwidth>,
    /// Type-2 structures.
    pub caches: Vec<MemorySideCacheInfo>,
}

impl Hmat {
    /// Finds the matrix for a data type, if the firmware provided one.
    pub fn locality(&self, dt: DataType) -> Option<&SystemLocalityLatencyBandwidth> {
        self.localities.iter().find(|l| l.data_type == dt)
    }

    /// Convenience: value of `dt` from `initiator` to `target`.
    pub fn value(
        &self,
        dt: DataType,
        initiator: ProximityDomain,
        target: ProximityDomain,
    ) -> Option<u32> {
        self.locality(dt)?.get(initiator, target)
    }

    /// The memory-side cache fronting `target`, if any.
    pub fn cache_of(&self, target: ProximityDomain) -> Option<&MemorySideCacheInfo> {
        self.caches.iter().find(|c| c.memory_pd == target)
    }

    /// The initiator attached to `target` per type-0 structures.
    pub fn attached_initiator(&self, target: ProximityDomain) -> Option<ProximityDomain> {
        self.proximity.iter().find(|p| p.memory_pd == target).and_then(|p| p.initiator_pd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> SystemLocalityLatencyBandwidth {
        let mut m = SystemLocalityLatencyBandwidth::new(
            DataType::AccessBandwidth,
            vec![0, 1],
            vec![0, 1, 2],
        );
        m.set(0, 0, 131072);
        m.set(0, 2, 78644);
        m.set(1, 1, 131072);
        m
    }

    #[test]
    fn set_get_roundtrip() {
        let m = sample_matrix();
        assert_eq!(m.get(0, 0), Some(131072));
        assert_eq!(m.get(0, 2), Some(78644));
        assert_eq!(m.get(0, 1), None); // not provided
        assert_eq!(m.get(9, 0), None); // unknown PD
    }

    #[test]
    fn provided_iterates_only_set_entries() {
        let m = sample_matrix();
        let mut v: Vec<_> = m.provided().collect();
        v.sort();
        assert_eq!(v, vec![(0, 0, 131072), (0, 2, 78644), (1, 1, 131072)]);
    }

    #[test]
    fn data_type_codes_roundtrip() {
        for dt in [
            DataType::AccessLatency,
            DataType::ReadLatency,
            DataType::WriteLatency,
            DataType::AccessBandwidth,
            DataType::ReadBandwidth,
            DataType::WriteBandwidth,
        ] {
            assert_eq!(DataType::from_code(dt.code()), Some(dt));
        }
        assert_eq!(DataType::from_code(9), None);
    }

    #[test]
    fn hmat_queries() {
        let hmat = Hmat {
            proximity: vec![
                MemProximityAttrs { initiator_pd: Some(0), memory_pd: 2 },
                MemProximityAttrs { initiator_pd: None, memory_pd: 8 },
            ],
            localities: vec![sample_matrix()],
            caches: vec![MemorySideCacheInfo {
                memory_pd: 2,
                size: 1 << 30,
                line_size: 64,
                level: 1,
            }],
        };
        assert_eq!(hmat.value(DataType::AccessBandwidth, 0, 2), Some(78644));
        assert_eq!(hmat.value(DataType::AccessLatency, 0, 2), None);
        assert_eq!(hmat.cache_of(2).unwrap().size, 1 << 30);
        assert!(hmat.cache_of(0).is_none());
        assert_eq!(hmat.attached_initiator(2), Some(0));
        assert_eq!(hmat.attached_initiator(8), None);
    }
}
