//! Simulated ACPI tables describing heterogeneous memory performance.
//!
//! The paper's "native discovery" path (§IV-A1) reads the ACPI
//! **HMAT** (Heterogeneous Memory Attribute Table, ACPI ≥ 6.2), which
//! platform firmware uses to publish theoretical latency and bandwidth
//! between *initiators* (proximity domains containing processors) and
//! *memory targets* (proximity domains containing memory), plus
//! memory-side cache descriptions. Proximity-domain membership itself
//! comes from the **SRAT** (System Resource Affinity Table).
//!
//! Since no firmware is available in this reproduction, this crate plays
//! the firmware's role: it *encodes* platform performance descriptions
//! into binary tables (with length fields and checksums, close to the
//! real ACPI layouts) and *decodes* them back, so the discovery code in
//! `hetmem-core` exercises a genuine parse-the-hardware-table path.
//!
//! It also models the Linux limitation the paper highlights: sysfs
//! (`/sys/devices/system/node/nodeN/access0/initiators/`) only exposes
//! the performance of **local** accesses (best initiator per target).
//! [`SysfsView`] reproduces exactly that reduction, which is why
//! Figure 5 of the paper shows local-only values.

#![warn(missing_docs)]
mod encode;
mod srat;
mod sysfs;
mod tables;

pub use encode::{decode_hmat, decode_srat, encode_hmat, encode_srat, DecodeError};
pub use srat::{Srat, SratMemoryAffinity, SratProcessorAffinity};
pub use sysfs::SysfsView;
pub use tables::{
    DataType, Hmat, MemProximityAttrs, MemorySideCacheInfo, SystemLocalityLatencyBandwidth,
};

/// A proximity domain number. For memory targets we keep PD == the NUMA
/// node OS index; initiator PDs are the PDs that contain processors.
pub type ProximityDomain = u32;
