//! Simplified SRAT (System Resource Affinity Table).
//!
//! The SRAT defines proximity domains: which processors and which
//! memory ranges belong to each PD. The HMAT only makes sense together
//! with it — it is how the OS maps PD numbers to CPUs and NUMA nodes.

use crate::ProximityDomain;
use hetmem_bitmap::Bitmap;

/// Processor affinity: one entry per logical processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SratProcessorAffinity {
    /// The proximity domain the processor belongs to.
    pub pd: ProximityDomain,
    /// The logical processor (APIC id ≈ PU OS index here).
    pub cpu: u32,
}

/// Memory affinity: one entry per memory range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SratMemoryAffinity {
    /// The proximity domain the memory belongs to.
    pub pd: ProximityDomain,
    /// Length of the range in bytes (base addresses elided — our NUMA
    /// nodes are whole ranges).
    pub bytes: u64,
    /// Hot-pluggable flag (set for NVDIMM-backed nodes on real
    /// platforms; carried for realism).
    pub hotplug: bool,
}

/// A full simulated SRAT.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Srat {
    /// Processor entries.
    pub processors: Vec<SratProcessorAffinity>,
    /// Memory entries.
    pub memory: Vec<SratMemoryAffinity>,
}

impl Srat {
    /// The set of CPUs in a proximity domain.
    pub fn cpus_of(&self, pd: ProximityDomain) -> Bitmap {
        Bitmap::from_indices(self.processors.iter().filter(|p| p.pd == pd).map(|p| p.cpu as usize))
    }

    /// Total memory bytes in a proximity domain.
    pub fn memory_of(&self, pd: ProximityDomain) -> u64 {
        self.memory.iter().filter(|m| m.pd == pd).map(|m| m.bytes).sum()
    }

    /// All proximity domains mentioned, sorted.
    pub fn domains(&self) -> Vec<ProximityDomain> {
        let mut v: Vec<ProximityDomain> =
            self.processors.iter().map(|p| p.pd).chain(self.memory.iter().map(|m| m.pd)).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Proximity domains that contain processors (HMAT initiators).
    pub fn initiator_domains(&self) -> Vec<ProximityDomain> {
        let mut v: Vec<ProximityDomain> = self.processors.iter().map(|p| p.pd).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Proximity domains that contain memory (HMAT targets).
    pub fn target_domains(&self) -> Vec<ProximityDomain> {
        let mut v: Vec<ProximityDomain> = self.memory.iter().map(|m| m.pd).collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Srat {
        Srat {
            processors: (0..4).map(|c| SratProcessorAffinity { pd: c / 2, cpu: c }).collect(),
            memory: vec![
                SratMemoryAffinity { pd: 0, bytes: 1 << 30, hotplug: false },
                SratMemoryAffinity { pd: 1, bytes: 1 << 30, hotplug: false },
                SratMemoryAffinity { pd: 2, bytes: 8 << 30, hotplug: true },
            ],
        }
    }

    #[test]
    fn cpus_per_domain() {
        let s = sample();
        assert_eq!(s.cpus_of(0).to_string(), "0-1");
        assert_eq!(s.cpus_of(1).to_string(), "2-3");
        assert!(s.cpus_of(2).is_zero());
    }

    #[test]
    fn memory_per_domain() {
        let s = sample();
        assert_eq!(s.memory_of(2), 8 << 30);
        assert_eq!(s.memory_of(7), 0);
    }

    #[test]
    fn domain_classification() {
        let s = sample();
        assert_eq!(s.domains(), vec![0, 1, 2]);
        assert_eq!(s.initiator_domains(), vec![0, 1]);
        assert_eq!(s.target_domains(), vec![0, 1, 2]);
    }
}
