//! Property tests: arbitrary firmware tables survive the binary
//! encode/decode roundtrip, and corruption is always detected.

use hetmem_hmat::{
    decode_hmat, decode_srat, encode_hmat, encode_srat, DataType, Hmat, MemProximityAttrs,
    MemorySideCacheInfo, Srat, SratMemoryAffinity, SratProcessorAffinity,
    SystemLocalityLatencyBandwidth,
};
use proptest::prelude::*;

fn data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::AccessLatency),
        Just(DataType::ReadLatency),
        Just(DataType::WriteLatency),
        Just(DataType::AccessBandwidth),
        Just(DataType::ReadBandwidth),
        Just(DataType::WriteBandwidth),
    ]
}

prop_compose! {
    fn locality()(
        dt in data_type(),
        initiators in prop::collection::vec(0u32..32, 1..5),
        targets in prop::collection::vec(0u32..32, 1..5),
        seed in any::<u64>(),
    ) -> SystemLocalityLatencyBandwidth {
        let mut m = SystemLocalityLatencyBandwidth::new(dt, initiators.clone(), targets.clone());
        // Deterministically fill some entries.
        let mut x = seed;
        for &i in &initiators {
            for &t in &targets {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if x % 3 != 0 {
                    m.set(i, t, (x >> 32) as u32 % 1_000_000);
                }
            }
        }
        m
    }
}

prop_compose! {
    fn hmat()(
        localities in prop::collection::vec(locality(), 0..4),
        proximity in prop::collection::vec(
            (any::<bool>(), 0u32..32, 0u32..32).prop_map(|(has, i, m)| MemProximityAttrs {
                initiator_pd: has.then_some(i),
                memory_pd: m,
            }),
            0..5
        ),
        caches in prop::collection::vec(
            (0u32..32, 1u64..1 << 45, prop::sample::select(vec![64u32, 128]), 1u8..3)
                .prop_map(|(pd, size, line, level)| MemorySideCacheInfo {
                    memory_pd: pd, size, line_size: line, level,
                }),
            0..3
        ),
    ) -> Hmat {
        Hmat { proximity, localities, caches }
    }
}

prop_compose! {
    fn srat()(
        processors in prop::collection::vec(
            (0u32..16, 0u32..256).prop_map(|(pd, cpu)| SratProcessorAffinity { pd, cpu }),
            0..64
        ),
        memory in prop::collection::vec(
            (0u32..16, 1u64..1 << 45, any::<bool>())
                .prop_map(|(pd, bytes, hotplug)| SratMemoryAffinity { pd, bytes, hotplug }),
            0..16
        ),
    ) -> Srat {
        Srat { processors, memory }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hmat_roundtrip(h in hmat()) {
        let bin = encode_hmat(&h);
        prop_assert_eq!(decode_hmat(&bin).expect("roundtrip"), h);
    }

    #[test]
    fn srat_roundtrip(s in srat()) {
        let bin = encode_srat(&s);
        prop_assert_eq!(decode_srat(&bin).expect("roundtrip"), s);
    }

    #[test]
    fn single_byte_corruption_detected(h in hmat(), pos_seed in any::<u64>(), flip in 1u8..=255) {
        let bin = encode_hmat(&h).to_vec();
        let pos = (pos_seed % bin.len() as u64) as usize;
        let mut bad = bin.clone();
        bad[pos] ^= flip;
        // Either the checksum/length/signature rejects it, or — if the
        // flipped byte was the checksum itself... no: flipping the
        // checksum breaks the sum too. Decoding must never *succeed
        // silently with the same content and pass*; it may only fail.
        match decode_hmat(&bytes::Bytes::from(bad)) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(
                false,
                "corruption at byte {pos} (flip {flip:#04x}) went undetected: {decoded:?}"
            ),
        }
    }

    #[test]
    fn truncation_detected(h in hmat(), cut in 1usize..16) {
        let bin = encode_hmat(&h).to_vec();
        if bin.len() > cut {
            let mut bad = bin;
            let n = bad.len() - cut;
            bad.truncate(n);
            prop_assert!(decode_hmat(&bytes::Bytes::from(bad)).is_err());
        }
    }

    #[test]
    fn sysfs_view_never_widens(h in hmat(), s in srat()) {
        // The Linux reduction only keeps values that exist in the HMAT.
        let view = hetmem_hmat::SysfsView::from_tables(&h, &s);
        for n in view.nodes() {
            for (val, dt) in [
                (n.access_latency, DataType::AccessLatency),
                (n.access_bandwidth, DataType::AccessBandwidth),
                (n.read_latency, DataType::ReadLatency),
                (n.write_latency, DataType::WriteLatency),
                (n.read_bandwidth, DataType::ReadBandwidth),
                (n.write_bandwidth, DataType::WriteBandwidth),
            ] {
                if let Some(v) = val {
                    prop_assert_eq!(h.value(dt, n.initiator_pd, n.target), Some(v));
                }
            }
        }
    }
}
