//! `lstopo --memattrs`-style reporting (the paper's Fig. 5).

use crate::attrs::{attr, MemAttrs};
use hetmem_topology::ObjectType;
use std::fmt::Write;

/// Finds the hwloc-style name of the object whose cpuset equals the
/// initiator's (e.g. `Group0 L#0`, `Package L#1`), falling back to the
/// raw cpuset.
fn initiator_label(attrs: &MemAttrs, cpus: &hetmem_bitmap::Bitmap) -> String {
    let topo = attrs.topology();
    for t in [
        ObjectType::Machine,
        ObjectType::Package,
        ObjectType::Group,
        ObjectType::Core,
        ObjectType::Pu,
    ] {
        for obj in topo.objects_of_type(t) {
            if &obj.cpuset == cpus {
                return format!("{} L#{}", t.short_name(), obj.logical_index);
            }
        }
    }
    format!("cpuset {cpus}")
}

/// Renders the registry in the format of `lstopo --memattrs`
/// (Fig. 5): one block per attribute, one line per target (and per
/// initiator for performance attributes).
pub fn render_memattrs(attrs: &MemAttrs) -> String {
    let mut out = String::new();
    let topo = attrs.topology();
    for id in attrs.attributes() {
        let name = attrs.name(id).expect("listed attribute exists");
        writeln!(out, "Memory attribute #{} name '{}'", id.0, name).unwrap();
        let flags = attrs.flags(id).expect("listed attribute exists");
        for node in attrs.targets(id) {
            let logical = topo.numa_by_os_index(node).map(|o| o.logical_index).unwrap_or(node.0);
            if flags.need_initiator {
                for (ini, value) in attrs.initiators(id, node) {
                    writeln!(
                        out,
                        "  NUMANode L#{} = {} from {}",
                        logical,
                        value,
                        initiator_label(attrs, &ini)
                    )
                    .unwrap();
                }
            } else if let Ok(Some(value)) = attrs.get_value(id, node, None) {
                writeln!(out, "  NUMANode L#{} = {}", logical, value).unwrap();
            }
        }
    }
    out
}

/// Renders only the attributes the paper's Fig. 5 shows (Capacity,
/// Bandwidth, Latency), for a side-by-side comparison.
pub fn render_fig5(attrs: &MemAttrs) -> String {
    let mut out = String::new();
    let topo = attrs.topology();
    for id in [attr::CAPACITY, attr::BANDWIDTH, attr::LATENCY] {
        let name = attrs.name(id).expect("predefined");
        writeln!(out, "Memory attribute #{} name '{}'", id.0, name).unwrap();
        let flags = attrs.flags(id).expect("predefined");
        for node in attrs.targets(id) {
            let logical = topo.numa_by_os_index(node).map(|o| o.logical_index).unwrap_or(node.0);
            if flags.need_initiator {
                for (ini, value) in attrs.initiators(id, node) {
                    writeln!(
                        out,
                        "  NUMANode L#{} = {} from {}",
                        logical,
                        value,
                        initiator_label(attrs, &ini)
                    )
                    .unwrap();
                }
            } else if let Ok(Some(value)) = attrs.get_value(id, node, None) {
                writeln!(out, "  NUMANode L#{} = {}", logical, value).unwrap();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::discovery;
    use hetmem_memsim::Machine;
    use std::sync::Arc;

    #[test]
    fn fig5_shape_on_xeon() {
        let machine = Arc::new(Machine::xeon_1lm_snc());
        let attrs = discovery::from_firmware(&machine, true).unwrap();
        let out = super::render_fig5(&attrs);
        // The Fig. 5 landmarks.
        assert!(out.contains("Memory attribute #0 name 'Capacity'"));
        assert!(out.contains("Memory attribute #2 name 'Bandwidth'"));
        assert!(out.contains("Memory attribute #3 name 'Latency'"));
        assert!(out.contains("= 131072 from Group0 L#0"));
        assert!(out.contains("= 78644 from Package L#0"));
        assert!(out.contains("= 26 from Group0 L#0"));
        assert!(out.contains("= 77 from Package L#1"));
        // Six NUMA nodes listed under Bandwidth.
        assert_eq!(out.matches("from ").count(), 12); // 6 nodes × 2 attrs
    }

    #[test]
    fn full_render_includes_capacity_values() {
        let machine = Arc::new(Machine::xeon_1lm_snc());
        let attrs = discovery::from_firmware(&machine, true).unwrap();
        let out = super::render_memattrs(&attrs);
        // 96 GiB and 768 GiB in bytes, as in Fig. 5.
        assert!(out.contains(&(96u64 * 1024 * 1024 * 1024).to_string()));
        assert!(out.contains(&(768u64 * 1024 * 1024 * 1024).to_string()));
    }
}
