//! The memory performance attributes API — the paper's contribution.
//!
//! This crate reproduces the hwloc 2.3 `memattrs` extension presented
//! in *"Using Performance Attributes for Managing Heterogeneous Memory
//! in HPC Applications"* (Goglin & Rubio Proaño, PDSEC 2022):
//!
//! * memory **targets** (NUMA nodes) are characterized by a set of
//!   **attributes** — Capacity, Locality, Bandwidth, Latency, their
//!   Read/Write variants, and user-registered custom metrics;
//! * performance attributes are valued per **initiator** (a CPU set
//!   performing the accesses), since the same HBM is fast from its own
//!   cluster and slower from across the package;
//! * queries mirror Fig. 4 of the paper: [`MemAttrs::get_value`],
//!   [`MemAttrs::get_best_target`], [`MemAttrs::get_best_initiator`],
//!   plus the locality query `Topology::local_numa_nodes`
//!   (re-exported);
//! * values are **discovered** either natively from firmware tables
//!   ([`discovery`] decodes the simulated ACPI SRAT/HMAT binaries and
//!   applies the Linux local-accesses-only reduction) or fed by
//!   external benchmarks (`hetmem-membench`), matching Table I.
//!
//! The key design point reproduced from the paper: applications
//! **never name a memory technology**. They say "I want the target
//! with the best `Latency` from these cores" and get DRAM on a
//! DRAM+NVDIMM Xeon or either memory on a KNL — code stays portable.
//!
//! # Example
//!
//! ```
//! use hetmem_core::{attr, discovery};
//! use hetmem_memsim::Machine;
//! use std::sync::Arc;
//!
//! let machine = Arc::new(Machine::knl_snc4_flat());
//! let attrs = discovery::from_firmware(&machine, true).unwrap();
//!
//! // From cluster 0's cores, MCDRAM wins on bandwidth...
//! let cluster0 = "0-15".parse().unwrap();
//! let (best_bw, _) = attrs.get_best_target(attr::BANDWIDTH, &cluster0).unwrap();
//! assert_eq!(machine.topology().node_kind(best_bw).unwrap().subtype(), "HBM");
//!
//! // ...but DRAM wins on capacity, with no technology name anywhere.
//! let (best_cap, _) = attrs.get_best_target(attr::CAPACITY, &cluster0).unwrap();
//! assert_eq!(machine.topology().node_kind(best_cap).unwrap().subtype(), "DRAM");
//! ```

#![warn(missing_docs)]
mod attrs;
pub mod discovery;
mod error;
mod report;

pub use attrs::{attr, AttrError, AttrFlags, AttrId, MemAttrs, TargetValue};
pub use error::HetMemError;
pub use report::{render_fig5, render_memattrs};

pub use hetmem_topology::{LocalityFlags, NodeId, Topology};
