//! The unified error type of the hetmem stack.

use crate::AttrError;
use hetmem_memsim::AllocError;

/// Any failure the heterogeneous memory stack can report: attribute
/// registry errors, OS allocation errors, or the allocator finding no
/// candidate target.
///
/// Callers that combine the attribute API with allocation (the common
/// case — look up a ranking, then place buffers) can bubble everything
/// up as one type via `?`; the layer-specific errors (`AttrError`,
/// `AllocError`, `hetmem_alloc::HetAllocError`) all convert `Into`
/// this.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HetMemError {
    /// Attribute registry error.
    Attr(AttrError),
    /// OS-level allocation or migration error.
    Os(AllocError),
    /// No memory target qualifies for the requested criterion.
    NoCandidates,
    /// The request's initiator cpuset is empty after intersection with
    /// the machine cpuset.
    EmptyInitiator,
}

impl std::fmt::Display for HetMemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HetMemError::Attr(e) => write!(f, "{e}"),
            HetMemError::Os(e) => write!(f, "{e}"),
            HetMemError::NoCandidates => write!(f, "no candidate target for criterion"),
            HetMemError::EmptyInitiator => {
                write!(f, "initiator cpuset is empty after machine intersection")
            }
        }
    }
}

impl std::error::Error for HetMemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HetMemError::Attr(e) => Some(e),
            HetMemError::Os(e) => Some(e),
            HetMemError::NoCandidates | HetMemError::EmptyInitiator => None,
        }
    }
}

impl From<AttrError> for HetMemError {
    fn from(e: AttrError) -> Self {
        HetMemError::Attr(e)
    }
}

impl From<AllocError> for HetMemError {
    fn from(e: AllocError) -> Self {
        HetMemError::Os(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_topology::NodeId;

    #[test]
    fn converts_and_displays() {
        let e: HetMemError = AttrError::NeedInitiator.into();
        assert_eq!(e, HetMemError::Attr(AttrError::NeedInitiator));
        let e: HetMemError = AllocError::InvalidNode(NodeId(9)).into();
        assert!(e.to_string().contains("unknown NUMA node"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&HetMemError::NoCandidates).is_none());
    }
}
