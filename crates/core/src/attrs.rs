//! The attribute registry and its query API.

use hetmem_bitmap::Bitmap;
use hetmem_topology::{NodeId, ObjectType, Topology};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of a memory attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

/// Predefined attribute ids, numbered like hwloc 2.x.
pub mod attr {
    use super::AttrId;

    /// Node capacity in bytes (computed from the topology; no
    /// initiator). Higher is better.
    pub const CAPACITY: AttrId = AttrId(0);
    /// Number of PUs in the node's locality (computed; no initiator).
    /// Lower is better — fewer sharers means closer memory.
    pub const LOCALITY: AttrId = AttrId(1);
    /// Access bandwidth in MiB/s, per initiator. Higher is better.
    pub const BANDWIDTH: AttrId = AttrId(2);
    /// Access latency in ns, per initiator. Lower is better.
    pub const LATENCY: AttrId = AttrId(3);
    /// Read bandwidth in MiB/s.
    pub const READ_BANDWIDTH: AttrId = AttrId(4);
    /// Write bandwidth in MiB/s.
    pub const WRITE_BANDWIDTH: AttrId = AttrId(5);
    /// Read latency in ns.
    pub const READ_LATENCY: AttrId = AttrId(6);
    /// Write latency in ns.
    pub const WRITE_LATENCY: AttrId = AttrId(7);
    /// First id available for custom attributes.
    pub const FIRST_CUSTOM: AttrId = AttrId(8);
}

/// Behavioural flags of an attribute (hwloc's
/// `hwloc_memattr_flag_e`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrFlags {
    /// True when larger values are better (bandwidth, capacity); false
    /// when smaller values are better (latency, locality).
    pub higher_is_best: bool,
    /// True when values depend on the accessing initiator.
    pub need_initiator: bool,
}

/// One attribute's definition.
#[derive(Debug, Clone)]
struct AttrDef {
    name: String,
    flags: AttrFlags,
}

/// A stored value: optional initiator plus the value.
#[derive(Debug, Clone)]
struct StoredValue {
    initiator: Option<Bitmap>,
    value: u64,
}

/// A `(target, value)` pair returned by ranking queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetValue {
    /// The memory target.
    pub node: NodeId,
    /// The attribute value for the query's initiator.
    pub value: u64,
}

/// Errors from the attributes API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrError {
    /// The attribute id is not registered.
    UnknownAttr(AttrId),
    /// An attribute with this name already exists.
    DuplicateName(String),
    /// The attribute needs an initiator but none matched / none given.
    NeedInitiator,
    /// Capacity/Locality are computed from the topology, not settable.
    ReadOnly(AttrId),
    /// The target node does not exist in the topology.
    UnknownTarget(NodeId),
}

impl std::fmt::Display for AttrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrError::UnknownAttr(id) => write!(f, "unknown attribute #{}", id.0),
            AttrError::DuplicateName(n) => write!(f, "attribute {n:?} already registered"),
            AttrError::NeedInitiator => write!(f, "attribute requires an initiator"),
            AttrError::ReadOnly(id) => write!(f, "attribute #{} is computed, not settable", id.0),
            AttrError::UnknownTarget(n) => write!(f, "unknown target {n}"),
        }
    }
}

impl std::error::Error for AttrError {}

/// The memory attributes registry for one topology.
///
/// Performance values are stored per `(attribute, target, initiator)`.
/// Initiator matching on queries is widest-inclusion-first: a stored
/// value applies to a query initiator when the stored cpuset
/// **includes** the query (your threads run inside the measured
/// domain); if nothing includes it, an **intersecting** entry is used.
/// This lets a thread pinned to 2 cores use the value measured "from
/// Package L#0".
#[derive(Debug, Clone)]
pub struct MemAttrs {
    topology: Arc<Topology>,
    defs: BTreeMap<AttrId, AttrDef>,
    values: BTreeMap<(AttrId, NodeId), Vec<StoredValue>>,
    next_custom: u32,
}

impl MemAttrs {
    /// Creates the registry with the 8 predefined attributes.
    pub fn new(topology: Arc<Topology>) -> Self {
        let mut defs = BTreeMap::new();
        let mut def = |id: AttrId, name: &str, higher: bool, initiator: bool| {
            defs.insert(
                id,
                AttrDef {
                    name: name.to_string(),
                    flags: AttrFlags { higher_is_best: higher, need_initiator: initiator },
                },
            );
        };
        def(attr::CAPACITY, "Capacity", true, false);
        def(attr::LOCALITY, "Locality", false, false);
        def(attr::BANDWIDTH, "Bandwidth", true, true);
        def(attr::LATENCY, "Latency", false, true);
        def(attr::READ_BANDWIDTH, "ReadBandwidth", true, true);
        def(attr::WRITE_BANDWIDTH, "WriteBandwidth", true, true);
        def(attr::READ_LATENCY, "ReadLatency", false, true);
        def(attr::WRITE_LATENCY, "WriteLatency", false, true);
        MemAttrs { topology, defs, values: BTreeMap::new(), next_custom: attr::FIRST_CUSTOM.0 }
    }

    /// The topology this registry describes.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Registers a custom attribute (paper §IV: "The API also lets
    /// users create attributes for metrics characterizing memories
    /// under specific circumstances", e.g. a STREAM-Triad metric).
    pub fn register(&mut self, name: &str, flags: AttrFlags) -> Result<AttrId, AttrError> {
        if self.defs.values().any(|d| d.name == name) {
            return Err(AttrError::DuplicateName(name.to_string()));
        }
        let id = AttrId(self.next_custom);
        self.next_custom += 1;
        self.defs.insert(id, AttrDef { name: name.to_string(), flags });
        Ok(id)
    }

    /// Finds an attribute by name.
    pub fn by_name(&self, name: &str) -> Option<AttrId> {
        self.defs.iter().find(|(_, d)| d.name == name).map(|(&id, _)| id)
    }

    /// The attribute's name.
    pub fn name(&self, id: AttrId) -> Result<&str, AttrError> {
        self.defs.get(&id).map(|d| d.name.as_str()).ok_or(AttrError::UnknownAttr(id))
    }

    /// The attribute's flags.
    pub fn flags(&self, id: AttrId) -> Result<AttrFlags, AttrError> {
        self.defs.get(&id).map(|d| d.flags).ok_or(AttrError::UnknownAttr(id))
    }

    /// All registered attribute ids, predefined first.
    pub fn attributes(&self) -> Vec<AttrId> {
        self.defs.keys().copied().collect()
    }

    /// Sets the value of `id` for `target` (and `initiator`, when the
    /// attribute needs one). Overwrites an entry with the same
    /// initiator.
    pub fn set_value(
        &mut self,
        id: AttrId,
        target: NodeId,
        initiator: Option<&Bitmap>,
        value: u64,
    ) -> Result<(), AttrError> {
        let def = self.defs.get(&id).ok_or(AttrError::UnknownAttr(id))?;
        if id == attr::CAPACITY || id == attr::LOCALITY {
            return Err(AttrError::ReadOnly(id));
        }
        if def.flags.need_initiator && initiator.is_none() {
            return Err(AttrError::NeedInitiator);
        }
        if self.topology.numa_by_os_index(target).is_none() {
            return Err(AttrError::UnknownTarget(target));
        }
        let slot = self.values.entry((id, target)).or_default();
        let initiator = initiator.cloned();
        if let Some(existing) = slot.iter_mut().find(|s| s.initiator == initiator) {
            existing.value = value;
        } else {
            slot.push(StoredValue { initiator, value });
        }
        Ok(())
    }

    /// The value of `id` for `target` as seen from `initiator`
    /// (ignored for initiator-less attributes). Mirrors
    /// `hwloc_memattr_get_value`.
    pub fn get_value(
        &self,
        id: AttrId,
        target: NodeId,
        initiator: Option<&Bitmap>,
    ) -> Result<Option<u64>, AttrError> {
        let def = self.defs.get(&id).ok_or(AttrError::UnknownAttr(id))?;
        // Computed attributes.
        if id == attr::CAPACITY {
            return Ok(self.topology.node_capacity(target));
        }
        if id == attr::LOCALITY {
            return Ok(self
                .topology
                .numa_by_os_index(target)
                .map(|o| o.cpuset.weight().unwrap_or(0) as u64));
        }
        let Some(stored) = self.values.get(&(id, target)) else {
            return Ok(None);
        };
        if !def.flags.need_initiator {
            return Ok(stored.first().map(|s| s.value));
        }
        let Some(query) = initiator else {
            return Err(AttrError::NeedInitiator);
        };
        // Inclusion first: the query runs inside the measured domain.
        let included = stored
            .iter()
            .filter(|s| s.initiator.as_ref().is_some_and(|i| i.includes(query)))
            .min_by_key(|s| s.initiator.as_ref().and_then(|i| i.weight()).unwrap_or(usize::MAX));
        if let Some(s) = included {
            return Ok(Some(s.value));
        }
        // Fall back to any intersecting entry.
        Ok(stored
            .iter()
            .find(|s| s.initiator.as_ref().is_some_and(|i| i.intersects(query)))
            .map(|s| s.value))
    }

    /// All targets with a value for `id` from `initiator`, ranked
    /// best-first (ties broken by node id). This powers the paper's
    /// allocator fallback: "the allocator can easily fallback to next
    /// ones according to the ranking for this attribute".
    pub fn rank_targets(
        &self,
        id: AttrId,
        initiator: &Bitmap,
    ) -> Result<Vec<TargetValue>, AttrError> {
        let def = self.defs.get(&id).ok_or(AttrError::UnknownAttr(id))?;
        let mut out = Vec::new();
        for node in self.topology.node_ids() {
            if let Some(value) = self.get_value(id, node, Some(initiator))? {
                out.push(TargetValue { node, value });
            }
        }
        if def.flags.higher_is_best {
            out.sort_by(|a, b| b.value.cmp(&a.value).then(a.node.cmp(&b.node)));
        } else {
            out.sort_by(|a, b| a.value.cmp(&b.value).then(a.node.cmp(&b.node)));
        }
        Ok(out)
    }

    /// The best target for `id` from `initiator`
    /// (`hwloc_memattr_get_best_target`).
    pub fn get_best_target(&self, id: AttrId, initiator: &Bitmap) -> Option<(NodeId, u64)> {
        self.rank_targets(id, initiator).ok()?.first().map(|tv| (tv.node, tv.value))
    }

    /// The best initiator for accessing `target` under `id`
    /// (`hwloc_memattr_get_best_initiator`).
    pub fn get_best_initiator(&self, id: AttrId, target: NodeId) -> Option<(Bitmap, u64)> {
        let def = self.defs.get(&id)?;
        if !def.flags.need_initiator {
            return None;
        }
        let stored = self.values.get(&(id, target))?;
        let candidates = stored.iter().filter_map(|s| s.initiator.clone().map(|i| (i, s.value)));
        if def.flags.higher_is_best {
            candidates.max_by_key(|&(_, v)| v)
        } else {
            candidates.min_by_key(|&(_, v)| v)
        }
    }

    /// All initiators that have a value for `(id, target)`.
    pub fn initiators(&self, id: AttrId, target: NodeId) -> Vec<(Bitmap, u64)> {
        self.values
            .get(&(id, target))
            .map(|stored| {
                stored.iter().filter_map(|s| s.initiator.clone().map(|i| (i, s.value))).collect()
            })
            .unwrap_or_default()
    }

    /// All targets carrying any value for `id` (plus all NUMA nodes
    /// for computed attributes).
    pub fn targets(&self, id: AttrId) -> Vec<NodeId> {
        if id == attr::CAPACITY || id == attr::LOCALITY {
            return self.topology.node_ids();
        }
        let mut v: Vec<NodeId> =
            self.values.keys().filter(|(a, _)| *a == id).map(|&(_, n)| n).collect();
        v.sort();
        v
    }

    /// Convenience for allocators: the local targets of `initiator`
    /// (branch locality), ranked by `id`. This is the two-step
    /// selection the paper describes — "an application usually first
    /// selects the targets that are local to the core(s) where it runs
    /// (NUMA Affinity), and then compares their values for some
    /// attributes (Memory Kind Affinity)".
    pub fn rank_local_targets(
        &self,
        id: AttrId,
        initiator: &Bitmap,
    ) -> Result<Vec<TargetValue>, AttrError> {
        let local: std::collections::BTreeSet<NodeId> = self
            .topology
            .local_numa_nodes(initiator, hetmem_topology::LocalityFlags::branch())
            .into_iter()
            .map(|o| NodeId(o.os_index))
            .collect();
        Ok(self
            .rank_targets(id, initiator)?
            .into_iter()
            .filter(|tv| local.contains(&tv.node))
            .collect())
    }

    /// Number of NUMA nodes known to the topology.
    pub fn node_count(&self) -> usize {
        self.topology.count(ObjectType::NumaNode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_topology::platforms;

    fn knl_attrs() -> MemAttrs {
        let topo = Arc::new(platforms::knl_snc4_flat());
        let mut a = MemAttrs::new(topo);
        // Cluster 0: DRAM node 0, MCDRAM node 4.
        let c0: Bitmap = "0-15".parse().unwrap();
        a.set_value(attr::BANDWIDTH, NodeId(0), Some(&c0), 23_040).unwrap();
        a.set_value(attr::BANDWIDTH, NodeId(4), Some(&c0), 89_600).unwrap();
        a.set_value(attr::LATENCY, NodeId(0), Some(&c0), 130).unwrap();
        a.set_value(attr::LATENCY, NodeId(4), Some(&c0), 135).unwrap();
        a
    }

    #[test]
    fn predefined_attributes_exist() {
        let a = knl_attrs();
        assert_eq!(a.name(attr::CAPACITY).unwrap(), "Capacity");
        assert_eq!(a.name(attr::LATENCY).unwrap(), "Latency");
        assert!(a.flags(attr::BANDWIDTH).unwrap().higher_is_best);
        assert!(!a.flags(attr::LATENCY).unwrap().higher_is_best);
        assert!(!a.flags(attr::CAPACITY).unwrap().need_initiator);
        assert_eq!(a.by_name("ReadBandwidth"), Some(attr::READ_BANDWIDTH));
        assert_eq!(a.by_name("nope"), None);
        assert_eq!(a.attributes().len(), 8);
    }

    #[test]
    fn capacity_is_computed_and_readonly() {
        let mut a = knl_attrs();
        let cap = a.get_value(attr::CAPACITY, NodeId(0), None).unwrap().unwrap();
        assert_eq!(cap, 24 * hetmem_topology::GIB);
        assert_eq!(
            a.set_value(attr::CAPACITY, NodeId(0), None, 1),
            Err(AttrError::ReadOnly(attr::CAPACITY))
        );
    }

    #[test]
    fn locality_counts_pus() {
        let a = knl_attrs();
        // Each cluster node is local to 16 PUs.
        assert_eq!(a.get_value(attr::LOCALITY, NodeId(0), None).unwrap(), Some(16));
    }

    #[test]
    fn best_target_by_bandwidth_is_mcdram() {
        let a = knl_attrs();
        let c0: Bitmap = "0-15".parse().unwrap();
        let (node, v) = a.get_best_target(attr::BANDWIDTH, &c0).unwrap();
        assert_eq!(node, NodeId(4));
        assert_eq!(v, 89_600);
        // Latency prefers DRAM (130 < 135).
        let (node, _) = a.get_best_target(attr::LATENCY, &c0).unwrap();
        assert_eq!(node, NodeId(0));
    }

    #[test]
    fn initiator_inclusion_matching() {
        let a = knl_attrs();
        // A thread pinned on 2 cores of cluster 0 still sees the
        // cluster-level value.
        let two: Bitmap = "3-4".parse().unwrap();
        let v = a.get_value(attr::BANDWIDTH, NodeId(4), Some(&two)).unwrap();
        assert_eq!(v, Some(89_600));
        // An initiator on cluster 1 has no value for node 4 (local-only
        // discovery) — inclusion fails, intersection fails.
        let c1: Bitmap = "16-31".parse().unwrap();
        assert_eq!(a.get_value(attr::BANDWIDTH, NodeId(4), Some(&c1)).unwrap(), None);
    }

    #[test]
    fn smallest_including_initiator_wins() {
        let topo = Arc::new(platforms::xeon_1lm());
        let mut a = MemAttrs::new(topo);
        let group0: Bitmap = "0-9".parse().unwrap();
        let package0: Bitmap = "0-19".parse().unwrap();
        // Package-level and group-level entries both stored.
        a.set_value(attr::LATENCY, NodeId(0), Some(&package0), 40).unwrap();
        a.set_value(attr::LATENCY, NodeId(0), Some(&group0), 26).unwrap();
        let pinned: Bitmap = "2".parse().unwrap();
        // The group value (more specific) is preferred.
        assert_eq!(a.get_value(attr::LATENCY, NodeId(0), Some(&pinned)).unwrap(), Some(26));
    }

    #[test]
    fn intersect_fallback_when_query_straddles() {
        let a = knl_attrs();
        // Query spanning clusters 0 and 1 is not included in cluster 0,
        // but intersects it.
        let wide: Bitmap = "0-31".parse().unwrap();
        assert_eq!(a.get_value(attr::BANDWIDTH, NodeId(4), Some(&wide)).unwrap(), Some(89_600));
    }

    #[test]
    fn missing_initiator_is_error() {
        let a = knl_attrs();
        assert_eq!(a.get_value(attr::BANDWIDTH, NodeId(0), None), Err(AttrError::NeedInitiator));
    }

    #[test]
    fn rank_targets_orders_correctly() {
        let a = knl_attrs();
        let c0: Bitmap = "0-15".parse().unwrap();
        let bw = a.rank_targets(attr::BANDWIDTH, &c0).unwrap();
        assert_eq!(bw[0].node, NodeId(4));
        assert_eq!(bw[1].node, NodeId(0));
        let lat = a.rank_targets(attr::LATENCY, &c0).unwrap();
        assert_eq!(lat[0].node, NodeId(0));
        // Capacity ranking covers all 8 nodes; DRAMs (24GB) first.
        let cap = a.rank_targets(attr::CAPACITY, &c0).unwrap();
        assert_eq!(cap.len(), 8);
        assert_eq!(cap[0].node, NodeId(0));
        assert_eq!(cap[0].value, 24 * hetmem_topology::GIB);
    }

    #[test]
    fn rank_local_targets_filters_by_branch() {
        let a = knl_attrs();
        let c0: Bitmap = "0-15".parse().unwrap();
        let local = a.rank_local_targets(attr::CAPACITY, &c0).unwrap();
        // Only the cluster's own DRAM + MCDRAM are local.
        assert_eq!(local.len(), 2);
        assert_eq!(local[0].node, NodeId(0));
        assert_eq!(local[1].node, NodeId(4));
    }

    #[test]
    fn best_initiator() {
        let topo = Arc::new(platforms::knl_snc4_flat());
        let mut a = MemAttrs::new(topo);
        let c0: Bitmap = "0-15".parse().unwrap();
        let c1: Bitmap = "16-31".parse().unwrap();
        a.set_value(attr::LATENCY, NodeId(0), Some(&c0), 130).unwrap();
        a.set_value(attr::LATENCY, NodeId(0), Some(&c1), 180).unwrap();
        let (ini, v) = a.get_best_initiator(attr::LATENCY, NodeId(0)).unwrap();
        assert_eq!(ini, c0);
        assert_eq!(v, 130);
        // No initiators for computed attributes.
        assert!(a.get_best_initiator(attr::CAPACITY, NodeId(0)).is_none());
    }

    #[test]
    fn custom_attribute_roundtrip() {
        let mut a = knl_attrs();
        let triad = a
            .register("StreamTriad", AttrFlags { higher_is_best: true, need_initiator: true })
            .unwrap();
        assert!(triad >= attr::FIRST_CUSTOM);
        let c0: Bitmap = "0-15".parse().unwrap();
        a.set_value(triad, NodeId(4), Some(&c0), 90_000).unwrap();
        a.set_value(triad, NodeId(0), Some(&c0), 29_000).unwrap();
        assert_eq!(a.get_best_target(triad, &c0).unwrap().0, NodeId(4));
        assert_eq!(a.by_name("StreamTriad"), Some(triad));
        // Duplicate names rejected.
        assert!(matches!(
            a.register("StreamTriad", AttrFlags { higher_is_best: true, need_initiator: true }),
            Err(AttrError::DuplicateName(_))
        ));
    }

    #[test]
    fn set_value_overwrites_same_initiator() {
        let mut a = knl_attrs();
        let c0: Bitmap = "0-15".parse().unwrap();
        a.set_value(attr::LATENCY, NodeId(0), Some(&c0), 99).unwrap();
        assert_eq!(a.get_value(attr::LATENCY, NodeId(0), Some(&c0)).unwrap(), Some(99));
        let stored = a.initiators(attr::LATENCY, NodeId(0));
        assert_eq!(stored.len(), 1);
    }

    #[test]
    fn unknown_ids_and_targets_rejected() {
        let mut a = knl_attrs();
        let c0: Bitmap = "0-15".parse().unwrap();
        assert!(matches!(
            a.get_value(AttrId(77), NodeId(0), Some(&c0)),
            Err(AttrError::UnknownAttr(_))
        ));
        assert!(matches!(
            a.set_value(attr::LATENCY, NodeId(42), Some(&c0), 1),
            Err(AttrError::UnknownTarget(_))
        ));
    }

    #[test]
    fn targets_lists_nodes_with_values() {
        let a = knl_attrs();
        assert_eq!(a.targets(attr::BANDWIDTH), vec![NodeId(0), NodeId(4)]);
        assert_eq!(a.targets(attr::CAPACITY).len(), 8);
        assert!(a.targets(attr::READ_BANDWIDTH).is_empty());
    }
}
