//! Native discovery of attribute values from firmware tables.
//!
//! Reproduces the paper's §IV-A1: the platform describes memory
//! performance in the ACPI HMAT; the OS (Linux ≥ 5.2) exposes a
//! *local-accesses-only* reduction of it in sysfs; hwloc reads that
//! and fills its memory attributes.
//!
//! The full path is exercised: the simulated firmware **encodes**
//! binary SRAT/HMAT tables, we **decode** them (validating signature,
//! length, checksum), optionally apply the Linux [`SysfsView`]
//! reduction, and populate a [`MemAttrs`] registry.
//!
//! Benchmark-based discovery — the "External Sources" column of the
//! paper's Table I, used when firmware provides nothing — lives in
//! `hetmem-membench` (it feeds values *into* this registry, like
//! running STREAM/lmbench/multichase feeds hwloc).

use crate::attrs::{attr, AttrError, AttrId, MemAttrs};
use hetmem_hmat::{
    decode_hmat, decode_srat, encode_hmat, encode_srat, DataType, DecodeError, SysfsView,
};
use hetmem_memsim::Machine;
use std::sync::Arc;

/// Discovery failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryError {
    /// Firmware table parsing failed.
    Decode(DecodeError),
    /// Storing a value failed.
    Attr(AttrError),
}

impl std::fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoveryError::Decode(e) => write!(f, "firmware table decode failed: {e}"),
            DiscoveryError::Attr(e) => write!(f, "storing attribute failed: {e}"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<DecodeError> for DiscoveryError {
    fn from(e: DecodeError) -> Self {
        DiscoveryError::Decode(e)
    }
}

impl From<AttrError> for DiscoveryError {
    fn from(e: AttrError) -> Self {
        DiscoveryError::Attr(e)
    }
}

fn attr_of(dt: DataType) -> AttrId {
    match dt {
        DataType::AccessLatency => attr::LATENCY,
        DataType::ReadLatency => attr::READ_LATENCY,
        DataType::WriteLatency => attr::WRITE_LATENCY,
        DataType::AccessBandwidth => attr::BANDWIDTH,
        DataType::ReadBandwidth => attr::READ_BANDWIDTH,
        DataType::WriteBandwidth => attr::WRITE_BANDWIDTH,
    }
}

/// Discovers memory attributes from the machine's firmware tables.
///
/// With `local_only = true` (today's platforms, the paper's Fig. 5)
/// the Linux sysfs reduction is applied: each target keeps only its
/// best-initiator values. With `local_only = false` the full
/// initiator×target matrix is imported (the "future platforms" case).
pub fn from_firmware(machine: &Arc<Machine>, local_only: bool) -> Result<MemAttrs, DiscoveryError> {
    from_firmware_with_options(machine, local_only, false)
}

/// [`from_firmware`] against firmware that also publishes separate
/// Read/Write matrices (Table I's "on some platforms" native row).
pub fn from_firmware_with_options(
    machine: &Arc<Machine>,
    local_only: bool,
    rw_variants: bool,
) -> Result<MemAttrs, DiscoveryError> {
    // Firmware publishes binary tables; parse them like an OS would.
    let hmat_bin = encode_hmat(&machine.hmat_with_options(local_only, rw_variants));
    let srat_bin = encode_srat(&machine.srat());
    let hmat = decode_hmat(&hmat_bin)?;
    let srat = decode_srat(&srat_bin)?;

    let topology = Arc::new(machine.topology().clone());
    let mut attrs = MemAttrs::new(topology);

    if local_only {
        let view = SysfsView::from_tables(&hmat, &srat);
        for n in view.nodes() {
            let target = hetmem_topology::NodeId(n.target);
            let ini = &n.initiator_cpus;
            let mut set = |id: AttrId, v: Option<u32>| -> Result<(), DiscoveryError> {
                if let Some(v) = v {
                    attrs.set_value(id, target, Some(ini), v as u64)?;
                }
                Ok(())
            };
            set(attr::LATENCY, n.access_latency)?;
            set(attr::BANDWIDTH, n.access_bandwidth)?;
            set(attr::READ_LATENCY, n.read_latency)?;
            set(attr::WRITE_LATENCY, n.write_latency)?;
            set(attr::READ_BANDWIDTH, n.read_bandwidth)?;
            set(attr::WRITE_BANDWIDTH, n.write_bandwidth)?;
        }
    } else {
        for loc in &hmat.localities {
            let id = attr_of(loc.data_type);
            for (ini_pd, target_pd, value) in loc.provided() {
                let ini = srat.cpus_of(ini_pd);
                if ini.is_zero() {
                    continue;
                }
                attrs.set_value(
                    id,
                    hetmem_topology::NodeId(target_pd),
                    Some(&ini),
                    value as u64,
                )?;
            }
        }
    }
    // §VIII future work, implemented: expose memory-side caches as a
    // custom attribute so applications can anticipate that observed
    // performance may differ from the raw device values ("the ACPI
    // HMAT [...] does not specify whether those accesses are cached on
    // the memory side").
    if !hmat.caches.is_empty() {
        let id = attrs.register(
            "MemorySideCacheSize",
            crate::AttrFlags { higher_is_best: true, need_initiator: false },
        )?;
        for cache in &hmat.caches {
            attrs.set_value(id, hetmem_topology::NodeId(cache.memory_pd), None, cache.size)?;
        }
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_bitmap::Bitmap;
    use hetmem_topology::NodeId;

    #[test]
    fn xeon_fig5_values() {
        let machine = Arc::new(Machine::xeon_1lm_snc());
        let attrs = from_firmware(&machine, true).unwrap();
        let g0: Bitmap = "0-9".parse().unwrap();
        // DRAM node 0: 131072 MB/s, 26 ns, from its SNC group.
        assert_eq!(attrs.get_value(attr::BANDWIDTH, NodeId(0), Some(&g0)).unwrap(), Some(131_072));
        assert_eq!(attrs.get_value(attr::LATENCY, NodeId(0), Some(&g0)).unwrap(), Some(26));
        // NVDIMM node 2: 78644 MB/s, 77 ns, from the whole package.
        assert_eq!(attrs.get_value(attr::BANDWIDTH, NodeId(2), Some(&g0)).unwrap(), Some(78_644));
        assert_eq!(attrs.get_value(attr::LATENCY, NodeId(2), Some(&g0)).unwrap(), Some(77));
        // The NVDIMM initiator is the merged package cpuset.
        let inis = attrs.initiators(attr::BANDWIDTH, NodeId(2));
        assert_eq!(inis.len(), 1);
        assert_eq!(inis[0].0.to_string(), "0-19");
    }

    #[test]
    fn local_only_cannot_compare_remote() {
        let machine = Arc::new(Machine::xeon_1lm_snc());
        let attrs = from_firmware(&machine, true).unwrap();
        // From package 1's cores, package 0's DRAM has no value — the
        // paper's "impossible to compare local DRAM with remote HBM".
        let g2: Bitmap = "20-29".parse().unwrap();
        assert_eq!(attrs.get_value(attr::BANDWIDTH, NodeId(0), Some(&g2)).unwrap(), None);
    }

    #[test]
    fn full_matrix_allows_remote_comparison() {
        let machine = Arc::new(Machine::xeon_1lm_snc());
        let attrs = from_firmware(&machine, false).unwrap();
        let g2: Bitmap = "20-29".parse().unwrap();
        let remote = attrs.get_value(attr::BANDWIDTH, NodeId(0), Some(&g2)).unwrap().unwrap();
        let local = attrs.get_value(attr::BANDWIDTH, NodeId(3), Some(&g2)).unwrap().unwrap();
        assert!(remote < local);
        // Ranking from package 1 puts its own DRAM first.
        let rank = attrs.rank_targets(attr::BANDWIDTH, &g2).unwrap();
        assert_eq!(rank[0].node, NodeId(3));
    }

    #[test]
    fn rw_capable_firmware_fills_rw_attributes() {
        let machine = Arc::new(Machine::xeon_1lm_no_snc());
        let attrs = from_firmware_with_options(&machine, true, true).unwrap();
        let pkg0: Bitmap = "0-19".parse().unwrap();
        let r = attrs.get_value(attr::READ_BANDWIDTH, NodeId(2), Some(&pkg0)).unwrap().unwrap();
        let w = attrs.get_value(attr::WRITE_BANDWIDTH, NodeId(2), Some(&pkg0)).unwrap().unwrap();
        assert!(w < r);
        // Plain firmware leaves them empty (today's platforms).
        let plain = from_firmware(&machine, true).unwrap();
        assert!(plain.targets(attr::READ_BANDWIDTH).is_empty());
    }

    #[test]
    fn knl_rankings_match_paper_equations() {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let attrs = from_firmware(&machine, true).unwrap();
        let c0: Bitmap = "0-15".parse().unwrap();
        // Eq. 1 (bandwidth): HBM > DRAM.
        let bw = attrs.rank_local_targets(attr::BANDWIDTH, &c0).unwrap();
        assert_eq!(bw[0].node, NodeId(4));
        assert_eq!(bw[1].node, NodeId(0));
        // Eq. 3 (capacity): DRAM > HBM.
        let cap = attrs.rank_local_targets(attr::CAPACITY, &c0).unwrap();
        assert_eq!(cap[0].node, NodeId(0));
    }

    #[test]
    fn fictitious_platform_four_kind_ranking() {
        let machine = Arc::new(Machine::fictitious());
        let attrs = from_firmware(&machine, true).unwrap();
        let cluster: Bitmap = machine
            .topology()
            .object_by_type_and_logical(hetmem_topology::ObjectType::Group, 0)
            .unwrap()
            .cpuset
            .clone();
        let bw = attrs.rank_local_targets(attr::BANDWIDTH, &cluster).unwrap();
        let kinds: Vec<&str> =
            bw.iter().map(|tv| machine.topology().node_kind(tv.node).unwrap().subtype()).collect();
        // Eq. 1: HBM > DRAM > NVDIMM (> NAM).
        assert_eq!(kinds, vec!["HBM", "DRAM", "NVDIMM", "NAM"]);
        let lat = attrs.rank_local_targets(attr::LATENCY, &cluster).unwrap();
        let kinds: Vec<&str> =
            lat.iter().map(|tv| machine.topology().node_kind(tv.node).unwrap().subtype()).collect();
        // Eq. 2: DRAM/HBM close, NVDIMM after, NAM last.
        assert_eq!(kinds.last().unwrap(), &"NAM");
        assert!(kinds[..2].contains(&"DRAM") && kinds[..2].contains(&"HBM"));
    }

    #[test]
    fn memory_side_caches_exposed_as_custom_attribute() {
        // The 2LM Xeon fronts each NVDIMM node with a 192 GiB DRAM
        // cache; discovery surfaces it (§VIII).
        let machine = Arc::new(Machine::xeon_2lm());
        let attrs = from_firmware(&machine, true).unwrap();
        let id = attrs.by_name("MemorySideCacheSize").expect("registered");
        let v = attrs.get_value(id, NodeId(0), None).unwrap().unwrap();
        assert_eq!(v, 192 << 30);
        // Cache-less platforms don't register it.
        let flat = Arc::new(Machine::knl_snc4_flat());
        let attrs = from_firmware(&flat, true).unwrap();
        assert!(attrs.by_name("MemorySideCacheSize").is_none());
    }

    #[test]
    fn homogeneous_platform_still_works() {
        // §IV: "This API could actually also be used for homogeneous
        // NUMA platforms".
        let machine = Arc::new(Machine::homogeneous(2, 8, 32 * hetmem_topology::GIB));
        let attrs = from_firmware(&machine, false).unwrap();
        let p0: Bitmap = "0-7".parse().unwrap();
        let rank = attrs.rank_targets(attr::LATENCY, &p0).unwrap();
        assert_eq!(rank.len(), 2);
        assert_eq!(rank[0].node, NodeId(0)); // local node first
        assert!(rank[0].value < rank[1].value);
    }

    #[test]
    fn fugaku_single_kind_has_trivial_ranking() {
        let machine = Arc::new(Machine::fugaku_like());
        let attrs = from_firmware(&machine, true).unwrap();
        let cmg0: Bitmap = "0-11".parse().unwrap();
        let bw = attrs.rank_local_targets(attr::BANDWIDTH, &cmg0).unwrap();
        assert_eq!(bw.len(), 1);
    }
}
