//! Property tests for the attributes registry: ranking coherence,
//! set/get roundtrips, initiator matching laws.

use hetmem_bitmap::Bitmap;
use hetmem_core::{attr, AttrFlags, MemAttrs, NodeId};
use hetmem_topology::platforms;
use proptest::prelude::*;
use std::sync::Arc;

fn registry() -> MemAttrs {
    MemAttrs::new(Arc::new(platforms::knl_snc4_flat()))
}

/// (node, value) assignments for one cluster-scoped initiator.
fn assignments() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0u32..8, 1u64..1_000_000), 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// rank_targets is sorted according to the attribute's direction,
    /// and get_best_target is exactly its head.
    #[test]
    fn ranking_is_sorted_and_best_is_head(vals in assignments(), higher in any::<bool>()) {
        let mut a = registry();
        let id = a
            .register("Custom", AttrFlags { higher_is_best: higher, need_initiator: true })
            .expect("fresh name");
        let ini: Bitmap = "0-15".parse().expect("cpuset");
        for (node, v) in &vals {
            a.set_value(id, NodeId(*node), Some(&ini), *v).expect("valid");
        }
        let ranked = a.rank_targets(id, &ini).expect("rank");
        for w in ranked.windows(2) {
            if higher {
                prop_assert!(w[0].value >= w[1].value);
            } else {
                prop_assert!(w[0].value <= w[1].value);
            }
            // Ties broken by node id → total deterministic order.
            if w[0].value == w[1].value {
                prop_assert!(w[0].node < w[1].node);
            }
        }
        let best = a.get_best_target(id, &ini);
        prop_assert_eq!(best, ranked.first().map(|tv| (tv.node, tv.value)));
    }

    /// set_value overwrites per initiator; last write wins.
    #[test]
    fn last_write_wins(v1 in 1u64..1_000_000, v2 in 1u64..1_000_000) {
        let mut a = registry();
        let ini: Bitmap = "0-15".parse().expect("cpuset");
        a.set_value(attr::BANDWIDTH, NodeId(0), Some(&ini), v1).expect("valid");
        a.set_value(attr::BANDWIDTH, NodeId(0), Some(&ini), v2).expect("valid");
        prop_assert_eq!(
            a.get_value(attr::BANDWIDTH, NodeId(0), Some(&ini)).expect("known"),
            Some(v2)
        );
        prop_assert_eq!(a.initiators(attr::BANDWIDTH, NodeId(0)).len(), 1);
    }

    /// Any query initiator inside the stored one resolves to the
    /// stored value (inclusion matching).
    #[test]
    fn included_queries_resolve(lo in 0usize..14, len in 0usize..2, v in 1u64..1_000_000) {
        let mut a = registry();
        let stored: Bitmap = "0-15".parse().expect("cpuset");
        a.set_value(attr::LATENCY, NodeId(0), Some(&stored), v).expect("valid");
        let query = Bitmap::from_range(lo, lo + len);
        prop_assert_eq!(
            a.get_value(attr::LATENCY, NodeId(0), Some(&query)).expect("known"),
            Some(v)
        );
    }

    /// Disjoint query initiators never resolve local-only values.
    #[test]
    fn disjoint_queries_do_not_resolve(lo in 16usize..60, v in 1u64..1_000_000) {
        let mut a = registry();
        let stored: Bitmap = "0-15".parse().expect("cpuset");
        a.set_value(attr::LATENCY, NodeId(0), Some(&stored), v).expect("valid");
        let query = Bitmap::from_range(lo, lo + 3);
        prop_assert_eq!(a.get_value(attr::LATENCY, NodeId(0), Some(&query)).expect("known"), None);
    }

    /// rank_local_targets is always a subsequence of rank_targets.
    #[test]
    fn local_ranking_is_subsequence(vals in assignments()) {
        let mut a = registry();
        let ini: Bitmap = "0-15".parse().expect("cpuset");
        for (node, v) in &vals {
            a.set_value(attr::BANDWIDTH, NodeId(*node), Some(&ini), *v).expect("valid");
        }
        let full: Vec<_> =
            a.rank_targets(attr::BANDWIDTH, &ini).expect("rank").iter().map(|t| t.node).collect();
        let local: Vec<_> = a
            .rank_local_targets(attr::BANDWIDTH, &ini)
            .expect("rank")
            .iter()
            .map(|t| t.node)
            .collect();
        let mut it = full.iter();
        for l in &local {
            prop_assert!(it.any(|f| f == l), "{local:?} not a subsequence of {full:?}");
        }
    }

    /// Capacity is stable under any performance-value writes.
    #[test]
    fn capacity_unaffected_by_perf_values(vals in assignments()) {
        let mut a = registry();
        let ini: Bitmap = "0-15".parse().expect("cpuset");
        let before: Vec<_> = (0..8)
            .map(|n| a.get_value(attr::CAPACITY, NodeId(n), None).expect("known"))
            .collect();
        for (node, v) in &vals {
            a.set_value(attr::LATENCY, NodeId(*node), Some(&ini), *v).expect("valid");
        }
        let after: Vec<_> = (0..8)
            .map(|n| a.get_value(attr::CAPACITY, NodeId(n), None).expect("known"))
            .collect();
        prop_assert_eq!(before, after);
    }
}
