//! Feeding measured values into the attributes registry.
//!
//! This is the external-source path of the paper's Table I: when the
//! firmware provides no (or incomplete) HMAT data, run benchmarks and
//! `set_value` the results into hwloc — here, into [`MemAttrs`].

use crate::chase;
use crate::multichase;
use crate::stream::{self, StreamKernel};
use crate::BenchContext;
use hetmem_bitmap::Bitmap;
use hetmem_core::{attr, AttrError, AttrFlags, AttrId, MemAttrs};
use hetmem_memsim::Machine;
use std::sync::Arc;

/// What to measure and from where.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Also measure remote (initiator, target) pairs — the capability
    /// the paper highlights benchmarks have over Linux HMAT (§VIII).
    pub include_remote: bool,
    /// Measure separate read/write bandwidths (Table I's second row).
    pub read_write_variants: bool,
    /// Use loaded latency (multichase) instead of idle latency
    /// (lmbench) for the Latency attribute.
    pub loaded_latency: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions { include_remote: false, read_write_variants: true, loaded_latency: false }
    }
}

/// Distinct initiator cpusets of the machine: one per NUMA locality
/// that contains processors.
fn initiators(machine: &Machine) -> Vec<Bitmap> {
    let mut out: Vec<Bitmap> = Vec::new();
    for node in machine.topology().node_ids() {
        let obj = machine.topology().numa_by_os_index(node).expect("node exists");
        if obj.cpuset.is_zero() {
            continue;
        }
        if !out.contains(&obj.cpuset) {
            out.push(obj.cpuset.clone());
        }
    }
    out
}

/// Runs the benchmark suite and stores results into a fresh
/// [`MemAttrs`]. Nodes whose benchmark buffer cannot be allocated are
/// skipped (they simply get no measured value).
pub fn feed_attrs(machine: &Arc<Machine>, opts: &BenchOptions) -> Result<MemAttrs, AttrError> {
    let topology = Arc::new(machine.topology().clone());
    let mut attrs = MemAttrs::new(topology);
    let mut ctx = BenchContext::new(machine.clone());
    for ini in initiators(machine) {
        for node in machine.topology().node_ids() {
            let node_cpus = &machine.topology().numa_by_os_index(node).expect("node exists").cpuset;
            let local = node_cpus.includes(&ini) || node_cpus.intersects(&ini);
            if !local && !opts.include_remote {
                continue;
            }
            let set = |attrs: &mut MemAttrs, id: AttrId, v: Option<f64>| -> Result<(), AttrError> {
                if let Some(v) = v {
                    attrs.set_value(id, node, Some(&ini), v.round() as u64)?;
                }
                Ok(())
            };
            set(&mut attrs, attr::BANDWIDTH, stream::triad_mbps(&mut ctx, &ini, node))?;
            let lat = if opts.loaded_latency {
                multichase::loaded_latency_ns(&mut ctx, &ini, node)
            } else {
                chase::latency_ns(&mut ctx, &ini, node)
            };
            set(&mut attrs, attr::LATENCY, lat)?;
            if opts.read_write_variants {
                set(
                    &mut attrs,
                    attr::READ_BANDWIDTH,
                    stream::measure(&mut ctx, &ini, node, StreamKernel::ReadOnly),
                )?;
                set(
                    &mut attrs,
                    attr::WRITE_BANDWIDTH,
                    stream::measure(&mut ctx, &ini, node, StreamKernel::WriteOnly),
                )?;
            }
        }
    }
    Ok(attrs)
}

/// Registers the paper's example custom attribute: a STREAM-Triad
/// metric "combining Read and Write bandwidths" (§IV), and fills it
/// from measurements.
pub fn register_stream_triad_attr(
    attrs: &mut MemAttrs,
    machine: &Arc<Machine>,
) -> Result<AttrId, AttrError> {
    let id =
        attrs.register("StreamTriad", AttrFlags { higher_is_best: true, need_initiator: true })?;
    let mut ctx = BenchContext::new(machine.clone());
    for ini in initiators(machine) {
        for node in machine.topology().node_ids() {
            if let Some(v) = stream::triad_mbps(&mut ctx, &ini, node) {
                attrs.set_value(id, node, Some(&ini), v.round() as u64)?;
            }
        }
    }
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_topology::{MemoryKind, NodeId};

    #[test]
    fn measured_rankings_match_datasheet_rankings() {
        // The paper's point: HMAT values are theoretical, benchmark
        // values are real, but both *rank* memories identically.
        let machine = Arc::new(Machine::knl_snc4_flat());
        let measured = feed_attrs(&machine, &BenchOptions::default()).unwrap();
        let firmware = hetmem_core::discovery::from_firmware(&machine, true).unwrap();
        let c0: Bitmap = "0-15".parse().unwrap();
        for id in [attr::BANDWIDTH, attr::LATENCY] {
            let m: Vec<NodeId> =
                measured.rank_local_targets(id, &c0).unwrap().iter().map(|t| t.node).collect();
            let f: Vec<NodeId> =
                firmware.rank_local_targets(id, &c0).unwrap().iter().map(|t| t.node).collect();
            assert_eq!(m, f, "ranking mismatch for attribute {:?}", measured.name(id));
        }
    }

    #[test]
    fn remote_measurements_fill_full_matrix() {
        let machine = Arc::new(Machine::xeon_1lm_no_snc());
        let opts = BenchOptions { include_remote: true, ..Default::default() };
        let attrs = feed_attrs(&machine, &opts).unwrap();
        let pkg0: Bitmap = "0-19".parse().unwrap();
        // Benchmarks CAN compare local DRAM with the other package's
        // DRAM — unlike the Linux HMAT view.
        let local = attrs.get_value(attr::LATENCY, NodeId(0), Some(&pkg0)).unwrap().unwrap();
        let remote = attrs.get_value(attr::LATENCY, NodeId(1), Some(&pkg0)).unwrap().unwrap();
        assert!(remote > local);
        let rank = attrs.rank_targets(attr::LATENCY, &pkg0).unwrap();
        assert_eq!(rank.len(), 4);
        assert_eq!(rank[0].node, NodeId(0));
    }

    #[test]
    fn read_write_asymmetry_captured() {
        let machine = Arc::new(Machine::xeon_1lm_no_snc());
        let attrs = feed_attrs(&machine, &BenchOptions::default()).unwrap();
        let pkg0: Bitmap = "0-19".parse().unwrap();
        let r = attrs.get_value(attr::READ_BANDWIDTH, NodeId(2), Some(&pkg0)).unwrap().unwrap();
        let w = attrs.get_value(attr::WRITE_BANDWIDTH, NodeId(2), Some(&pkg0)).unwrap().unwrap();
        assert!(r > w, "NVDIMM read bw {r} should beat write bw {w}");
    }

    #[test]
    fn loaded_latency_option_changes_values() {
        let machine = Arc::new(Machine::xeon_1lm_no_snc());
        let idle =
            feed_attrs(&machine, &BenchOptions { loaded_latency: false, ..Default::default() })
                .unwrap();
        let loaded =
            feed_attrs(&machine, &BenchOptions { loaded_latency: true, ..Default::default() })
                .unwrap();
        let pkg0: Bitmap = "0-19".parse().unwrap();
        let li = idle.get_value(attr::LATENCY, NodeId(0), Some(&pkg0)).unwrap().unwrap();
        let ll = loaded.get_value(attr::LATENCY, NodeId(0), Some(&pkg0)).unwrap().unwrap();
        assert!(ll > li);
        // Both rank DRAM before NVDIMM regardless.
        for a in [&idle, &loaded] {
            let rank = a.rank_local_targets(attr::LATENCY, &pkg0).unwrap();
            assert_eq!(rank[0].node, NodeId(0));
        }
    }

    #[test]
    fn custom_triad_attribute_prefers_hbm() {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let mut attrs = feed_attrs(&machine, &BenchOptions::default()).unwrap();
        let triad = register_stream_triad_attr(&mut attrs, &machine).unwrap();
        let c0: Bitmap = "0-15".parse().unwrap();
        let (best, _) = attrs.get_best_target(triad, &c0).unwrap();
        assert_eq!(machine.topology().node_kind(best), Some(MemoryKind::Hbm));
    }

    #[test]
    fn fictitious_all_kinds_measured() {
        let machine = Arc::new(Machine::fictitious());
        let attrs = feed_attrs(&machine, &BenchOptions::default()).unwrap();
        let cluster: Bitmap = "0-3".parse().unwrap();
        let bw = attrs.rank_local_targets(attr::BANDWIDTH, &cluster).unwrap();
        let kinds: Vec<MemoryKind> =
            bw.iter().map(|tv| machine.topology().node_kind(tv.node).unwrap()).collect();
        assert_eq!(kinds[0], MemoryKind::Hbm);
        assert_eq!(*kinds.last().unwrap(), MemoryKind::NetworkAttached);
    }
}
