//! Loaded-latency measurement (Google multichase's `-m` mode).
//!
//! One thread chases pointers while the remaining threads of the
//! initiator stream through a separate buffer on the same node,
//! driving its utilization up. The chaser then observes the *loaded*
//! latency — the figure the paper quotes for Cascade Lake DRAM
//! (285 ns loaded vs ~80 ns idle).

use crate::BenchContext;
use hetmem_bitmap::Bitmap;
use hetmem_memsim::{AccessPattern, AllocPolicy, BufferAccess, Phase};
use hetmem_topology::NodeId;

/// Measures loaded latency (ns) to `node`: one chaser plus
/// `initiator.weight() - 1` bandwidth loaders. Returns `None` when the
/// buffers can't be bound to the node.
pub fn loaded_latency_ns(ctx: &mut BenchContext, initiator: &Bitmap, node: NodeId) -> Option<f64> {
    let bytes = ctx.buffer_bytes(node);
    let chase_buf = ctx.mm().alloc(bytes, AllocPolicy::Bind(node)).ok()?;
    let load_buf = match ctx.mm().alloc(bytes, AllocPolicy::Bind(node)) {
        Ok(r) => r,
        Err(_) => {
            ctx.mm().free(chase_buf);
            return None;
        }
    };
    let threads = crate::threads_of(initiator);
    // The loaders stream enough traffic to keep the node busy for the
    // whole chase.
    let load_passes = 16;
    let phase = Phase {
        name: "multichase-loaded".into(),
        accesses: vec![
            BufferAccess::new(chase_buf, bytes, 0, AccessPattern::PointerChase),
            BufferAccess::new(load_buf, bytes * load_passes, 0, AccessPattern::Sequential),
        ],
        threads,
        initiator: initiator.clone(),
        compute_ns: 0.0,
    };
    let report = ctx.engine().run_phase(&ctx.mm, &phase);
    ctx.mm().free(chase_buf);
    ctx.mm().free(load_buf);
    report
        .buffers
        .iter()
        .find(|b| b.loads == bytes / 64 && b.stores == 0 && b.llc_misses > 0)
        .map(|b| b.avg_latency_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase;
    use hetmem_memsim::Machine;
    use std::sync::Arc;

    #[test]
    fn loaded_latency_exceeds_idle() {
        let mut ctx = BenchContext::new(Arc::new(Machine::xeon_1lm_no_snc()));
        let cpus: Bitmap = "0-19".parse().unwrap();
        let idle = chase::latency_ns(&mut ctx, &cpus, NodeId(0)).unwrap();
        let loaded = loaded_latency_ns(&mut ctx, &cpus, NodeId(0)).unwrap();
        assert!(loaded > 1.5 * idle, "loaded {loaded:.0} vs idle {idle:.0}");
        // Calibration target: ~285 ns on loaded Cascade Lake DRAM.
        assert!((180.0..320.0).contains(&loaded), "loaded DRAM latency {loaded:.0}");
    }

    #[test]
    fn nvdimm_loaded_latency_is_much_worse() {
        let mut ctx = BenchContext::new(Arc::new(Machine::xeon_1lm_no_snc()));
        let cpus: Bitmap = "0-19".parse().unwrap();
        let dram = loaded_latency_ns(&mut ctx, &cpus, NodeId(0)).unwrap();
        let nv = loaded_latency_ns(&mut ctx, &cpus, NodeId(2)).unwrap();
        assert!(nv > 2.0 * dram, "NVDIMM loaded {nv:.0} vs DRAM {dram:.0}");
    }

    #[test]
    fn cleans_up_buffers_even_on_partial_failure() {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let mut ctx = BenchContext::new(machine);
        let c0: Bitmap = "0-15".parse().unwrap();
        // Leave room for only one buffer on MCDRAM.
        let avail = ctx.mm().available(NodeId(4));
        let hog = ctx.mm().alloc(avail - 200 * 1024 * 1024, AllocPolicy::Bind(NodeId(4))).unwrap();
        let before = ctx.mm().available(NodeId(4));
        assert_eq!(loaded_latency_ns(&mut ctx, &c0, NodeId(4)), None);
        assert_eq!(ctx.mm().available(NodeId(4)), before);
        ctx.mm().free(hog);
    }
}
