//! STREAM-style bandwidth kernels (McCalpin).
//!
//! The four classic kernels plus pure read/write streams. Each kernel
//! is expressed as a phase over a buffer bound to the target node; the
//! reported figure is `bytes_moved / time`, exactly how STREAM scores.

use crate::{threads_of, BenchContext};
use hetmem_bitmap::Bitmap;
use hetmem_memsim::{AccessPattern, AllocPolicy, BufferAccess, Phase};
use hetmem_topology::NodeId;

/// The STREAM kernel variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 1 read + 1 write per element.
    Copy,
    /// `b[i] = s*c[i]` — 1 read + 1 write.
    Scale,
    /// `c[i] = a[i] + b[i]` — 2 reads + 1 write.
    Add,
    /// `a[i] = b[i] + s*c[i]` — 2 reads + 1 write.
    Triad,
    /// Pure read stream (for the ReadBandwidth attribute).
    ReadOnly,
    /// Pure write stream (for the WriteBandwidth attribute).
    WriteOnly,
}

impl StreamKernel {
    /// (reads, writes) per element, in array-lengths.
    pub fn traffic(self) -> (u64, u64) {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => (1, 1),
            StreamKernel::Add | StreamKernel::Triad => (2, 1),
            StreamKernel::ReadOnly => (1, 0),
            StreamKernel::WriteOnly => (0, 1),
        }
    }

    /// Kernel name as STREAM prints it.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
            StreamKernel::ReadOnly => "Read",
            StreamKernel::WriteOnly => "Write",
        }
    }
}

/// Runs one STREAM kernel against a buffer bound to `node`, accessed
/// from `initiator`. Returns MiB/s (total bytes moved over time).
///
/// Returns `None` when the bench buffer cannot be allocated on the
/// node (it never falls back — a benchmark must measure what it says
/// it measures).
pub fn measure(
    ctx: &mut BenchContext,
    initiator: &Bitmap,
    node: NodeId,
    kernel: StreamKernel,
) -> Option<f64> {
    let bytes = ctx.buffer_bytes(node);
    let region = ctx.mm().alloc(bytes, AllocPolicy::Bind(node)).ok()?;
    let (r, w) = kernel.traffic();
    let phase = Phase {
        name: format!("stream-{}", kernel.name()),
        accesses: vec![BufferAccess::new(region, bytes * r, bytes * w, AccessPattern::Sequential)],
        threads: threads_of(initiator),
        initiator: initiator.clone(),
        compute_ns: 0.0,
    };
    let report = ctx.engine().run_phase(&ctx.mm, &phase);
    ctx.mm().free(region);
    let moved = (bytes * (r + w)) as f64;
    Some(moved / (report.time_ns / 1e9) / (1024.0 * 1024.0))
}

/// Convenience: Triad bandwidth in MiB/s.
pub fn triad_mbps(ctx: &mut BenchContext, initiator: &Bitmap, node: NodeId) -> Option<f64> {
    measure(ctx, initiator, node, StreamKernel::Triad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_memsim::Machine;
    use std::sync::Arc;

    fn ctx_xeon() -> BenchContext {
        BenchContext::new(Arc::new(Machine::xeon_1lm_no_snc()))
    }

    #[test]
    fn triad_matches_paper_scale_on_xeon() {
        let mut ctx = ctx_xeon();
        let cpus: Bitmap = "0-19".parse().unwrap();
        let dram = triad_mbps(&mut ctx, &cpus, NodeId(0)).unwrap() / 1024.0;
        let nv = triad_mbps(&mut ctx, &cpus, NodeId(2)).unwrap() / 1024.0;
        assert!((70.0..80.0).contains(&dram), "DRAM triad {dram:.1} GiB/s");
        assert!((25.0..38.0).contains(&nv), "NVDIMM triad {nv:.1} GiB/s");
        assert!(dram > 2.0 * nv);
    }

    #[test]
    fn read_exceeds_write_exceeds_triad_on_nvdimm() {
        // Optane asymmetry: read ≫ write; triad mixes both.
        let mut ctx = ctx_xeon();
        let cpus: Bitmap = "0-19".parse().unwrap();
        let read = measure(&mut ctx, &cpus, NodeId(2), StreamKernel::ReadOnly).unwrap();
        let write = measure(&mut ctx, &cpus, NodeId(2), StreamKernel::WriteOnly).unwrap();
        let triad = measure(&mut ctx, &cpus, NodeId(2), StreamKernel::Triad).unwrap();
        assert!(read > write, "read {read:.0} vs write {write:.0}");
        assert!(triad < read && triad > write);
    }

    #[test]
    fn all_kernels_report_positive_bandwidth() {
        let mut ctx = ctx_xeon();
        let cpus: Bitmap = "0-19".parse().unwrap();
        for k in [
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Add,
            StreamKernel::Triad,
            StreamKernel::ReadOnly,
            StreamKernel::WriteOnly,
        ] {
            let v = measure(&mut ctx, &cpus, NodeId(0), k).unwrap();
            assert!(v > 0.0, "{} must be positive", k.name());
        }
    }

    #[test]
    fn remote_bandwidth_is_lower() {
        let mut ctx = ctx_xeon();
        let pkg0: Bitmap = "0-19".parse().unwrap();
        let local = triad_mbps(&mut ctx, &pkg0, NodeId(0)).unwrap();
        let remote = triad_mbps(&mut ctx, &pkg0, NodeId(1)).unwrap();
        assert!(remote < 0.6 * local, "remote triad {remote:.0} vs local {local:.0}");
    }

    #[test]
    fn measurement_frees_its_buffer() {
        let mut ctx = ctx_xeon();
        let cpus: Bitmap = "0-19".parse().unwrap();
        let before = ctx.mm.available(NodeId(0));
        let _ = triad_mbps(&mut ctx, &cpus, NodeId(0)).unwrap();
        assert_eq!(ctx.mm.available(NodeId(0)), before);
    }

    #[test]
    fn unallocatable_node_returns_none() {
        // MCDRAM on KNL can't hold the bench buffer if we fill it first.
        let machine = Arc::new(Machine::knl_snc4_flat());
        let mut ctx = BenchContext::new(machine);
        let c0: Bitmap = "0-15".parse().unwrap();
        let avail = ctx.mm.available(NodeId(4));
        let hog = ctx.mm().alloc(avail, AllocPolicy::Bind(NodeId(4))).unwrap();
        assert_eq!(triad_mbps(&mut ctx, &c0, NodeId(4)), None);
        ctx.mm().free(hog);
        assert!(triad_mbps(&mut ctx, &c0, NodeId(4)).is_some());
    }
}
