//! Pointer-chase latency measurement (lmbench's `lat_mem_rd`).
//!
//! A single thread walks a dependency chain through a buffer much
//! larger than the LLC; every load misses and must wait the full
//! memory latency, so `time / misses` *is* the latency.

use crate::BenchContext;
use hetmem_bitmap::Bitmap;
use hetmem_memsim::{AccessPattern, AllocPolicy, BufferAccess, Phase};
use hetmem_topology::NodeId;

/// Measures idle read latency (ns) from one PU of `initiator` to
/// `node`. Returns `None` when the chase buffer can't be bound there.
pub fn latency_ns(ctx: &mut BenchContext, initiator: &Bitmap, node: NodeId) -> Option<f64> {
    let bytes = ctx.buffer_bytes(node);
    let region = ctx.mm().alloc(bytes, AllocPolicy::Bind(node)).ok()?;
    // lmbench pins a single thread.
    let mut one = initiator.clone();
    one.singlify();
    let phase = Phase {
        name: "lat_mem_rd".into(),
        accesses: vec![BufferAccess::new(region, bytes, 0, AccessPattern::PointerChase)],
        threads: 1,
        initiator: one,
        compute_ns: 0.0,
    };
    let report = ctx.engine().run_phase(&ctx.mm, &phase);
    ctx.mm().free(region);
    let misses = report.buffers[0].llc_misses as f64;
    (misses > 0.0).then(|| report.time_ns / misses)
}

/// lmbench's classic latency-vs-working-set curve: chase latency for a
/// sweep of buffer sizes. Small working sets resolve in the CPU caches
/// (near-zero effective memory latency in our model), large ones expose
/// the full device latency — the knee marks the LLC capacity.
pub fn latency_curve(
    ctx: &mut BenchContext,
    initiator: &Bitmap,
    node: NodeId,
    sizes: &[u64],
) -> Vec<(u64, f64)> {
    let mut out = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        let Ok(region) = ctx.mm().alloc(bytes, AllocPolicy::Bind(node)) else {
            continue;
        };
        let mut one = initiator.clone();
        one.singlify();
        // Walk the buffer several times so per-access cost is stable.
        let passes = 8u64;
        let phase = Phase {
            name: "lat_mem_rd-curve".into(),
            accesses: vec![BufferAccess::new(
                region,
                bytes * passes,
                0,
                AccessPattern::PointerChase,
            )],
            threads: 1,
            initiator: one,
            compute_ns: 0.0,
        };
        let report = ctx.engine().run_phase(&ctx.mm, &phase);
        ctx.mm().free(region);
        let accesses = (bytes * passes / 64) as f64;
        out.push((bytes, report.time_ns / accesses));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_memsim::Machine;
    use std::sync::Arc;

    #[test]
    fn xeon_latencies_ranked_correctly() {
        let mut ctx = BenchContext::new(Arc::new(Machine::xeon_1lm_no_snc()));
        let cpus: Bitmap = "0-19".parse().unwrap();
        let dram = latency_ns(&mut ctx, &cpus, NodeId(0)).unwrap();
        let nv = latency_ns(&mut ctx, &cpus, NodeId(2)).unwrap();
        // Idle-ish latencies: ~85-110 DRAM, ~310-360 NVDIMM.
        assert!((75.0..120.0).contains(&dram), "DRAM latency {dram:.0} ns");
        assert!((290.0..400.0).contains(&nv), "NVDIMM latency {nv:.0} ns");
        assert!(nv > 2.5 * dram);
    }

    #[test]
    fn knl_latencies_are_similar() {
        // The paper's key KNL observation: MCDRAM does NOT win on
        // latency.
        let mut ctx = BenchContext::new(Arc::new(Machine::knl_snc4_flat()));
        let c0: Bitmap = "0-15".parse().unwrap();
        let dram = latency_ns(&mut ctx, &c0, NodeId(0)).unwrap();
        let hbm = latency_ns(&mut ctx, &c0, NodeId(4)).unwrap();
        let ratio = hbm / dram;
        assert!((0.9..1.25).contains(&ratio), "HBM/DRAM latency ratio {ratio:.2}");
    }

    #[test]
    fn latency_curve_shows_llc_knee() {
        let mut ctx = BenchContext::new(Arc::new(Machine::xeon_1lm_no_snc()));
        let cpus: Bitmap = "0".parse().unwrap();
        let sizes: Vec<u64> = [1u64 << 20, 8 << 20, 64 << 20, 512 << 20, 2 << 30].to_vec();
        let curve = latency_curve(&mut ctx, &cpus, NodeId(0), &sizes);
        assert_eq!(curve.len(), sizes.len());
        // Monotone non-decreasing with working set.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "curve not monotone: {curve:?}");
        }
        // Cache-resident point is far below the memory plateau.
        let first = curve.first().unwrap().1;
        let last = curve.last().unwrap().1;
        assert!(last > 5.0 * first, "no LLC knee visible: {curve:?}");
        // The plateau approximates the device's idle latency.
        assert!((60.0..120.0).contains(&last), "plateau {last:.0} ns");
    }

    #[test]
    fn remote_latency_higher_than_local() {
        let mut ctx = BenchContext::new(Arc::new(Machine::xeon_1lm_no_snc()));
        let pkg0: Bitmap = "0-19".parse().unwrap();
        let local = latency_ns(&mut ctx, &pkg0, NodeId(0)).unwrap();
        let remote = latency_ns(&mut ctx, &pkg0, NodeId(1)).unwrap();
        assert!(remote > local + 40.0, "remote {remote:.0} vs local {local:.0}");
    }
}
