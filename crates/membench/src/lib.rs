//! Micro-benchmarks measuring memory attributes — the paper's
//! "External Sources: Benchmarks" column of Table I.
//!
//! Until firmware HMAT tables are universal, hwloc "may use
//! experimentally measured attribute values" (§IV-A2); the paper names
//! STREAM for bandwidth, lmbench for latency and Google multichase for
//! both. This crate provides the same three instruments, executed
//! against the `hetmem-memsim` machine:
//!
//! * [`stream`] — Copy/Scale/Add/Triad kernels, plus read-only and
//!   write-only streams for the Read/Write bandwidth attributes;
//! * [`chase`] — a dependent pointer chase measuring idle latency
//!   (lmbench's `lat_mem_rd`);
//! * [`loaded_latency_ns`] (multichase) — loaded latency: one chaser
//!   while bandwidth threads hammer the same node.
//!
//! [`feed_attrs`] runs the suite over every (initiator, target) pair —
//! including *remote* pairs, which the paper points out Linux/HMAT
//! cannot describe but benchmarks can (§VIII) — and stores the results
//! in a [`MemAttrs`](hetmem_core::MemAttrs) registry.

#![warn(missing_docs)]
pub mod chase;
pub mod stream;

mod feed;
mod multichase;

pub use feed::{feed_attrs, register_stream_triad_attr, BenchOptions};
pub use multichase::loaded_latency_ns;

use hetmem_bitmap::Bitmap;
use hetmem_memsim::{AccessEngine, Machine, MemoryManager};
use hetmem_topology::NodeId;
use std::sync::Arc;

/// A scratch context for running micro-benchmarks on a machine: its
/// own memory manager, so measurements never disturb application
/// allocations.
pub struct BenchContext {
    engine: AccessEngine,
    mm: MemoryManager,
}

impl BenchContext {
    /// Creates a context for `machine`.
    pub fn new(machine: Arc<Machine>) -> Self {
        BenchContext { engine: AccessEngine::new(machine.clone()), mm: MemoryManager::new(machine) }
    }

    /// The machine under test.
    pub fn machine(&self) -> &Arc<Machine> {
        self.engine.machine()
    }

    pub(crate) fn engine(&self) -> &AccessEngine {
        &self.engine
    }

    pub(crate) fn mm(&mut self) -> &mut MemoryManager {
        &mut self.mm
    }

    /// Picks a benchmark buffer size for `node`: large enough to defeat
    /// the LLC, small enough to fit comfortably.
    pub(crate) fn buffer_bytes(&self, node: NodeId) -> u64 {
        let usable = self.engine.machine().usable_capacity(node);
        (usable / 4).clamp(64 * 1024 * 1024, 1024 * 1024 * 1024)
    }
}

/// Number of worker threads an initiator cpuset provides.
pub(crate) fn threads_of(initiator: &Bitmap) -> usize {
    initiator.weight().unwrap_or(1).max(1)
}
