//! The unified placement engine: every placement decision in the
//! workspace — the single-tenant allocator, the tiering daemon, the
//! online guidance loop, and the multi-tenant service broker — is
//! planned here, as pure side-effect-free computation, and only
//! *committed* by the caller (via `MemoryManager`, leases, or
//! migration requests).
//!
//! The paper's central claim is that one attribute machinery (ranking
//! by Bandwidth/Latency/Capacity with attribute and capacity fallback)
//! can drive every placement decision. This crate is that machinery,
//! factored out of its former copies:
//!
//! * [`FallbackChain`] — the §IV-B attribute-fallback walk ("for
//!   instance Bandwidth instead of Read Bandwidth"), ending at
//!   Capacity which always exists;
//! * [`RankedCandidates`] — a scope-aware ranking over the attribute
//!   registry, remembering which attribute was actually used (so every
//!   consumer can emit `AttrFallback` telemetry) and supporting
//!   degraded-tier demotion to last-resort rank;
//! * [`AdmissionPolicy`] — how many bytes the requester may take on a
//!   node: [`Unconstrained`] for the single-tenant allocator,
//!   [`TierPolicy`] for the broker's quota / fair-share /
//!   static-partition arbitration;
//! * [`PlacementEngine::plan`] — the one Strict / NextTarget /
//!   PartialSpill planning walk, producing a [`PlacementPlan`] that
//!   records per-hop reasons, quota clamps, and the shortfall, ready
//!   for telemetry and for committing.
//!
//! Planning never mutates anything: capacity comes in through a
//! caller-supplied `free(node)` view (the allocator's live
//! `MemoryManager`, or the broker's ledger stripes under their locks),
//! so the broker can plan while holding its stripes and commit
//! atomically.

#![warn(missing_docs)]

use hetmem_bitmap::Bitmap;
use hetmem_core::{attr, AttrError, AttrId, MemAttrs, TargetValue};
use hetmem_memsim::{AllocError, PAGE_SIZE};
use hetmem_telemetry::Hop;
use hetmem_topology::{MemoryKind, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

pub use hetmem_telemetry::{FallbackMode, Scope};

/// Why the engine could not produce a ranking.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// No target carries a value for the criterion even after
    /// attribute fallback — only possible when the initiator has no
    /// local targets, since Capacity always exists.
    NoCandidates,
    /// The request's initiator cpuset is empty after intersection with
    /// the machine cpuset: no CPU that could perform the accesses.
    EmptyInitiator,
    /// Attribute registry error.
    Attr(AttrError),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCandidates => write!(f, "no candidate target for criterion"),
            PlacementError::EmptyInitiator => {
                write!(f, "initiator cpuset is empty after machine intersection")
            }
            PlacementError::Attr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl From<AttrError> for PlacementError {
    fn from(e: AttrError) -> Self {
        PlacementError::Attr(e)
    }
}

/// The §IV-B attribute-fallback chain: "the allocator may also
/// fallback to other similar attributes, for instance Bandwidth
/// instead of Read Bandwidth", ending at Capacity which is always
/// available.
#[derive(Debug, Clone, Copy)]
pub struct FallbackChain;

impl FallbackChain {
    /// The attributes to try for `criterion`, in order.
    pub fn for_criterion(criterion: AttrId) -> Vec<AttrId> {
        let mut chain = vec![criterion];
        match criterion {
            attr::READ_BANDWIDTH | attr::WRITE_BANDWIDTH => chain.push(attr::BANDWIDTH),
            attr::READ_LATENCY | attr::WRITE_LATENCY => chain.push(attr::LATENCY),
            _ => {}
        }
        if !chain.contains(&attr::CAPACITY) {
            chain.push(attr::CAPACITY);
        }
        chain
    }
}

/// Normalizes a request initiator: defaults to the whole machine,
/// intersects with the machine cpuset, and refuses cpusets that end up
/// empty — one rule for every consumer instead of per-caller variants.
pub fn normalize_initiator(
    requested: Option<&Bitmap>,
    machine_cpuset: &Bitmap,
) -> Result<Bitmap, PlacementError> {
    let mut cpus = match requested {
        Some(c) => c.clone(),
        None => machine_cpuset.clone(),
    };
    cpus.and_assign(machine_cpuset);
    if cpus.weight() == Some(0) {
        return Err(PlacementError::EmptyInitiator);
    }
    Ok(cpus)
}

/// A non-empty ranking produced by the attribute-fallback walk,
/// remembering the attribute actually used.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidates {
    requested: AttrId,
    used: AttrId,
    ranked: Vec<TargetValue>,
}

impl RankedCandidates {
    /// Builds a ranking from precomputed targets — the federation path
    /// ranks *peer brokers* by their gossiped capacity digests, mapping
    /// each (peer, tier) pair to a synthetic node id, then runs the
    /// ordinary planning walk over the result. `ranked` must be
    /// best-first; pass `used == requested` when no attribute fallback
    /// happened.
    pub fn from_ranking(
        requested: AttrId,
        used: AttrId,
        ranked: Vec<TargetValue>,
    ) -> RankedCandidates {
        RankedCandidates { requested, used, ranked }
    }

    /// The attribute the caller asked for.
    pub fn requested(&self) -> AttrId {
        self.requested
    }

    /// The attribute the ranking actually used after fallback.
    pub fn used(&self) -> AttrId {
        self.used
    }

    /// Whether the chain substituted a similar attribute — consumers
    /// must emit `AttrFallback` telemetry when this is true.
    pub fn attr_fell_back(&self) -> bool {
        self.used != self.requested
    }

    /// The ranked targets, best first, with their attribute values.
    pub fn targets(&self) -> &[TargetValue] {
        &self.ranked
    }

    /// The ranked node order, best first.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.ranked.iter().map(|tv| tv.node).collect()
    }

    /// Graceful degradation: nodes for which `last_resort` holds drop
    /// to the back of the ranking (stable within each group), so
    /// requests fall back to healthy tiers instead of hard-failing,
    /// yet a fully-degraded machine still serves from what it has.
    pub fn demote_last_resort(&mut self, last_resort: impl Fn(NodeId) -> bool) {
        let (healthy, last): (Vec<TargetValue>, Vec<TargetValue>) =
            std::mem::take(&mut self.ranked).into_iter().partition(|tv| !last_resort(tv.node));
        self.ranked = healthy.into_iter().chain(last).collect();
    }
}

/// How many bytes the requester may place on each node, beyond raw
/// capacity. Implementations may track bytes already planned in this
/// walk (the engine reports every accepted chunk via
/// [`AdmissionPolicy::committed`]).
pub trait AdmissionPolicy {
    /// Upper bound on bytes the requester may take on `node` right
    /// now, `u64::MAX` for "capacity is the only limit".
    fn admissible(&mut self, node: NodeId) -> u64;

    /// Informs the policy that the plan reserved `bytes` on `node`.
    fn committed(&mut self, _node: NodeId, _bytes: u64) {}
}

/// The single-tenant allocator's policy: capacity is the only limit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unconstrained;

impl AdmissionPolicy for Unconstrained {
    fn admissible(&mut self, _node: NodeId) -> u64 {
        u64::MAX
    }
}

/// How a [`TierPolicy`] divides scarce tiers between requesters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareMode {
    /// First come, first served: capacity (and quota) only.
    Fcfs,
    /// Weighted fair share with work-conserving borrowing.
    FairShare,
    /// Hard static partitioning by the guaranteed shares.
    StaticPartition,
}

/// A consistent per-tier snapshot, taken by the caller under its own
/// locks. All values are static for the duration of one planning walk;
/// the policy only adds the bytes it planned itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierSnapshot {
    /// Free bytes on the tier.
    pub free: u64,
    /// Bytes the requester already holds on the tier.
    pub used_by_requester: u64,
    /// The requester's guaranteed floor on the tier (reservation plus
    /// weight-proportional share).
    pub guarantee: u64,
    /// Sum over other requesters of their unclaimed guarantees — the
    /// portion of the free tier that may not be borrowed.
    pub others_shortfall: u64,
    /// Hard per-tier cap for the requester, if any.
    pub quota: Option<u64>,
}

/// The broker's admission arithmetic — quota clamp plus the
/// fair-share / static-partition test — over caller-snapshotted tier
/// state.
#[derive(Debug, Clone)]
pub struct TierPolicy {
    mode: ShareMode,
    node_kind: BTreeMap<NodeId, MemoryKind>,
    tiers: BTreeMap<MemoryKind, TierSnapshot>,
    planned: BTreeMap<MemoryKind, u64>,
}

impl TierPolicy {
    /// A policy over the given snapshots. `node_kind` maps every
    /// candidate node to its tier.
    pub fn new(
        mode: ShareMode,
        node_kind: BTreeMap<NodeId, MemoryKind>,
        tiers: BTreeMap<MemoryKind, TierSnapshot>,
    ) -> TierPolicy {
        TierPolicy { mode, node_kind, tiers, planned: BTreeMap::new() }
    }
}

impl AdmissionPolicy for TierPolicy {
    fn admissible(&mut self, node: NodeId) -> u64 {
        let Some(kind) = self.node_kind.get(&node) else {
            return 0;
        };
        let Some(snap) = self.tiers.get(kind) else {
            return 0;
        };
        let already = self.planned.get(kind).copied().unwrap_or(0);
        let used_mine = snap.used_by_requester + already;
        let quota_head = snap.quota.map(|q| q.saturating_sub(used_mine)).unwrap_or(u64::MAX);
        let base = match self.mode {
            ShareMode::Fcfs => u64::MAX,
            ShareMode::StaticPartition => snap.guarantee.saturating_sub(used_mine),
            ShareMode::FairShare => {
                let my_head = snap.guarantee.saturating_sub(used_mine);
                let free_t = snap.free.saturating_sub(already);
                let borrowable =
                    free_t.saturating_sub(snap.others_shortfall).saturating_sub(my_head);
                my_head.saturating_add(borrowable)
            }
        };
        base.min(quota_head)
    }

    fn committed(&mut self, node: NodeId, bytes: u64) {
        if let Some(&kind) = self.node_kind.get(&node) {
            *self.planned.entry(kind).or_insert(0) += bytes;
        }
    }
}

/// One admission clamp: the policy allowed fewer bytes on a node than
/// its capacity could have taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClampFact {
    /// The clamped node.
    pub node: NodeId,
    /// Bytes still wanted when the node was visited.
    pub requested: u64,
    /// Bytes the policy allowed there.
    pub allowed: u64,
}

/// Why a plan came up short.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanFailure {
    /// Strict/NextTarget: the (last) candidate could not hold the
    /// whole request.
    Insufficient {
        /// The candidate that was tried last.
        node: NodeId,
        /// Bytes requested of it.
        requested: u64,
        /// Bytes it had free.
        available: u64,
    },
    /// PartialSpill: the whole candidate set could not absorb the
    /// request.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Free bytes summed over every candidate.
        available: u64,
    },
}

impl PlanFailure {
    /// The equivalent memory-manager error (same variants and display
    /// strings the commit path would have produced).
    pub fn to_alloc_error(&self) -> AllocError {
        match *self {
            PlanFailure::Insufficient { node, requested, available } => {
                AllocError::InsufficientCapacity { node, requested, available }
            }
            PlanFailure::OutOfMemory { requested, available } => {
                AllocError::OutOfMemory { requested, available }
            }
        }
    }
}

/// What to place and everything needed to explain it: per-node chunks
/// in ranking order, fallback hops with reasons, admission clamps, and
/// the shortfall when the request could not be fully planned.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Planned `(node, bytes)` chunks, best target first. Empty when
    /// nothing could be placed.
    pub chunks: Vec<(NodeId, u64)>,
    /// Candidates that were tried and could not take the allocation
    /// (whole-buffer modes), or that filled up / were skipped during a
    /// spill — ready for `AllocDecision` telemetry.
    pub hops: Vec<Hop>,
    /// Admission clamps recorded during the walk, in visit order.
    pub clamps: Vec<ClampFact>,
    /// Bytes that could not be planned (0 on success).
    pub shortfall: u64,
    /// The terminal failure, when the plan is incomplete.
    pub failure: Option<PlanFailure>,
}

impl PlacementPlan {
    /// Whether the whole request was planned.
    pub fn is_complete(&self) -> bool {
        self.shortfall == 0
    }

    /// Fans a merged batch plan back out to its member requests: the
    /// plan placed `sizes.iter().sum()` bytes in one walk, and request
    /// `i` takes the next `sizes[i]` bytes of the chunk sequence in
    /// order. This is the batch planning entry point used by the
    /// sharded broker dispatcher — one walk, N grants — and it
    /// reproduces what N serial walks would have placed whenever the
    /// merged walk was neither clamped nor short (each serial prefix
    /// greedily fills the same ranked nodes).
    ///
    /// Returns `None` when the plan holds fewer bytes than the sizes
    /// demand (an incomplete plan must not be split — the caller falls
    /// back to serial admission).
    pub fn split(&self, sizes: &[u64]) -> Option<Vec<Vec<(NodeId, u64)>>> {
        let mut splits = Vec::with_capacity(sizes.len());
        let mut chunks = self.chunks.iter().copied();
        let mut carry: Option<(NodeId, u64)> = None;
        for &size in sizes {
            let mut want = size;
            let mut mine = Vec::new();
            while want > 0 {
                let (node, avail) = match carry.take() {
                    Some(c) => c,
                    None => chunks.next()?,
                };
                let take = avail.min(want);
                mine.push((node, take));
                want -= take;
                if avail > take {
                    carry = Some((node, avail - take));
                }
            }
            splits.push(mine);
        }
        Some(splits)
    }
}

/// One planning request: how many bytes, which capacity-fallback mode,
/// and whether to plan in whole pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanRequest {
    /// Bytes to place.
    pub size: u64,
    /// Capacity-fallback mode.
    pub mode: FallbackMode,
    /// Plan in whole pages, like the kernel-backed allocator rounds
    /// (`true` for the allocator committing via `Bind`-equivalent
    /// splits; `false` for the broker, whose ledgers track raw bytes
    /// and whose commit path rounds).
    pub page_quantize: bool,
}

/// The decision pipeline: ranking over an attribute registry plus the
/// shared planning walk. Stateless beyond the registry handle; cheap
/// to construct.
#[derive(Debug, Clone)]
pub struct PlacementEngine {
    attrs: Arc<MemAttrs>,
}

impl PlacementEngine {
    /// An engine ranking over `attrs`.
    pub fn new(attrs: Arc<MemAttrs>) -> PlacementEngine {
        PlacementEngine { attrs }
    }

    /// The attribute registry the engine ranks with.
    pub fn attrs(&self) -> &Arc<MemAttrs> {
        &self.attrs
    }

    /// Walks the attribute-fallback chain and returns the first
    /// non-empty ranking, remembering which attribute produced it.
    pub fn rank(
        &self,
        criterion: AttrId,
        initiator: &Bitmap,
        scope: Scope,
    ) -> Result<RankedCandidates, PlacementError> {
        for id in FallbackChain::for_criterion(criterion) {
            let ranked = match scope {
                Scope::Local => self.attrs.rank_local_targets(id, initiator)?,
                Scope::Any => self.attrs.rank_targets(id, initiator)?,
            };
            if !ranked.is_empty() {
                return Ok(RankedCandidates { requested: criterion, used: id, ranked });
            }
        }
        Err(PlacementError::NoCandidates)
    }

    /// The shared planning walk. Visits `candidates` best first,
    /// bounds every take by the caller's `free` view and by
    /// `policy.admissible`, and honors the fallback mode:
    ///
    /// * `Strict` — the best candidate takes the whole request or the
    ///   plan fails (one hop, one candidate visited);
    /// * `NextTarget` — the first candidate that can hold the whole
    ///   request takes it; earlier candidates become hops;
    /// * `PartialSpill` — candidates fill in ranking order (page
    ///   floor per take when `page_quantize`); a completed split
    ///   reconstructs the hop list (filled vs skipped) exactly as the
    ///   allocator's telemetry always reported it.
    ///
    /// Pure: nothing is reserved anywhere — the caller commits the
    /// returned chunks (or doesn't) under its own locks.
    pub fn plan(
        &self,
        req: &PlanRequest,
        candidates: &[NodeId],
        free: impl Fn(NodeId) -> u64,
        policy: &mut dyn AdmissionPolicy,
    ) -> PlacementPlan {
        let total =
            if req.page_quantize { req.size.div_ceil(PAGE_SIZE) * PAGE_SIZE } else { req.size };
        let mut chunks: Vec<(NodeId, u64)> = Vec::new();
        let mut hops: Vec<Hop> = Vec::new();
        let mut clamps: Vec<ClampFact> = Vec::new();
        let mut failure: Option<PlanFailure> = None;
        let mut remaining = total;
        for &node in candidates {
            if remaining == 0 {
                break;
            }
            let node_free = free(node);
            let policy_allowed = policy.admissible(node);
            let capacity_allowed = node_free.min(remaining);
            if policy_allowed < capacity_allowed {
                clamps.push(ClampFact { node, requested: remaining, allowed: policy_allowed });
            }
            match req.mode {
                FallbackMode::Strict | FallbackMode::NextTarget => {
                    let take = capacity_allowed.min(policy_allowed);
                    if take >= remaining {
                        chunks.push((node, remaining));
                        policy.committed(node, remaining);
                        remaining = 0;
                    } else {
                        let fail = PlanFailure::Insufficient {
                            node,
                            requested: remaining,
                            available: node_free,
                        };
                        hops.push(Hop { node, reason: fail.to_alloc_error().to_string() });
                        failure = Some(fail);
                    }
                    if req.mode == FallbackMode::Strict {
                        break;
                    }
                }
                FallbackMode::PartialSpill => {
                    let mut cap = capacity_allowed;
                    if req.page_quantize {
                        cap = cap / PAGE_SIZE * PAGE_SIZE;
                    }
                    let take = cap.min(policy_allowed);
                    if take > 0 {
                        chunks.push((node, take));
                        policy.committed(node, take);
                        remaining -= take;
                    }
                }
            }
        }
        if remaining == 0 {
            failure = None;
            if req.mode == FallbackMode::PartialSpill
                && !chunks.is_empty()
                && (chunks.len() > 1 || chunks[0].0 != candidates[0])
            {
                // Reconstruct the hops: every candidate before the
                // last node that took bytes either filled up (partial
                // contribution) or was already full (skipped).
                let last = chunks.last().expect("non-empty chunks").0;
                for &node in candidates {
                    if node == last {
                        break;
                    }
                    let reason = if chunks.iter().any(|&(n, _)| n == node) {
                        "filled to capacity; spilled remainder".to_string()
                    } else {
                        "full; skipped".to_string()
                    };
                    hops.push(Hop { node, reason });
                }
            }
        } else if req.mode == FallbackMode::PartialSpill {
            let available: u64 = candidates.iter().map(|&n| free(n)).sum();
            failure = Some(PlanFailure::OutOfMemory { requested: total, available });
        }
        PlacementPlan { chunks, hops, clamps, shortfall: remaining, failure }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_core::discovery;
    use hetmem_memsim::Machine;
    use hetmem_topology::GIB;

    fn knl_engine() -> (Arc<Machine>, PlacementEngine) {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let attrs = Arc::new(discovery::from_firmware(&machine, true).unwrap());
        (machine, PlacementEngine::new(attrs))
    }

    #[test]
    fn split_fans_chunks_out_in_arrival_order() {
        let plan = PlacementPlan {
            chunks: vec![(NodeId(4), 6), (NodeId(0), 4)],
            hops: vec![],
            clamps: vec![],
            shortfall: 0,
            failure: None,
        };
        let splits = plan.split(&[2, 5, 3]).expect("fits");
        assert_eq!(splits[0], vec![(NodeId(4), 2)]);
        assert_eq!(splits[1], vec![(NodeId(4), 4), (NodeId(0), 1)]);
        assert_eq!(splits[2], vec![(NodeId(0), 3)]);
        // Conservation: every byte of every chunk lands in one split.
        let total: u64 = splits.iter().flatten().map(|&(_, b)| b).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn split_refuses_a_short_plan() {
        let plan = PlacementPlan {
            chunks: vec![(NodeId(4), 6)],
            hops: vec![],
            clamps: vec![],
            shortfall: 2,
            failure: None,
        };
        assert!(plan.split(&[4, 4]).is_none());
    }

    #[test]
    fn chain_substitutes_similar_attrs_and_ends_at_capacity() {
        assert_eq!(
            FallbackChain::for_criterion(attr::READ_BANDWIDTH),
            vec![attr::READ_BANDWIDTH, attr::BANDWIDTH, attr::CAPACITY]
        );
        assert_eq!(
            FallbackChain::for_criterion(attr::WRITE_LATENCY),
            vec![attr::WRITE_LATENCY, attr::LATENCY, attr::CAPACITY]
        );
        assert_eq!(FallbackChain::for_criterion(attr::CAPACITY), vec![attr::CAPACITY]);
        assert_eq!(
            FallbackChain::for_criterion(attr::BANDWIDTH),
            vec![attr::BANDWIDTH, attr::CAPACITY]
        );
    }

    #[test]
    fn rank_records_the_attribute_fallback() {
        let (_, engine) = knl_engine();
        let c0: Bitmap = "0-15".parse().unwrap();
        let ranking = engine.rank(attr::READ_BANDWIDTH, &c0, Scope::Local).unwrap();
        assert!(ranking.attr_fell_back());
        assert_eq!(ranking.requested(), attr::READ_BANDWIDTH);
        assert_eq!(ranking.used(), attr::BANDWIDTH);
        let direct = engine.rank(attr::BANDWIDTH, &c0, Scope::Local).unwrap();
        assert!(!direct.attr_fell_back());
        assert_eq!(direct.nodes(), ranking.nodes());
    }

    #[test]
    fn normalize_defaults_intersects_and_refuses_empty() {
        let machine: Bitmap = "0-63".parse().unwrap();
        assert_eq!(normalize_initiator(None, &machine).unwrap(), machine);
        let wide: Bitmap = "48-80".parse().unwrap();
        let clipped = normalize_initiator(Some(&wide), &machine).unwrap();
        assert_eq!(clipped, "48-63".parse().unwrap());
        let alien: Bitmap = "100-120".parse().unwrap();
        assert_eq!(
            normalize_initiator(Some(&alien), &machine),
            Err(PlacementError::EmptyInitiator)
        );
    }

    #[test]
    fn demotion_is_a_stable_partition() {
        let (_, engine) = knl_engine();
        let c0: Bitmap = "0-15".parse().unwrap();
        let mut ranking = engine.rank(attr::BANDWIDTH, &c0, Scope::Local).unwrap();
        let before = ranking.nodes();
        ranking.demote_last_resort(|n| n == before[0]);
        let after = ranking.nodes();
        assert_eq!(after.last(), Some(&before[0]));
        assert_eq!(&after[..after.len() - 1], &before[1..]);
    }

    #[test]
    fn strict_plan_is_single_node_or_fails_with_hop() {
        let (_, engine) = knl_engine();
        let free = |n: NodeId| if n == NodeId(4) { 2 * GIB } else { 24 * GIB };
        let req = PlanRequest { size: GIB, mode: FallbackMode::Strict, page_quantize: true };
        let plan = engine.plan(&req, &[NodeId(4), NodeId(0)], free, &mut Unconstrained);
        assert_eq!(plan.chunks, vec![(NodeId(4), GIB)]);
        assert!(plan.is_complete() && plan.hops.is_empty());

        let req = PlanRequest { size: 4 * GIB, mode: FallbackMode::Strict, page_quantize: true };
        let plan = engine.plan(&req, &[NodeId(4), NodeId(0)], free, &mut Unconstrained);
        assert!(plan.chunks.is_empty());
        assert_eq!(plan.shortfall, 4 * GIB);
        assert_eq!(plan.hops.len(), 1);
        assert_eq!(
            plan.failure,
            Some(PlanFailure::Insufficient {
                node: NodeId(4),
                requested: 4 * GIB,
                available: 2 * GIB
            })
        );
    }

    #[test]
    fn next_target_walks_and_spill_splits() {
        let (_, engine) = knl_engine();
        let free = |n: NodeId| if n == NodeId(4) { 2 * GIB } else { 24 * GIB };
        let req =
            PlanRequest { size: 4 * GIB, mode: FallbackMode::NextTarget, page_quantize: true };
        let plan = engine.plan(&req, &[NodeId(4), NodeId(0)], free, &mut Unconstrained);
        assert_eq!(plan.chunks, vec![(NodeId(0), 4 * GIB)]);
        assert_eq!(plan.hops.len(), 1, "the full MCDRAM is a hop");

        let req =
            PlanRequest { size: 4 * GIB, mode: FallbackMode::PartialSpill, page_quantize: true };
        let plan = engine.plan(&req, &[NodeId(4), NodeId(0)], free, &mut Unconstrained);
        assert_eq!(plan.chunks, vec![(NodeId(4), 2 * GIB), (NodeId(0), 2 * GIB)]);
        assert_eq!(plan.hops.len(), 1);
        assert_eq!(plan.hops[0].node, NodeId(4));
        assert!(plan.hops[0].reason.contains("spilled"));
    }

    #[test]
    fn spill_failure_reports_total_available() {
        let (_, engine) = knl_engine();
        let free = |_: NodeId| GIB;
        let req =
            PlanRequest { size: 8 * GIB, mode: FallbackMode::PartialSpill, page_quantize: true };
        let plan = engine.plan(&req, &[NodeId(4), NodeId(0)], free, &mut Unconstrained);
        assert_eq!(plan.shortfall, 6 * GIB);
        assert_eq!(
            plan.failure,
            Some(PlanFailure::OutOfMemory { requested: 8 * GIB, available: 2 * GIB })
        );
    }

    #[test]
    fn tier_policy_replays_fair_share_and_quota() {
        let node_kind: BTreeMap<NodeId, MemoryKind> =
            [(NodeId(4), MemoryKind::Hbm), (NodeId(0), MemoryKind::Dram)].into_iter().collect();
        let tiers: BTreeMap<MemoryKind, TierSnapshot> = [
            (
                MemoryKind::Hbm,
                TierSnapshot {
                    free: 4 * GIB,
                    used_by_requester: 0,
                    guarantee: 2 * GIB,
                    others_shortfall: 2 * GIB,
                    quota: None,
                },
            ),
            (
                MemoryKind::Dram,
                TierSnapshot {
                    free: 24 * GIB,
                    used_by_requester: 0,
                    guarantee: 12 * GIB,
                    others_shortfall: 12 * GIB,
                    quota: None,
                },
            ),
        ]
        .into_iter()
        .collect();
        let mut policy = TierPolicy::new(ShareMode::FairShare, node_kind.clone(), tiers.clone());
        // Guarantee 2 GiB, free 4 GiB, others' shortfall 2 GiB: may
        // take exactly the guarantee, nothing borrowable.
        assert_eq!(policy.admissible(NodeId(4)), 2 * GIB);
        policy.committed(NodeId(4), 2 * GIB);
        assert_eq!(policy.admissible(NodeId(4)), 0, "planned bytes consume the head");

        let mut capped = TierPolicy::new(
            ShareMode::Fcfs,
            node_kind,
            tiers
                .into_iter()
                .map(|(k, mut s)| {
                    s.quota = Some(GIB);
                    (k, s)
                })
                .collect(),
        );
        assert_eq!(capped.admissible(NodeId(4)), GIB, "quota caps even FCFS");
    }

    #[test]
    fn admission_clamps_are_recorded_in_visit_order() {
        let (_, engine) = knl_engine();
        let node_kind: BTreeMap<NodeId, MemoryKind> =
            [(NodeId(4), MemoryKind::Hbm), (NodeId(0), MemoryKind::Dram)].into_iter().collect();
        let tiers: BTreeMap<MemoryKind, TierSnapshot> = [
            (
                MemoryKind::Hbm,
                TierSnapshot { free: 8 * GIB, quota: Some(GIB), ..Default::default() },
            ),
            (MemoryKind::Dram, TierSnapshot { free: 24 * GIB, ..Default::default() }),
        ]
        .into_iter()
        .collect();
        let mut policy = TierPolicy::new(ShareMode::Fcfs, node_kind, tiers);
        let req =
            PlanRequest { size: 4 * GIB, mode: FallbackMode::PartialSpill, page_quantize: false };
        let free = |n: NodeId| if n == NodeId(4) { 8 * GIB } else { 24 * GIB };
        let plan = engine.plan(&req, &[NodeId(4), NodeId(0)], free, &mut policy);
        assert_eq!(plan.chunks, vec![(NodeId(4), GIB), (NodeId(0), 3 * GIB)]);
        assert_eq!(
            plan.clamps,
            vec![ClampFact { node: NodeId(4), requested: 4 * GIB, allowed: GIB }]
        );
        assert!(plan.is_complete());
    }
}
