//! Property tests for the placement engine: every `PlacementPlan` is
//! capacity-safe, mode shapes hold (Strict/NextTarget single-node,
//! PartialSpill exact-or-shortfall), and admission policies bound what
//! a plan may take per tier.

use hetmem_core::discovery;
use hetmem_memsim::{Machine, PAGE_SIZE};
use hetmem_placement::{
    FallbackMode, PlacementEngine, PlanFailure, PlanRequest, ShareMode, TierPolicy, TierSnapshot,
    Unconstrained,
};
use hetmem_topology::{MemoryKind, NodeId};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const GIB: u64 = 1 << 30;

fn engine() -> PlacementEngine {
    let machine = Arc::new(Machine::knl_snc4_flat());
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("firmware attrs"));
    PlacementEngine::new(attrs)
}

fn mode(sel: u8) -> FallbackMode {
    match sel % 3 {
        0 => FallbackMode::Strict,
        1 => FallbackMode::NextTarget,
        _ => FallbackMode::PartialSpill,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// No plan ever takes more from a node than the caller's free
    /// view offers, every take is positive, no node repeats, and the
    /// chunks plus the shortfall always account for the whole
    /// (quantized) request.
    #[test]
    fn plans_are_capacity_safe(
        frees in prop::collection::vec(0u64..16 * GIB, 4),
        size in 0u64..48 * GIB,
        sel in 0u8..3,
        qsel in 0u8..2,
    ) {
        let quantize = qsel == 1;
        let eng = engine();
        let candidates: Vec<NodeId> = (0..4).map(NodeId).collect();
        let free = |n: NodeId| frees[n.0 as usize];
        let req = PlanRequest { size, mode: mode(sel), page_quantize: quantize };
        let plan = eng.plan(&req, &candidates, free, &mut Unconstrained);
        let total =
            if quantize { size.div_ceil(PAGE_SIZE) * PAGE_SIZE } else { size };
        let mut seen = std::collections::BTreeSet::new();
        for &(n, bytes) in &plan.chunks {
            prop_assert!(bytes > 0, "zero-byte chunk on {n}");
            prop_assert!(bytes <= free(n), "{bytes} planned on {n} with {} free", free(n));
            prop_assert!(seen.insert(n), "node {n} planned twice");
        }
        let planned: u64 = plan.chunks.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(planned + plan.shortfall, total);
        prop_assert_eq!(plan.is_complete(), plan.failure.is_none());
        prop_assert!(plan.clamps.is_empty(), "Unconstrained never clamps");
    }

    /// Strict commits to the best candidate: exactly one chunk (whole
    /// request, on the first candidate) or an Insufficient failure on
    /// that same candidate, never a spill.
    #[test]
    fn strict_is_single_node_or_error(
        frees in prop::collection::vec(0u64..8 * GIB, 4),
        size in 1u64..16 * GIB,
    ) {
        let eng = engine();
        let candidates: Vec<NodeId> = (0..4).map(NodeId).collect();
        let free = |n: NodeId| frees[n.0 as usize];
        let req = PlanRequest { size, mode: FallbackMode::Strict, page_quantize: true };
        let plan = eng.plan(&req, &candidates, free, &mut Unconstrained);
        let total = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if plan.is_complete() {
            prop_assert_eq!(plan.chunks.clone(), vec![(candidates[0], total)]);
            prop_assert!(plan.hops.is_empty());
        } else {
            prop_assert!(plan.chunks.is_empty());
            prop_assert_eq!(plan.shortfall, total);
            match plan.failure {
                Some(PlanFailure::Insufficient { node, requested, available }) => {
                    prop_assert_eq!(node, candidates[0]);
                    prop_assert_eq!(requested, total);
                    prop_assert_eq!(available, free(candidates[0]));
                }
                other => prop_assert!(false, "strict failure should be Insufficient: {other:?}"),
            }
            prop_assert_eq!(plan.hops.len(), 1);
        }
    }

    /// NextTarget never splits: the plan is one whole-request chunk on
    /// the first candidate that fits, with one hop per candidate
    /// skipped before it.
    #[test]
    fn next_target_is_single_node(
        frees in prop::collection::vec(0u64..8 * GIB, 4),
        size in 1u64..16 * GIB,
    ) {
        let eng = engine();
        let candidates: Vec<NodeId> = (0..4).map(NodeId).collect();
        let free = |n: NodeId| frees[n.0 as usize];
        let req = PlanRequest { size, mode: FallbackMode::NextTarget, page_quantize: true };
        let plan = eng.plan(&req, &candidates, free, &mut Unconstrained);
        let total = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        prop_assert!(plan.chunks.len() <= 1);
        if plan.is_complete() {
            let (node, bytes) = plan.chunks[0];
            prop_assert_eq!(bytes, total);
            // The winner is the first candidate that fits; everything
            // ranked ahead of it became a hop.
            let winner_rank = candidates.iter().position(|&n| n == node).expect("candidate");
            prop_assert!(candidates[..winner_rank].iter().all(|&n| free(n) < total));
            prop_assert_eq!(plan.hops.len(), winner_rank);
        } else {
            prop_assert_eq!(plan.hops.len(), candidates.len());
            prop_assert!(candidates.iter().all(|&n| free(n) < total));
        }
    }

    /// PartialSpill either sums exactly to the request or reports the
    /// shortfall with an OutOfMemory failure over the whole set.
    #[test]
    fn spill_sums_exactly_or_reports_shortfall(
        frees in prop::collection::vec(0u64..8 * GIB, 4),
        size in 1u64..40 * GIB,
    ) {
        let eng = engine();
        let candidates: Vec<NodeId> = (0..4).map(NodeId).collect();
        let free = |n: NodeId| frees[n.0 as usize];
        let req = PlanRequest { size, mode: FallbackMode::PartialSpill, page_quantize: true };
        let plan = eng.plan(&req, &candidates, free, &mut Unconstrained);
        let total = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let planned: u64 = plan.chunks.iter().map(|&(_, b)| b).sum();
        if plan.is_complete() {
            prop_assert_eq!(planned, total);
        } else {
            prop_assert_eq!(planned + plan.shortfall, total);
            match plan.failure {
                Some(PlanFailure::OutOfMemory { requested, available }) => {
                    prop_assert_eq!(requested, total);
                    prop_assert_eq!(available, frees.iter().sum::<u64>());
                }
                other => prop_assert!(false, "spill failure should be OutOfMemory: {other:?}"),
            }
        }
    }

    /// An admission quota is a hard per-tier ceiling: the bytes a plan
    /// takes on a tier never exceed the tier quota, clamps are
    /// recorded whenever policy (not capacity) was the binding limit.
    #[test]
    fn quota_bounds_per_tier_takes(
        frees in prop::collection::vec(0u64..8 * GIB, 4),
        size in 1u64..40 * GIB,
        quota in 0u64..4 * GIB,
        sel in 0u8..3,
    ) {
        let eng = engine();
        let candidates: Vec<NodeId> = (0..4).map(NodeId).collect();
        let free = |n: NodeId| frees[n.0 as usize];
        // Nodes 0-1 form the quota'd fast tier, 2-3 the open tier.
        let node_kind: BTreeMap<NodeId, MemoryKind> = candidates
            .iter()
            .map(|&n| (n, if n.0 < 2 { MemoryKind::Hbm } else { MemoryKind::Dram }))
            .collect();
        let tiers: BTreeMap<MemoryKind, TierSnapshot> = [
            (
                MemoryKind::Hbm,
                TierSnapshot { free: frees[0] + frees[1], quota: Some(quota), ..Default::default() },
            ),
            (
                MemoryKind::Dram,
                TierSnapshot { free: frees[2] + frees[3], ..Default::default() },
            ),
        ]
        .into_iter()
        .collect();
        let mut policy = TierPolicy::new(ShareMode::Fcfs, node_kind.clone(), tiers);
        let req = PlanRequest { size, mode: mode(sel), page_quantize: false };
        let plan = eng.plan(&req, &candidates, free, &mut policy);
        let fast_bytes: u64 = plan
            .chunks
            .iter()
            .filter(|&&(n, _)| node_kind[&n] == MemoryKind::Hbm)
            .map(|&(_, b)| b)
            .sum();
        prop_assert!(fast_bytes <= quota, "fast tier got {fast_bytes} with quota {quota}");
        for c in &plan.clamps {
            prop_assert!(c.allowed < c.requested.min(free(c.node)));
        }
    }
}
