//! The embeddable per-tenant guidance plane.
//!
//! [`GuidancePlane`] is the reusable core split out of
//! [`GuidanceEngine`](crate::GuidanceEngine): a tenant-scoped sampler
//! feeding the EWMA [`HotnessMap`], hysteresis bookkeeping, and the
//! promote/demote candidate selection — everything *except* target
//! ranking (which stays with the shared `hetmem-placement` walk) and
//! migration execution (which belongs to whoever owns the memory:
//! the scenario engine or the service broker's lease table).
//!
//! Two additions over the legacy engine, both following the
//! PEBS-at-scale literature (Roca Nonell et al.) and Olson et al.'s
//! online-guidance runtime:
//!
//! * [`AdaptiveConfig`] turns on an *adaptive sample rate*: the period
//!   backs off exponentially while the estimated hot set is stable
//!   (sampling a steady workload is wasted overhead) and bursts back
//!   to the minimum period the moment the hot set changes (a phase
//!   change is exactly when stale estimates are most expensive).
//!   Without it the plane never touches the sampler's period and the
//!   RNG stream is bit-identical to the legacy engine's.
//! * [`MigrationBudget`] caps the modelled migration cost spent per
//!   epoch, so a broker folding many tenants' hotness into arbitration
//!   batches moves under a bound instead of thrashing.

use crate::hotness::HotnessMap;
use crate::sampler::{Sampler, SamplerConfig};
use crate::{GuidancePolicy, GuidanceStats};
use hetmem_memsim::{PhaseReport, RegionId};
use hetmem_topology::NodeId;
use std::collections::BTreeMap;

/// Adaptive sample-rate policy: exponential back-off while the hot set
/// is stable, burst to `min_period` on a detected phase change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Floor of the sampling period — the burst rate after a phase
    /// change (smaller = denser sampling).
    pub min_period: u64,
    /// Ceiling the period backs off toward while estimates are stable.
    pub max_period: u64,
    /// Multiplier applied to the period per stable interval.
    pub backoff: u64,
    /// Intervals the period is held at the burst rate after a phase
    /// change before back-off resumes.
    pub burst_intervals: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig { min_period: 4096, max_period: 262_144, backoff: 2, burst_intervals: 4 }
    }
}

#[derive(Debug)]
struct AdaptiveState {
    cfg: AdaptiveConfig,
    /// Hot set after the previous interval; a symmetric difference is
    /// the phase-change detector.
    last_hot: Vec<RegionId>,
    burst_left: u64,
}

/// What one [`GuidancePlane::observe`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserveOutcome {
    /// Modelled sampling overhead of the interval, ns.
    pub overhead_ns: f64,
    /// `(old, new)` when the adaptive controller changed the sampling
    /// period this interval.
    pub rate_change: Option<(u64, u64)>,
}

/// A caller-provided view of one region, as the plane's planner needs
/// it: identity, size, and how many bytes already sit on the hot
/// target. The scenario engine builds these from `MemoryManager`
/// regions; the broker builds them from its lease table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionView {
    /// The region.
    pub id: RegionId,
    /// Total size, bytes.
    pub size: u64,
    /// Bytes currently placed on the hot target node.
    pub on_target: u64,
}

/// A per-epoch cap on modelled migration cost. The broker resets it at
/// each epoch turnover and charges every planned move against it;
/// moves that would exceed the cap are deferred to a later epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationBudget {
    budget_ns: f64,
    spent_ns: f64,
    deferred: u64,
}

impl MigrationBudget {
    /// A budget allowing `budget_ns` of migration cost per epoch.
    pub fn new(budget_ns: f64) -> Self {
        MigrationBudget { budget_ns, spent_ns: 0.0, deferred: 0 }
    }

    /// Starts a new epoch: spent and deferred counters reset.
    pub fn reset(&mut self) {
        self.spent_ns = 0.0;
        self.deferred = 0;
    }

    /// Charges `cost_ns` if it fits under the cap; otherwise counts
    /// the move as deferred and returns `false`.
    pub fn try_charge(&mut self, cost_ns: f64) -> bool {
        if self.spent_ns + cost_ns <= self.budget_ns {
            self.spent_ns += cost_ns;
            true
        } else {
            self.deferred += 1;
            false
        }
    }

    /// Charges `cost_ns` unconditionally. For callers that only learn
    /// a move's true cost after executing it (the broker's fold): gate
    /// on [`MigrationBudget::remaining_ns`] first, charge the actual
    /// cost after — the spend can then overshoot the cap by at most
    /// one move.
    pub fn charge(&mut self, cost_ns: f64) {
        self.spent_ns += cost_ns;
    }

    /// Counts one move deferred without attempting a charge (the cap
    /// was already known to be reached).
    pub fn defer(&mut self) {
        self.deferred += 1;
    }

    /// The per-epoch cap, ns.
    pub fn budget_ns(&self) -> f64 {
        self.budget_ns
    }

    /// Cost charged this epoch, ns.
    pub fn spent_ns(&self) -> f64 {
        self.spent_ns
    }

    /// Moves deferred this epoch because they would exceed the cap.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Budget left this epoch, ns.
    pub fn remaining_ns(&self) -> f64 {
        (self.budget_ns - self.spent_ns).max(0.0)
    }
}

/// The tenant-scoped feedback core: sampler → EWMA hotness →
/// promote/demote candidates, with hysteresis and an optional adaptive
/// sample rate. One plane tracks one tenant's (or one scenario's)
/// regions; it never touches memory itself.
#[derive(Debug)]
pub struct GuidancePlane {
    policy: GuidancePolicy,
    sampler: Sampler,
    hotness: HotnessMap,
    adaptive: Option<AdaptiveState>,
    /// Intervals since each region last migrated (absent = never).
    since_move: BTreeMap<RegionId, u64>,
    interval: u64,
    stats: GuidanceStats,
}

impl GuidancePlane {
    /// A fixed-rate plane — byte-for-byte the legacy engine's
    /// sampling behaviour.
    pub fn new(policy: GuidancePolicy, sampler: SamplerConfig) -> Self {
        GuidancePlane {
            hotness: HotnessMap::new(policy.window_bytes),
            policy,
            sampler: Sampler::new(sampler),
            adaptive: None,
            since_move: BTreeMap::new(),
            interval: 0,
            stats: GuidanceStats::default(),
        }
    }

    /// An adaptive-rate plane. The sampler starts at
    /// `sampler.period` clamped into the adaptive window.
    pub fn adaptive(
        policy: GuidancePolicy,
        sampler: SamplerConfig,
        adaptive: AdaptiveConfig,
    ) -> Self {
        let mut plane = GuidancePlane::new(policy, sampler);
        let start =
            plane.sampler.config().period.clamp(adaptive.min_period.max(1), adaptive.max_period);
        plane.sampler.set_period(start);
        plane.adaptive = Some(AdaptiveState { cfg: adaptive, last_hot: Vec::new(), burst_left: 0 });
        plane
    }

    /// Folds one interval's traffic into the hotness estimate:
    /// advances the interval clock and hysteresis counters, samples
    /// the report, observes the batch, and (when adaptive) retunes the
    /// sampling period against hot-set stability.
    pub fn observe(&mut self, report: &PhaseReport) -> ObserveOutcome {
        self.interval += 1;
        self.stats.intervals += 1;
        for v in self.since_move.values_mut() {
            *v += 1;
        }

        let batch = self.sampler.sample(report);
        let overhead_ns = batch.overhead_ns;
        self.stats.overhead_ns += overhead_ns;
        self.hotness.observe(&batch);

        let mut rate_change = None;
        if let Some(ad) = &mut self.adaptive {
            let hot = self.hotness.hot_set(self.policy.hot_share);
            let old = self.sampler.config().period;
            let new = if hot != ad.last_hot {
                // Phase change: burst to the densest rate and hold it.
                ad.burst_left = ad.cfg.burst_intervals;
                ad.cfg.min_period.max(1)
            } else if ad.burst_left > 0 {
                ad.burst_left -= 1;
                old
            } else {
                old.saturating_mul(ad.cfg.backoff.max(1)).min(ad.cfg.max_period)
            };
            ad.last_hot = hot;
            if new != old {
                self.sampler.set_period(new);
                rate_change = Some((old, new));
            }
        }
        ObserveOutcome { overhead_ns, rate_change }
    }

    /// Candidate moves over the caller's region views: promotions
    /// (`hot == true`) are regions whose estimated share crossed
    /// `hot_share` and that are not already fully on the hot target;
    /// demotions are regions below `cold_share` still holding bytes
    /// there, gated on estimator warm-up. Hysteresis filters both.
    /// Returned pairs carry the estimated share that triggered them.
    pub fn plan(&self, regions: &[RegionView], hot: bool) -> Vec<(RegionId, f64)> {
        regions
            .iter()
            .filter_map(|r| {
                let share = self.hotness.share(r.id);
                let movable =
                    self.since_move.get(&r.id).is_none_or(|&s| s >= self.policy.hysteresis);
                // Demotions wait for the estimator to warm up: before a
                // full window of traffic has been observed every share
                // is still ramping from zero, and a busy region would
                // read as "cold".
                let warmed = self.hotness.observed_bytes() >= self.policy.window_bytes;
                let wanted = if hot {
                    share >= self.policy.hot_share && r.on_target < r.size
                } else {
                    share < self.policy.cold_share && r.on_target > 0 && warmed
                };
                (wanted && movable).then_some((r.id, share))
            })
            .collect()
    }

    /// Records an executed migration: resets the region's hysteresis
    /// clock and folds the cost into the lifetime counters.
    pub fn record_move(&mut self, region: RegionId, promoted: bool, cost_ns: f64) {
        self.since_move.insert(region, 0);
        self.stats.migration_ns += cost_ns;
        if promoted {
            self.stats.promotions += 1;
        } else {
            self.stats.demotions += 1;
        }
    }

    /// Folds one interval's hot-set accuracy sample into the lifetime
    /// mean (the plane never computes it itself — ground truth belongs
    /// to callers that have it).
    pub fn note_accuracy(&mut self, accuracy: f64) {
        self.stats.accuracy_sum += accuracy;
    }

    /// Drops a freed region from the hotness and hysteresis state.
    pub fn forget(&mut self, region: RegionId) {
        self.hotness.forget(region);
        self.since_move.remove(&region);
    }

    /// The policy the plane runs with.
    pub fn policy(&self) -> &GuidancePolicy {
        &self.policy
    }

    /// The current hotness estimates.
    pub fn hotness(&self) -> &HotnessMap {
        &self.hotness
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &GuidanceStats {
        &self.stats
    }

    /// Intervals observed so far.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The sampler's current period (changes over time when adaptive).
    pub fn period(&self) -> u64 {
        self.sampler.config().period
    }

    /// Total modelled sampling overhead so far, ns (the `Stats` wire
    /// frame reports this per tenant when guidance is on).
    pub fn overhead_ns(&self) -> f64 {
        self.stats.overhead_ns
    }
}

/// Builds the [`RegionView`]s the plane's planner needs from any
/// region iterator, in iteration order.
pub fn region_views<'a, I>(regions: I, hot_target: NodeId) -> Vec<RegionView>
where
    I: Iterator<Item = &'a hetmem_memsim::Region>,
{
    regions
        .map(|r| RegionView { id: r.id, size: r.size, on_target: r.bytes_on(hot_target) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SamplerConfig;
    use hetmem_memsim::{
        AccessEngine, AccessPattern, AllocPolicy, BufferAccess, Machine, MemoryManager, Phase,
    };
    use hetmem_topology::{NodeId, GIB};
    use std::sync::Arc;

    fn report(region: RegionId, mm: &MemoryManager, engine: &AccessEngine) -> PhaseReport {
        let phase = Phase {
            name: "p".into(),
            accesses: vec![BufferAccess::new(region, 4 * GIB, 0, AccessPattern::Sequential)],
            threads: 16,
            initiator: "0-15".parse().unwrap(),
            compute_ns: 0.0,
        };
        engine.run_phase(mm, &phase)
    }

    fn setup() -> (AccessEngine, MemoryManager, RegionId, RegionId) {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let engine = AccessEngine::new(machine.clone());
        let mut mm = MemoryManager::new(machine);
        let a = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let b = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        (engine, mm, a, b)
    }

    #[test]
    fn fixed_rate_plane_never_changes_period() {
        let (engine, mm, a, _) = setup();
        let rep = report(a, &mm, &engine);
        let mut plane = GuidancePlane::new(GuidancePolicy::default(), SamplerConfig::default());
        for _ in 0..8 {
            let out = plane.observe(&rep);
            assert_eq!(out.rate_change, None);
        }
        assert_eq!(plane.period(), SamplerConfig::default().period);
    }

    #[test]
    fn adaptive_plane_backs_off_while_stable_and_bursts_on_change() {
        let (engine, mm, a, b) = setup();
        let cfg = AdaptiveConfig { min_period: 4096, max_period: 262_144, ..Default::default() };
        let mut plane = GuidancePlane::adaptive(
            GuidancePolicy::default(),
            SamplerConfig { period: 8192, ..Default::default() },
            cfg,
        );
        // Steady traffic on `a`: the hot set settles on {a} and the
        // period backs off toward the ceiling.
        let rep_a = report(a, &mm, &engine);
        for _ in 0..16 {
            plane.observe(&rep_a);
        }
        assert_eq!(plane.period(), cfg.max_period, "stable workload must back off");

        // The workload flips to `b`: the hot-set change must burst the
        // period back to the floor.
        let rep_b = report(b, &mm, &engine);
        let mut burst = None;
        for _ in 0..8 {
            if let Some(change) = plane.observe(&rep_b).rate_change {
                burst = Some(change);
                break;
            }
        }
        let (old, new) = burst.expect("phase change must retune the sampler");
        assert_eq!(new, cfg.min_period);
        assert!(old > new);
        // And the burst holds for `burst_intervals` before backing off.
        for _ in 0..cfg.burst_intervals {
            assert_eq!(plane.observe(&rep_b).rate_change, None);
        }
    }

    #[test]
    fn budget_caps_and_counts_deferrals() {
        let mut budget = MigrationBudget::new(100.0);
        assert!(budget.try_charge(60.0));
        assert!(budget.try_charge(40.0));
        assert!(!budget.try_charge(0.1));
        assert_eq!(budget.deferred(), 1);
        assert_eq!(budget.spent_ns(), 100.0);
        assert_eq!(budget.remaining_ns(), 0.0);
        budget.reset();
        assert_eq!(budget.deferred(), 0);
        assert!(budget.try_charge(100.0));
        budget.charge(7.5);
        assert_eq!(budget.spent_ns(), 107.5);
        budget.defer();
        assert_eq!(budget.deferred(), 1);
    }

    #[test]
    fn plan_respects_hysteresis_and_warmup() {
        let (engine, mm, a, _) = setup();
        let rep = report(a, &mm, &engine);
        let policy = GuidancePolicy { window_bytes: 1 << 30, ..Default::default() };
        let mut plane = GuidancePlane::new(policy, SamplerConfig::default());
        for _ in 0..4 {
            plane.observe(&rep);
        }
        let views = [RegionView { id: a, size: 2 * GIB, on_target: 0 }];
        let promote = plane.plan(&views, true);
        assert_eq!(promote.len(), 1, "hot region off target must be a promotion candidate");
        plane.record_move(a, true, 10.0);
        assert!(plane.plan(&views, true).is_empty(), "hysteresis must gate a fresh mover");
        assert_eq!(plane.stats().promotions, 1);
    }
}
