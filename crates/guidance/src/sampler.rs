//! The PEBS-like access sampler.
//!
//! Real hardware cannot attribute every access to an object; units
//! like Intel PEBS record roughly one sample every `period` memory
//! events, and the profile is both *noisy* (a finite sample population
//! resolves a region's traffic share only to `1/sqrt(samples)`) and
//! *costly* (every sample buffered and decoded steals CPU time from
//! the application). This module models both effects on top of the
//! simulator's ground-truth [`PhaseReport`] counters: expected sample
//! counts come straight from the per-buffer traffic, a seeded
//! [`SmallRng`] perturbs them with relative noise that shrinks as the
//! population grows, and a per-sample cost yields the runtime overhead
//! the guidance loop must charge against the phase.

use hetmem_memsim::{PhaseReport, RegionId, LINE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Accesses (cache-line loads + stores) per sample. Smaller
    /// periods give more samples: better hotness estimates, more
    /// overhead.
    pub period: u64,
    /// Seed for the deterministic sampling noise. Fixed by default so
    /// identical runs produce byte-identical traces.
    pub seed: u64,
    /// Modelled cost of collecting and processing one sample, ns.
    pub sample_cost_ns: f64,
    /// Relative noise scale; `0.0` makes the sampler exact.
    pub noise: f64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig { period: 32768, seed: 0x5EED_CAFE, sample_cost_ns: 25.0, noise: 1.0 }
    }
}

/// Samples attributed to one region over one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSample {
    /// The sampled region.
    pub region: RegionId,
    /// Samples attributed to it.
    pub count: u64,
}

/// Everything the sampler saw over one interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleBatch {
    /// Per-region samples; regions whose traffic sampled to zero are
    /// absent (the profile simply cannot see them).
    pub samples: Vec<AccessSample>,
    /// Total samples drawn.
    pub total: u64,
    /// Bytes of traffic one sample stands for (`period × LINE`).
    pub bytes_per_sample: u64,
    /// Modelled runtime overhead of the interval's sampling, ns.
    pub overhead_ns: f64,
}

/// The deterministic PEBS-like sampler.
#[derive(Debug)]
pub struct Sampler {
    cfg: SamplerConfig,
    rng: SmallRng,
}

impl Sampler {
    /// Creates a sampler; all randomness derives from `cfg.seed`.
    pub fn new(cfg: SamplerConfig) -> Self {
        Sampler { rng: SmallRng::seed_from_u64(cfg.seed), cfg }
    }

    /// The configuration the sampler runs with.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Retunes the sampling period without disturbing the RNG stream —
    /// the adaptive guidance plane's back-off/burst controller calls
    /// this between intervals.
    pub fn set_period(&mut self, period: u64) {
        self.cfg.period = period.max(1);
    }

    /// Converts one interval's ground-truth counters into sampled
    /// counts. The relative error of each region's count shrinks as
    /// `1/sqrt(expected samples)` — exactly the accuracy/overhead
    /// trade-off the sampling period controls.
    pub fn sample(&mut self, report: &PhaseReport) -> SampleBatch {
        let mut traffic: BTreeMap<RegionId, u64> = BTreeMap::new();
        for buf in &report.buffers {
            *traffic.entry(buf.region).or_insert(0) += buf.loads + buf.stores;
        }
        let period = self.cfg.period.max(1);
        let mut samples = Vec::new();
        let mut total = 0;
        for (region, accesses) in traffic {
            let expected = accesses as f64 / period as f64;
            let jitter = (self.rng.gen::<f64>() * 2.0 - 1.0) * self.cfg.noise;
            let count = (expected * (1.0 + jitter / (expected.sqrt() + 1.0))).round();
            let count = if count > 0.0 { count as u64 } else { 0 };
            if count > 0 {
                samples.push(AccessSample { region, count });
                total += count;
            }
        }
        SampleBatch {
            samples,
            total,
            bytes_per_sample: period * LINE,
            overhead_ns: total as f64 * self.cfg.sample_cost_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_memsim::{
        AccessEngine, AccessPattern, AllocPolicy, BufferAccess, Machine, MemoryManager, Phase,
    };
    use hetmem_topology::{NodeId, GIB};
    use std::sync::Arc;

    fn report(bytes: u64) -> (PhaseReport, RegionId) {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let engine = AccessEngine::new(machine.clone());
        let mut mm = MemoryManager::new(machine);
        let r = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let phase = Phase {
            name: "p".into(),
            accesses: vec![BufferAccess::new(r, bytes, 0, AccessPattern::Sequential)],
            threads: 16,
            initiator: "0-15".parse().unwrap(),
            compute_ns: 0.0,
        };
        (engine.run_phase(&mm, &phase), r)
    }

    #[test]
    fn same_seed_same_samples() {
        let (rep, _) = report(4 * GIB);
        let cfg = SamplerConfig::default();
        let a: Vec<SampleBatch> =
            (0..3).scan(Sampler::new(cfg), |s, _| Some(s.sample(&rep))).collect();
        let b: Vec<SampleBatch> =
            (0..3).scan(Sampler::new(cfg), |s, _| Some(s.sample(&rep))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn error_shrinks_with_period() {
        let (rep, r) = report(4 * GIB);
        let truth = (4 * GIB / LINE) as f64;
        let mut err = Vec::new();
        for period in [1 << 20, 1 << 14, 1 << 8] {
            let cfg = SamplerConfig { period, ..Default::default() };
            let mut s = Sampler::new(cfg);
            // Average the estimate over several draws.
            let mut est = 0.0;
            for _ in 0..8 {
                let batch = s.sample(&rep);
                let count = batch.samples.iter().find(|x| x.region == r).map_or(0, |x| x.count);
                est += count as f64 * period as f64 / 8.0;
            }
            err.push((est - truth).abs() / truth);
        }
        assert!(err[2] <= err[0], "finer sampling should not be less accurate: {err:?}");
        assert!(err[2] < 0.01, "dense sampling should be nearly exact: {err:?}");
    }

    #[test]
    fn overhead_grows_as_period_shrinks() {
        let (rep, _) = report(4 * GIB);
        let mut prev = 0.0;
        for period in [1 << 18, 1 << 14, 1 << 10] {
            let mut s = Sampler::new(SamplerConfig { period, ..Default::default() });
            let batch = s.sample(&rep);
            assert!(batch.overhead_ns > prev * 2.0, "period {period}: {}", batch.overhead_ns);
            assert_eq!(batch.overhead_ns, batch.total as f64 * 25.0);
            prev = batch.overhead_ns;
        }
    }

    #[test]
    fn zero_noise_is_exact() {
        let (rep, r) = report(GIB);
        let mut s = Sampler::new(SamplerConfig { noise: 0.0, period: 1024, ..Default::default() });
        let batch = s.sample(&rep);
        let count = batch.samples.iter().find(|x| x.region == r).unwrap().count;
        assert_eq!(count, GIB / LINE / 1024);
        assert_eq!(batch.bytes_per_sample, 1024 * LINE);
    }
}
