//! Online guidance: automatic migrations from imperfect sampled data.
//!
//! The paper's attribute API answers *where* a buffer should live, but
//! leaves open *when* an application (or runtime) learns that a
//! buffer's behaviour changed. Production heterogeneous-memory
//! runtimes answer it with hardware access sampling — Intel PEBS / AMD
//! IBS profiles feeding object-level placement decisions, as in the
//! object-migration literature the paper cites (Olson et al.'s MemBrain
//! and the RTHMS/Intel memkind line of work). This crate reproduces
//! that loop on top of the simulator:
//!
//! * [`Sampler`] turns ground-truth phase traffic into a *sampled*
//!   profile — deterministic, noisy, and with a modelled runtime
//!   overhead proportional to the number of samples taken;
//! * [`HotnessMap`] folds batches into an EWMA estimate of each
//!   region's traffic share, never consulting ground truth;
//! * [`GuidanceEngine`] slices phases into sampling intervals (a
//!   PEBS-buffer drain every `period × samples_per_interval`
//!   accesses), and at each boundary promotes regions whose estimated
//!   share crossed `hot_share` onto the best local target for the
//!   configured attribute — typically [`attr::BANDWIDTH`]'s MCDRAM —
//!   and demotes ones that faded below `cold_share`, with hysteresis
//!   and capacity checks, paying the simulator's full migration cost.
//!
//! The sampling period is the central trade-off: short periods see an
//! era change within a fraction of a phase but cost more overhead;
//! long periods are nearly free but react late. `repro_tables
//! --guidance` tabulates exactly that against static placement,
//! phase-boundary tiering and perfect-information placement.

#![warn(missing_docs)]

mod hotness;
pub mod plane;
mod sampler;

pub use hotness::{hot_set_accuracy, HotnessMap};
pub use plane::{AdaptiveConfig, GuidancePlane, MigrationBudget, ObserveOutcome, RegionView};
pub use sampler::{AccessSample, SampleBatch, Sampler, SamplerConfig};

use hetmem_bitmap::Bitmap;
use hetmem_core::{attr, AttrId, MemAttrs};
use hetmem_memsim::{AccessEngine, MemoryManager, Phase, PhaseReport, RegionId, LINE};
use hetmem_placement::{PlacementEngine, Scope};
use hetmem_telemetry::{Event, TelemetrySink};
use hetmem_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Policy knobs for the guidance loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuidancePolicy {
    /// Attribute whose best local target hot regions are promoted to.
    pub criterion: AttrId,
    /// Samples accumulated before the "PEBS buffer" drains and the
    /// engine re-plans; together with the sampling period this sets
    /// how many intervals a phase is sliced into.
    pub samples_per_interval: u64,
    /// Upper bound on intervals per phase (bounds slicing cost).
    pub max_intervals: usize,
    /// Minimum intervals between two migrations of the same region.
    pub hysteresis: u64,
    /// Estimated traffic share at or above which a region is hot.
    pub hot_share: f64,
    /// Estimated traffic share below which a region is cold.
    pub cold_share: f64,
    /// Decay window of the hotness EWMA, in bytes of traffic.
    pub window_bytes: u64,
}

impl Default for GuidancePolicy {
    fn default() -> Self {
        GuidancePolicy {
            criterion: attr::BANDWIDTH,
            samples_per_interval: 512,
            max_intervals: 256,
            hysteresis: 2,
            hot_share: 0.25,
            cold_share: 0.10,
            window_bytes: 8 << 30,
        }
    }
}

/// One migration the engine decided on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuidanceAction {
    /// The migrated region.
    pub region: RegionId,
    /// Destination node.
    pub to: NodeId,
    /// `true` for a promotion onto the hot target, `false` for a
    /// demotion off it.
    pub promoted: bool,
    /// Modelled migration cost, ns.
    pub cost_ns: f64,
    /// The sampled hotness estimate that triggered the move.
    pub estimated_hotness: f64,
    /// The region's ground-truth traffic share in the same interval
    /// (for judging the estimate; the engine never acts on it).
    pub actual_hotness: f64,
}

/// What guidance did during one phase.
#[derive(Debug, Clone)]
pub struct GuidanceReport {
    /// Phase name.
    pub name: String,
    /// Sampling intervals the phase was sliced into.
    pub intervals: usize,
    /// Application time: the sum of the slices' modelled times, ns.
    pub app_ns: f64,
    /// Modelled sampling overhead, ns.
    pub overhead_ns: f64,
    /// Modelled migration cost, ns.
    pub migration_ns: f64,
    /// Migrations performed, in order.
    pub actions: Vec<GuidanceAction>,
    /// Hot-set accuracy after each interval (estimate vs. ground
    /// truth, Jaccard).
    pub accuracy: Vec<f64>,
    /// The per-slice reports from the access engine.
    pub slices: Vec<PhaseReport>,
}

impl GuidanceReport {
    /// Total wall time including sampling overhead and migrations, ns.
    pub fn time_ns(&self) -> f64 {
        self.app_ns + self.overhead_ns + self.migration_ns
    }
}

/// Lifetime counters across all phases an engine has guided.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GuidanceStats {
    /// Sampling intervals run.
    pub intervals: u64,
    /// Promotions performed.
    pub promotions: u64,
    /// Demotions performed.
    pub demotions: u64,
    /// Total migration cost, ns.
    pub migration_ns: f64,
    /// Total sampling overhead, ns.
    pub overhead_ns: f64,
    /// Sum of per-interval hot-set accuracies (for the mean).
    pub accuracy_sum: f64,
}

impl GuidanceStats {
    /// Mean hot-set accuracy over all intervals, `1.0` if none ran.
    pub fn mean_accuracy(&self) -> f64 {
        if self.intervals == 0 {
            1.0
        } else {
            self.accuracy_sum / self.intervals as f64
        }
    }
}

/// The online guidance engine — now a thin adapter binding a
/// [`GuidancePlane`] (sampling, hotness, hysteresis, candidate
/// selection) to one scenario's `MemoryManager`. Target selection is
/// delegated to the shared [`hetmem_placement::PlacementEngine`], so
/// guidance ranks memories exactly the way the allocator and the
/// service broker do (same attribute-fallback chain, same locality
/// scoping). The service broker embeds the same plane per tenant; this
/// adapter exists so standalone scenarios keep their one-call API.
pub struct GuidanceEngine {
    placer: PlacementEngine,
    plane: GuidancePlane,
    sink: TelemetrySink,
    // Per-phase scratch, harvested by `run_phase`.
    actions: Vec<GuidanceAction>,
    accuracy: Vec<f64>,
    overhead_ns: f64,
    migration_ns: f64,
}

impl GuidanceEngine {
    /// Creates an engine over the machine's attributes, with the
    /// legacy fixed sampling rate.
    pub fn new(attrs: Arc<MemAttrs>, policy: GuidancePolicy, sampler: SamplerConfig) -> Self {
        GuidanceEngine {
            placer: PlacementEngine::new(attrs),
            plane: GuidancePlane::new(policy, sampler),
            sink: TelemetrySink::disabled(),
            actions: Vec::new(),
            accuracy: Vec::new(),
            overhead_ns: 0.0,
            migration_ns: 0.0,
        }
    }

    /// Routes [`Event::GuidanceDecision`] events to `sink`.
    pub fn set_sink(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// The policy the engine runs with.
    pub fn policy(&self) -> &GuidancePolicy {
        self.plane.policy()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &GuidanceStats {
        self.plane.stats()
    }

    /// The current hotness estimates.
    pub fn hotness(&self) -> &HotnessMap {
        self.plane.hotness()
    }

    /// The underlying feedback plane.
    pub fn plane(&self) -> &GuidancePlane {
        &self.plane
    }

    /// How many sampling intervals `phase` will be sliced into: one
    /// per expected "PEBS buffer" drain (`period ×
    /// samples_per_interval` accesses), at least 1, at most
    /// `max_intervals`. Shorter periods fill the buffer faster and so
    /// react to behaviour changes earlier in the phase.
    pub fn intervals_for(&self, phase: &Phase) -> usize {
        let accesses: u64 =
            phase.accesses.iter().map(|a| (a.bytes_read + a.bytes_written) / LINE).sum();
        let per_interval = self.plane.period().max(1) * self.policy().samples_per_interval;
        let n = (accesses / per_interval.max(1)) as usize;
        n.clamp(1, self.policy().max_intervals)
    }

    /// Runs one phase under guidance: slices it into sampling
    /// intervals, samples each slice, updates hotness, and migrates at
    /// interval boundaries. Migration and sampling costs are charged
    /// to the report, not silently dropped.
    pub fn run_phase(
        &mut self,
        engine: &AccessEngine,
        mm: &mut MemoryManager,
        phase: &Phase,
    ) -> GuidanceReport {
        let n = self.intervals_for(phase);
        self.actions.clear();
        self.accuracy.clear();
        self.overhead_ns = 0.0;
        self.migration_ns = 0.0;
        let initiator = phase.initiator.clone();
        let slices = engine.run_phase_sliced(mm, phase, n, |mm, report, _idx| {
            self.on_interval(mm, report, &initiator);
        });
        let app_ns: f64 = slices.iter().map(|s| s.time_ns).sum();
        GuidanceReport {
            name: phase.name.clone(),
            intervals: n,
            app_ns,
            overhead_ns: self.overhead_ns,
            migration_ns: self.migration_ns,
            actions: std::mem::take(&mut self.actions),
            accuracy: std::mem::take(&mut self.accuracy),
            slices,
        }
    }

    /// Drops a freed region from the hotness and hysteresis state.
    pub fn forget(&mut self, region: RegionId) {
        self.plane.forget(region);
    }

    fn on_interval(&mut self, mm: &mut MemoryManager, report: &PhaseReport, initiator: &Bitmap) {
        let outcome = self.plane.observe(report);
        self.overhead_ns += outcome.overhead_ns;

        let truth = truth_shares(report);
        let acc = hot_set_accuracy(self.plane.hotness(), &truth, self.policy().hot_share);
        self.accuracy.push(acc);
        self.plane.note_accuracy(acc);

        let Ok(ranking) = self.placer.rank(self.policy().criterion, initiator, Scope::Local) else {
            return;
        };
        let Some(hot_target) = ranking.nodes().first().copied() else {
            return;
        };
        let capacity_order: Vec<NodeId> = self
            .placer
            .rank(attr::CAPACITY, initiator, Scope::Local)
            .map(|r| r.nodes())
            .unwrap_or_default();

        // Demotions first: free the hot target before filling it.
        let views = plane::region_views(mm.regions(), hot_target);
        for (region, share) in self.plane.plan(&views, false) {
            let Some(to) = capacity_order
                .iter()
                .copied()
                .find(|&node| node != hot_target && self.fits(mm, region, node))
            else {
                continue;
            };
            self.execute(mm, region, to, false, share, truth.get(&region).copied().unwrap_or(0.0));
        }
        // Re-view after the demotions: promotions see the freed target.
        let views = plane::region_views(mm.regions(), hot_target);
        for (region, share) in self.plane.plan(&views, true) {
            if !self.fits(mm, region, hot_target) {
                continue;
            }
            self.execute(
                mm,
                region,
                hot_target,
                true,
                share,
                truth.get(&region).copied().unwrap_or(0.0),
            );
        }
    }

    fn fits(&self, mm: &MemoryManager, region: RegionId, node: NodeId) -> bool {
        mm.region(region).map(|r| mm.available(node) >= r.size - r.bytes_on(node)).unwrap_or(false)
    }

    fn execute(
        &mut self,
        mm: &mut MemoryManager,
        region: RegionId,
        to: NodeId,
        promoted: bool,
        estimated: f64,
        actual: f64,
    ) {
        let Ok(report) = mm.migrate(region, to) else {
            return;
        };
        self.plane.record_move(region, promoted, report.cost_ns);
        self.migration_ns += report.cost_ns;
        self.actions.push(GuidanceAction {
            region,
            to,
            promoted,
            cost_ns: report.cost_ns,
            estimated_hotness: estimated,
            actual_hotness: actual,
        });
        if self.sink.enabled() {
            self.sink.emit(Event::GuidanceDecision(hetmem_telemetry::GuidanceDecision {
                interval: self.plane.interval(),
                region: region.0,
                promoted,
                to,
                estimated_hotness: estimated,
                actual_hotness: actual,
                cost_ns: report.cost_ns,
                period: self.plane.period(),
            }));
        }
    }
}

/// Ground-truth traffic shares of one interval, from the simulator's
/// per-buffer counters.
fn truth_shares(report: &PhaseReport) -> BTreeMap<RegionId, f64> {
    let mut bytes: BTreeMap<RegionId, u64> = BTreeMap::new();
    for buf in &report.buffers {
        *bytes.entry(buf.region).or_insert(0) += (buf.loads + buf.stores) * LINE;
    }
    let total: u64 = bytes.values().sum();
    if total == 0 {
        return BTreeMap::new();
    }
    bytes.into_iter().map(|(r, b)| (r, b as f64 / total as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_core::discovery;
    use hetmem_memsim::{AccessPattern, AllocPolicy, BufferAccess, Machine};
    use hetmem_topology::GIB;

    fn setup() -> (Arc<MemAttrs>, AccessEngine, MemoryManager) {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let attrs = Arc::new(discovery::from_firmware(&machine, true).unwrap());
        let engine = AccessEngine::new(machine.clone());
        let mm = MemoryManager::new(machine);
        (attrs, engine, mm)
    }

    fn read_phase(name: &str, region: RegionId, bytes: u64) -> Phase {
        Phase {
            name: name.into(),
            accesses: vec![BufferAccess::new(region, bytes, 0, AccessPattern::Sequential)],
            threads: 16,
            initiator: "0-15".parse().unwrap(),
            compute_ns: 0.0,
        }
    }

    #[test]
    fn intervals_scale_with_period() {
        let (attrs, _, mut mm) = setup();
        let r = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let phase = read_phase("p", r, 16 * GIB);
        let n_of = |period| {
            let cfg = SamplerConfig { period, ..Default::default() };
            GuidanceEngine::new(attrs.clone(), GuidancePolicy::default(), cfg).intervals_for(&phase)
        };
        // 16 GiB = 2^28 accesses; 512 samples per interval.
        assert_eq!(n_of(131072), 4);
        assert_eq!(n_of(32768), 16);
        assert_eq!(n_of(8192), 64);
        // Clamped at both ends.
        assert_eq!(n_of(u64::MAX / 1024), 1);
        assert_eq!(n_of(1), 256);
    }

    #[test]
    fn engine_promotes_hot_and_demotes_stale() {
        let (attrs, engine, mut mm) = setup();
        let sink = TelemetrySink::new();
        let a = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let b = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let mut g = GuidanceEngine::new(attrs, GuidancePolicy::default(), SamplerConfig::default());
        g.set_sink(sink.clone());

        // Era 1: only `a` is touched. Guidance must move it to MCDRAM.
        let mcdram = NodeId(4);
        for i in 0..3 {
            g.run_phase(&engine, &mut mm, &read_phase(&format!("era1.{i}"), a, 16 * GIB));
        }
        assert_eq!(mm.region(a).unwrap().bytes_on(mcdram), 2 * GIB, "a not promoted");

        // Era 2: the workload switches to `b`; `a` fades below the
        // cold threshold and must make room, `b` gets promoted.
        for i in 0..6 {
            g.run_phase(&engine, &mut mm, &read_phase(&format!("era2.{i}"), b, 16 * GIB));
        }
        assert_eq!(mm.region(b).unwrap().bytes_on(mcdram), 2 * GIB, "b not promoted");
        assert_eq!(mm.region(a).unwrap().bytes_on(mcdram), 0, "a not demoted");

        let stats = g.stats();
        assert!(stats.promotions >= 2 && stats.demotions >= 1, "{stats:?}");
        assert!(stats.mean_accuracy() > 0.5);
        let decisions = sink
            .collector()
            .drain_sorted()
            .iter()
            .filter(|e| matches!(e.event, Event::GuidanceDecision(_)))
            .count() as u64;
        assert_eq!(decisions, stats.promotions + stats.demotions);
    }

    #[test]
    fn forget_clears_state() {
        let (attrs, engine, mut mm) = setup();
        let a = mm.alloc(GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let mut g = GuidanceEngine::new(attrs, GuidancePolicy::default(), SamplerConfig::default());
        g.run_phase(&engine, &mut mm, &read_phase("p", a, 8 * GIB));
        assert!(g.hotness().share(a) > 0.0);
        g.forget(a);
        assert_eq!(g.hotness().share(a), 0.0);
    }
}
