//! Per-region hotness estimated from samples alone.
//!
//! The map never sees ground truth: it folds [`SampleBatch`]es into an
//! exponentially weighted moving average of each region's *share* of
//! sampled traffic. The decay rate is tied to observed traffic volume
//! rather than to wall intervals — an interval that moved `B` bytes
//! shifts the average by `B / (B + window)` — so hysteresis behaviour
//! does not change when the guidance loop slices phases more finely.

use crate::sampler::SampleBatch;
use hetmem_memsim::RegionId;
use std::collections::BTreeMap;

/// EWMA hotness per region, fed exclusively by the sampler.
#[derive(Debug, Clone)]
pub struct HotnessMap {
    shares: BTreeMap<RegionId, f64>,
    window_bytes: u64,
    observed_bytes: u64,
}

impl HotnessMap {
    /// Creates an empty map with the given decay window: roughly the
    /// bytes of traffic after which old behaviour has faded to `1/e`.
    pub fn new(window_bytes: u64) -> Self {
        HotnessMap { shares: BTreeMap::new(), window_bytes: window_bytes.max(1), observed_bytes: 0 }
    }

    /// Folds one interval's samples in. Empty batches (nothing seen)
    /// leave the map untouched — no information, no decay.
    pub fn observe(&mut self, batch: &SampleBatch) {
        if batch.total == 0 {
            return;
        }
        self.observed_bytes =
            self.observed_bytes.saturating_add(batch.total * batch.bytes_per_sample);
        let interval_bytes = (batch.total * batch.bytes_per_sample) as f64;
        // Exponential decay in *bytes of traffic*: observing traffic B
        // in one batch or split across many leaves identical decay
        // (e^-B/W factors compose), so slicing granularity doesn't
        // change how fast old behaviour fades.
        let decay = (-interval_bytes / self.window_bytes as f64).exp();
        for share in self.shares.values_mut() {
            *share *= decay;
        }
        for s in &batch.samples {
            *self.shares.entry(s.region).or_insert(0.0) +=
                (1.0 - decay) * s.count as f64 / batch.total as f64;
        }
        self.shares.retain(|_, share| *share > 1e-6);
    }

    /// Total (estimated) bytes of traffic observed so far. Shares are
    /// still warming up — rising from zero rather than tracking — until
    /// this reaches roughly the decay window, so callers should not
    /// treat a low share as *cold* before then.
    pub fn observed_bytes(&self) -> u64 {
        self.observed_bytes
    }

    /// The current hotness estimate (EWMA traffic share) for `region`.
    pub fn share(&self, region: RegionId) -> f64 {
        self.shares.get(&region).copied().unwrap_or(0.0)
    }

    /// Regions whose estimated share is at least `threshold`.
    pub fn hot_set(&self, threshold: f64) -> Vec<RegionId> {
        self.shares.iter().filter(|&(_, s)| *s >= threshold).map(|(&r, _)| r).collect()
    }

    /// Drops a region (freed, or otherwise out of scope).
    pub fn forget(&mut self, region: RegionId) {
        self.shares.remove(&region);
    }

    /// Number of regions currently tracked.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }
}

/// Jaccard similarity between the estimated hot set and the hot set a
/// perfect profiler would compute from ground-truth shares, both cut
/// at the same `threshold`. `1.0` when the sets match exactly (also
/// when both are empty), `0.0` when they are disjoint.
pub fn hot_set_accuracy(
    estimated: &HotnessMap,
    truth_shares: &BTreeMap<RegionId, f64>,
    threshold: f64,
) -> f64 {
    let est: Vec<RegionId> = estimated.hot_set(threshold);
    let truth: Vec<RegionId> =
        truth_shares.iter().filter(|&(_, s)| *s >= threshold).map(|(&r, _)| r).collect();
    if est.is_empty() && truth.is_empty() {
        return 1.0;
    }
    let inter = est.iter().filter(|r| truth.contains(r)).count();
    let union = est.len() + truth.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::AccessSample;

    fn batch(pairs: &[(u64, u64)], bytes_per_sample: u64) -> SampleBatch {
        let samples: Vec<AccessSample> =
            pairs.iter().map(|&(r, count)| AccessSample { region: RegionId(r), count }).collect();
        let total = samples.iter().map(|s| s.count).sum();
        SampleBatch { samples, total, bytes_per_sample, overhead_ns: 0.0 }
    }

    #[test]
    fn shares_track_observed_traffic() {
        let mut map = HotnessMap::new(1 << 20);
        // Traffic far exceeding the window: shares converge fast.
        for _ in 0..4 {
            map.observe(&batch(&[(1, 900), (2, 100)], 1 << 16));
        }
        assert!(map.share(RegionId(1)) > 0.8, "{}", map.share(RegionId(1)));
        assert!(map.share(RegionId(2)) < 0.2);
        assert_eq!(map.hot_set(0.25), vec![RegionId(1)]);
    }

    #[test]
    fn byte_window_decay_is_slicing_invariant() {
        // One big interval vs. the same traffic in four slices must
        // leave (approximately) the same estimate for a region that
        // stopped being touched.
        let mut coarse = HotnessMap::new(1 << 24);
        coarse.observe(&batch(&[(1, 1024)], 1 << 16));
        coarse.observe(&batch(&[(2, 1024)], 1 << 16));

        let mut fine = HotnessMap::new(1 << 24);
        fine.observe(&batch(&[(1, 1024)], 1 << 16));
        for _ in 0..4 {
            fine.observe(&batch(&[(2, 256)], 1 << 16));
        }
        let (c, f) = (coarse.share(RegionId(1)), fine.share(RegionId(1)));
        assert!((c - f).abs() < 1e-9, "coarse {c} vs fine {f}");
    }

    #[test]
    fn empty_batches_do_not_decay() {
        let mut map = HotnessMap::new(1 << 20);
        map.observe(&batch(&[(1, 512)], 1 << 16));
        let before = map.share(RegionId(1));
        map.observe(&batch(&[], 1 << 16));
        assert_eq!(map.share(RegionId(1)), before);
    }

    #[test]
    fn forget_removes_region() {
        let mut map = HotnessMap::new(1 << 20);
        map.observe(&batch(&[(1, 512), (2, 512)], 1 << 16));
        assert_eq!(map.len(), 2);
        map.forget(RegionId(1));
        assert_eq!(map.share(RegionId(1)), 0.0);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn accuracy_compares_hot_sets() {
        let mut map = HotnessMap::new(1 << 10);
        map.observe(&batch(&[(1, 90), (2, 10)], 1 << 16));
        let mut truth = BTreeMap::new();
        truth.insert(RegionId(1), 0.9);
        truth.insert(RegionId(2), 0.1);
        assert_eq!(hot_set_accuracy(&map, &truth, 0.25), 1.0);
        // A wrong truth set halves the Jaccard score.
        truth.insert(RegionId(2), 0.5);
        assert_eq!(hot_set_accuracy(&map, &truth, 0.25), 0.5);
        // Both empty counts as perfect.
        let empty = HotnessMap::new(1 << 10);
        assert_eq!(hot_set_accuracy(&empty, &BTreeMap::new(), 0.25), 1.0);
    }
}
