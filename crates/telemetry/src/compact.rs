//! Compact varint event encoding — the in-flight form carried by the
//! wait-free rings and the binary on-disk trace form.
//!
//! One record is `kind byte · epoch varint · fields`, where integers
//! are LEB128 varints, floats are 8 raw little-endian bytes
//! (`f64::to_bits`), strings and lists are length-prefixed. A typical
//! occupancy gauge encodes in ~12 bytes against ~90 bytes of JSONL;
//! the ring carries these bytes, and [`read_framed`]/[`append_framed`]
//! put the same records on disk with a varint length frame per record.

use crate::{
    AllocDecision, AttrFallback, BatchCoalesced, BudgetExhausted, Candidate, ContentionStall,
    DigestMerged, Event, FallbackMode, FreeEvent, GuidanceDecision, Hop, HotPromoted, LeaseExpired,
    LeaseRevoked, Migration, NodeTrafficSample, OccupancyGauge, PhaseSpan, QuotaClamp, Reclaim,
    RetryExhausted, SampleRateChanged, Scope, ShardSteal, SpillForwarded, TenantAdmit,
    TierDegraded, TieringEvent,
};
use hetmem_topology::NodeId;

/// A malformed compact record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    fn new(msg: impl Into<String>) -> CodecError {
        CodecError(msg.into())
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compact codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Appends `v` as a LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` as 8 raw little-endian bytes (`f64::to_bits`).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends `s` length-prefixed (varint byte count, then UTF-8 bytes).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends `b` as one byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(b as u8);
}

/// Appends a `(node, bytes)` placement list, length-prefixed.
pub fn put_placement(out: &mut Vec<u8>, placement: &[(NodeId, u64)]) {
    put_u64(out, placement.len() as u64);
    for &(node, bytes) in placement {
        put_u64(out, node.0 as u64);
        put_u64(out, bytes);
    }
}

/// A bounds-checked reader over a compact-encoded byte slice: every
/// read returns a typed [`CodecError`] instead of panicking on
/// truncated or malformed input. The snapshot codec
/// (`hetmem-snapshot`) builds its file format on the same primitives.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    /// The current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes exactly `len` raw bytes.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CodecError::new("truncated byte run"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Decodes one LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte =
                *self.bytes.get(self.pos).ok_or_else(|| CodecError::new("truncated varint"))?;
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return Err(CodecError::new("varint overflows u64"));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Decodes a varint that must fit in a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        u32::try_from(self.u64()?).map_err(|_| CodecError::new("value overflows u32"))
    }

    /// Decodes 8 raw little-endian bytes as an `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        let end = self.pos + 8;
        let raw = self.bytes.get(self.pos..end).ok_or_else(|| CodecError::new("truncated f64"))?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(raw.try_into().expect("8 bytes"))))
    }

    /// Decodes one 0/1 byte; anything else is an error.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        let byte = *self.bytes.get(self.pos).ok_or_else(|| CodecError::new("truncated bool"))?;
        self.pos += 1;
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::new(format!("bad bool byte {other}"))),
        }
    }

    /// Decodes a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u64()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CodecError::new("truncated string"))?;
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| CodecError::new("string is not UTF-8"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    /// Decodes a node id (varint, `u32` range).
    pub fn node(&mut self) -> Result<NodeId, CodecError> {
        Ok(NodeId(self.u32()?))
    }

    /// Decodes a length-prefixed `(node, bytes)` placement list.
    pub fn placement(&mut self) -> Result<Vec<(NodeId, u64)>, CodecError> {
        let n = self.u64()? as usize;
        (0..n).map(|_| Ok((self.node()?, self.u64()?))).collect()
    }

    /// Succeeds only when every byte has been consumed.
    pub fn done(&self) -> Result<(), CodecError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CodecError::new("trailing bytes after record"))
        }
    }
}

fn kind_byte(event: &Event) -> u8 {
    // Matches the [`crate::EVENT_KINDS`] declaration order; a direct
    // match keeps the hot emission path free of string comparisons
    // (`decode_record` round-trip tests pin the correspondence).
    match event {
        Event::AllocDecision(_) => 0,
        Event::AttrFallback(_) => 1,
        Event::Migration(_) => 2,
        Event::Free(_) => 3,
        Event::PhaseSpan(_) => 4,
        Event::OccupancyGauge(_) => 5,
        Event::TieringAction(_) => 6,
        Event::GuidanceDecision(_) => 7,
        Event::TenantAdmit(_) => 8,
        Event::QuotaClamp(_) => 9,
        Event::ContentionStall(_) => 10,
        Event::LeaseExpired(_) => 11,
        Event::LeaseRevoked(_) => 12,
        Event::TierDegraded(_) => 13,
        Event::RetryExhausted(_) => 14,
        Event::Reclaim(_) => 15,
        Event::SpillForwarded(_) => 16,
        Event::DigestMerged(_) => 17,
        Event::BatchCoalesced(_) => 18,
        Event::ShardSteal(_) => 19,
        Event::SampleRateChanged(_) => 20,
        Event::HotPromoted(_) => 21,
        Event::BudgetExhausted(_) => 22,
    }
}

/// Encodes `(epoch, event)` as one compact record appended to `out`.
pub fn encode_record(epoch: u64, event: &Event, out: &mut Vec<u8>) {
    out.push(kind_byte(event));
    put_u64(out, epoch);
    match event {
        Event::AllocDecision(d) => {
            match d.region {
                Some(r) => {
                    put_bool(out, true);
                    put_u64(out, r);
                }
                None => put_bool(out, false),
            }
            put_u64(out, d.size);
            put_u64(out, d.requested as u64);
            put_u64(out, d.used as u64);
            put_bool(out, d.scope == Scope::Any);
            out.push(match d.fallback {
                FallbackMode::Strict => 0,
                FallbackMode::NextTarget => 1,
                FallbackMode::PartialSpill => 2,
            });
            put_u64(out, d.candidates.len() as u64);
            for c in &d.candidates {
                put_u64(out, c.node.0 as u64);
                put_u64(out, c.value);
            }
            put_u64(out, d.hops.len() as u64);
            for h in &d.hops {
                put_u64(out, h.node.0 as u64);
                put_str(out, &h.reason);
            }
            put_placement(out, &d.placement);
            match &d.error {
                Some(e) => {
                    put_bool(out, true);
                    put_str(out, e);
                }
                None => put_bool(out, false),
            }
        }
        Event::AttrFallback(a) => {
            put_u64(out, a.requested as u64);
            put_u64(out, a.used as u64);
        }
        Event::Migration(m) => {
            put_u64(out, m.region);
            put_placement(out, &m.from);
            put_u64(out, m.to.0 as u64);
            put_u64(out, m.bytes_moved);
            put_f64(out, m.cost_ns);
        }
        Event::Free(f) => {
            put_u64(out, f.region);
            put_placement(out, &f.placement);
        }
        Event::PhaseSpan(p) => {
            put_str(out, &p.name);
            put_f64(out, p.time_ns);
            put_u64(out, p.threads);
            put_u64(out, p.per_node.len() as u64);
            for t in &p.per_node {
                put_u64(out, t.node.0 as u64);
                put_u64(out, t.bytes_read);
                put_u64(out, t.bytes_written);
                put_f64(out, t.achieved_bw_mbps);
            }
        }
        Event::OccupancyGauge(g) => {
            put_u64(out, g.node.0 as u64);
            put_u64(out, g.used);
            put_u64(out, g.high_water);
            put_u64(out, g.total);
        }
        Event::TieringAction(t) => {
            put_u64(out, t.region);
            put_bool(out, t.promoted);
            put_u64(out, t.to.0 as u64);
            put_f64(out, t.cost_ns);
        }
        Event::GuidanceDecision(g) => {
            put_u64(out, g.interval);
            put_u64(out, g.region);
            put_bool(out, g.promoted);
            put_u64(out, g.to.0 as u64);
            put_f64(out, g.estimated_hotness);
            put_f64(out, g.actual_hotness);
            put_f64(out, g.cost_ns);
            put_u64(out, g.period);
        }
        Event::TenantAdmit(t) => {
            put_u64(out, t.broker as u64);
            put_str(out, &t.tenant);
            put_u64(out, t.lease);
            put_u64(out, t.size);
            put_placement(out, &t.placement);
            put_bool(out, t.clamped);
            put_u64(out, t.fast_bytes);
        }
        Event::QuotaClamp(q) => {
            put_u64(out, q.broker as u64);
            put_str(out, &q.tenant);
            put_u64(out, q.node.0 as u64);
            put_u64(out, q.requested);
            put_u64(out, q.allowed);
        }
        Event::ContentionStall(c) => {
            put_u64(out, c.broker as u64);
            put_str(out, &c.tenant);
            put_u64(out, c.node.0 as u64);
            put_f64(out, c.stall_ns);
            put_u64(out, c.sharers);
        }
        Event::LeaseExpired(l) => {
            put_u64(out, l.broker as u64);
            put_str(out, &l.tenant);
            put_u64(out, l.lease);
            put_u64(out, l.ttl_epochs);
        }
        Event::LeaseRevoked(l) => {
            put_u64(out, l.broker as u64);
            put_str(out, &l.tenant);
            put_u64(out, l.lease);
            put_str(out, &l.reason);
        }
        Event::TierDegraded(t) => {
            put_u64(out, t.broker as u64);
            put_str(out, &t.kind);
            put_bool(out, t.degraded);
        }
        Event::RetryExhausted(r) => {
            put_str(out, &r.tenant);
            put_str(out, &r.op);
            put_u64(out, r.attempts);
            put_str(out, &r.last_error);
        }
        Event::Reclaim(r) => {
            put_u64(out, r.broker as u64);
            put_str(out, &r.tenant);
            put_u64(out, r.lease);
            put_u64(out, r.bytes);
            put_placement(out, &r.placement);
            put_str(out, &r.reason);
        }
        Event::SpillForwarded(s) => {
            put_u64(out, s.broker as u64);
            put_u64(out, s.origin as u64);
            put_str(out, &s.tenant);
            put_u64(out, s.size);
            put_u64(out, s.fast_bytes);
            put_f64(out, s.cost_ns);
        }
        Event::DigestMerged(d) => {
            put_u64(out, d.broker as u64);
            put_u64(out, d.peer as u64);
            put_u64(out, d.epoch);
            put_bool(out, d.applied);
        }
        Event::BatchCoalesced(b) => {
            put_u64(out, b.broker as u64);
            put_u64(out, b.shard as u64);
            put_str(out, &b.tenant);
            put_u64(out, b.merged);
            put_u64(out, b.bytes);
        }
        Event::ShardSteal(s) => {
            put_u64(out, s.broker as u64);
            put_u64(out, s.thief as u64);
            put_u64(out, s.victim as u64);
            put_u64(out, s.stolen);
        }
        Event::SampleRateChanged(s) => {
            put_u64(out, s.broker as u64);
            put_str(out, &s.tenant);
            put_u64(out, s.old_period);
            put_u64(out, s.new_period);
        }
        Event::HotPromoted(h) => {
            put_u64(out, h.broker as u64);
            put_str(out, &h.tenant);
            put_u64(out, h.region);
            put_u64(out, h.to.0 as u64);
            put_u64(out, h.bytes);
            put_f64(out, h.cost_ns);
        }
        Event::BudgetExhausted(b) => {
            put_u64(out, b.broker as u64);
            put_u64(out, b.epoch);
            put_f64(out, b.spent_ns);
            put_f64(out, b.budget_ns);
            put_u64(out, b.deferred);
        }
    }
}

/// Decodes one compact record produced by [`encode_record`].
pub fn decode_record(bytes: &[u8]) -> Result<(u64, Event), CodecError> {
    let mut c = Cursor { bytes, pos: 0 };
    let kind = c.u64()? as usize;
    let epoch = c.u64()?;
    let event = match crate::EVENT_KINDS.get(kind).copied() {
        Some("alloc_decision") => {
            let region = if c.bool()? { Some(c.u64()?) } else { None };
            let size = c.u64()?;
            let requested = c.u32()?;
            let used = c.u32()?;
            let scope = if c.bool()? { Scope::Any } else { Scope::Local };
            let fallback = match c.u64()? {
                0 => FallbackMode::Strict,
                1 => FallbackMode::NextTarget,
                2 => FallbackMode::PartialSpill,
                other => return Err(CodecError::new(format!("bad fallback byte {other}"))),
            };
            let n = c.u64()? as usize;
            let candidates = (0..n)
                .map(|_| Ok(Candidate { node: c.node()?, value: c.u64()? }))
                .collect::<Result<_, CodecError>>()?;
            let n = c.u64()? as usize;
            let hops = (0..n)
                .map(|_| Ok(Hop { node: c.node()?, reason: c.str()? }))
                .collect::<Result<_, CodecError>>()?;
            let placement = c.placement()?;
            let error = if c.bool()? { Some(c.str()?) } else { None };
            Event::AllocDecision(AllocDecision {
                region,
                size,
                requested,
                used,
                scope,
                fallback,
                candidates,
                hops,
                placement,
                error,
            })
        }
        Some("attr_fallback") => {
            Event::AttrFallback(AttrFallback { requested: c.u32()?, used: c.u32()? })
        }
        Some("migration") => Event::Migration(Migration {
            region: c.u64()?,
            from: c.placement()?,
            to: c.node()?,
            bytes_moved: c.u64()?,
            cost_ns: c.f64()?,
        }),
        Some("free") => Event::Free(FreeEvent { region: c.u64()?, placement: c.placement()? }),
        Some("phase_span") => {
            let name = c.str()?;
            let time_ns = c.f64()?;
            let threads = c.u64()?;
            let n = c.u64()? as usize;
            let per_node = (0..n)
                .map(|_| {
                    Ok(NodeTrafficSample {
                        node: c.node()?,
                        bytes_read: c.u64()?,
                        bytes_written: c.u64()?,
                        achieved_bw_mbps: c.f64()?,
                    })
                })
                .collect::<Result<_, CodecError>>()?;
            Event::PhaseSpan(PhaseSpan { name, time_ns, threads, per_node })
        }
        Some("occupancy") => Event::OccupancyGauge(OccupancyGauge {
            node: c.node()?,
            used: c.u64()?,
            high_water: c.u64()?,
            total: c.u64()?,
        }),
        Some("tiering_action") => Event::TieringAction(TieringEvent {
            region: c.u64()?,
            promoted: c.bool()?,
            to: c.node()?,
            cost_ns: c.f64()?,
        }),
        Some("guidance_decision") => Event::GuidanceDecision(GuidanceDecision {
            interval: c.u64()?,
            region: c.u64()?,
            promoted: c.bool()?,
            to: c.node()?,
            estimated_hotness: c.f64()?,
            actual_hotness: c.f64()?,
            cost_ns: c.f64()?,
            period: c.u64()?,
        }),
        Some("tenant_admit") => Event::TenantAdmit(TenantAdmit {
            broker: c.u32()?,
            tenant: c.str()?,
            lease: c.u64()?,
            size: c.u64()?,
            placement: c.placement()?,
            clamped: c.bool()?,
            fast_bytes: c.u64()?,
        }),
        Some("quota_clamp") => Event::QuotaClamp(QuotaClamp {
            broker: c.u32()?,
            tenant: c.str()?,
            node: c.node()?,
            requested: c.u64()?,
            allowed: c.u64()?,
        }),
        Some("contention_stall") => Event::ContentionStall(ContentionStall {
            broker: c.u32()?,
            tenant: c.str()?,
            node: c.node()?,
            stall_ns: c.f64()?,
            sharers: c.u64()?,
        }),
        Some("lease_expired") => Event::LeaseExpired(LeaseExpired {
            broker: c.u32()?,
            tenant: c.str()?,
            lease: c.u64()?,
            ttl_epochs: c.u64()?,
        }),
        Some("lease_revoked") => Event::LeaseRevoked(LeaseRevoked {
            broker: c.u32()?,
            tenant: c.str()?,
            lease: c.u64()?,
            reason: c.str()?,
        }),
        Some("tier_degraded") => Event::TierDegraded(TierDegraded {
            broker: c.u32()?,
            kind: c.str()?,
            degraded: c.bool()?,
        }),
        Some("retry_exhausted") => Event::RetryExhausted(RetryExhausted {
            tenant: c.str()?,
            op: c.str()?,
            attempts: c.u64()?,
            last_error: c.str()?,
        }),
        Some("reclaim") => Event::Reclaim(Reclaim {
            broker: c.u32()?,
            tenant: c.str()?,
            lease: c.u64()?,
            bytes: c.u64()?,
            placement: c.placement()?,
            reason: c.str()?,
        }),
        Some("spill_forwarded") => Event::SpillForwarded(SpillForwarded {
            broker: c.u32()?,
            origin: c.u32()?,
            tenant: c.str()?,
            size: c.u64()?,
            fast_bytes: c.u64()?,
            cost_ns: c.f64()?,
        }),
        Some("digest_merged") => Event::DigestMerged(DigestMerged {
            broker: c.u32()?,
            peer: c.u32()?,
            epoch: c.u64()?,
            applied: c.bool()?,
        }),
        Some("batch_coalesced") => Event::BatchCoalesced(BatchCoalesced {
            broker: c.u32()?,
            shard: c.u32()?,
            tenant: c.str()?,
            merged: c.u64()?,
            bytes: c.u64()?,
        }),
        Some("shard_steal") => Event::ShardSteal(ShardSteal {
            broker: c.u32()?,
            thief: c.u32()?,
            victim: c.u32()?,
            stolen: c.u64()?,
        }),
        Some("sample_rate_changed") => Event::SampleRateChanged(SampleRateChanged {
            broker: c.u32()?,
            tenant: c.str()?,
            old_period: c.u64()?,
            new_period: c.u64()?,
        }),
        Some("hot_promoted") => Event::HotPromoted(HotPromoted {
            broker: c.u32()?,
            tenant: c.str()?,
            region: c.u64()?,
            to: c.node()?,
            bytes: c.u64()?,
            cost_ns: c.f64()?,
        }),
        Some("budget_exhausted") => Event::BudgetExhausted(BudgetExhausted {
            broker: c.u32()?,
            epoch: c.u64()?,
            spent_ns: c.f64()?,
            budget_ns: c.f64()?,
            deferred: c.u64()?,
        }),
        _ => return Err(CodecError::new(format!("unknown kind byte {kind}"))),
    };
    c.done()?;
    Ok((epoch, event))
}

/// Appends one record to a binary trace buffer, framed with a varint
/// byte length — the on-disk compact log format.
pub fn append_framed(buf: &mut Vec<u8>, epoch: u64, event: &Event) {
    let mut record = Vec::new();
    encode_record(epoch, event, &mut record);
    put_u64(buf, record.len() as u64);
    buf.extend_from_slice(&record);
}

/// Parses a whole binary trace written with [`append_framed`].
pub fn read_framed(bytes: &[u8]) -> Result<Vec<(u64, Event)>, CodecError> {
    let mut c = Cursor { bytes, pos: 0 };
    let mut out = Vec::new();
    while c.pos < bytes.len() {
        let len = c.u64()? as usize;
        let end = c
            .pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| CodecError::new("truncated framed record"))?;
        out.push(decode_record(&bytes[c.pos..end])?);
        c.pos = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut c = Cursor { bytes: &buf, pos: 0 };
            assert_eq!(c.u64().expect("decode"), v);
            c.done().expect("consumed");
        }
    }

    #[test]
    fn compact_is_much_smaller_than_jsonl() {
        let event = Event::OccupancyGauge(OccupancyGauge {
            node: NodeId(2),
            used: 5 << 30,
            high_water: 9 << 30,
            total: 768 << 30,
        });
        let mut buf = Vec::new();
        encode_record(7, &event, &mut buf);
        assert!(
            buf.len() * 3 < event.to_json().len(),
            "compact {}B vs jsonl {}B",
            buf.len(),
            event.to_json().len()
        );
        assert_eq!(decode_record(&buf).expect("roundtrip"), (7, event));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let event = Event::LeaseRevoked(LeaseRevoked {
            broker: 1,
            tenant: "graph500".into(),
            lease: 11,
            reason: "disconnect".into(),
        });
        let mut buf = Vec::new();
        encode_record(3, &event, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_record(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn framed_log_roundtrips() {
        let events = vec![
            (0, Event::AttrFallback(AttrFallback { requested: 4, used: 2 })),
            (
                5,
                Event::TierDegraded(TierDegraded { broker: 0, kind: "hbm".into(), degraded: true }),
            ),
            (9, Event::Free(FreeEvent { region: 1, placement: vec![(NodeId(4), 64)] })),
            (
                11,
                Event::SpillForwarded(SpillForwarded {
                    broker: 1,
                    origin: 0,
                    tenant: "graph500".into(),
                    size: 2 << 30,
                    fast_bytes: 1 << 30,
                    cost_ns: 84_000.5,
                }),
            ),
            (11, Event::DigestMerged(DigestMerged { broker: 0, peer: 1, epoch: 9, applied: true })),
            (
                12,
                Event::BatchCoalesced(BatchCoalesced {
                    broker: 0,
                    shard: 1,
                    tenant: "stream".into(),
                    merged: 3,
                    bytes: 3 << 20,
                }),
            ),
            (13, Event::ShardSteal(ShardSteal { broker: 0, thief: 2, victim: 0, stolen: 5 })),
            (
                14,
                Event::SampleRateChanged(SampleRateChanged {
                    broker: 0,
                    tenant: "interactive".into(),
                    old_period: 262_144,
                    new_period: 4096,
                }),
            ),
            (
                14,
                Event::HotPromoted(HotPromoted {
                    broker: 1,
                    tenant: "interactive".into(),
                    region: 3,
                    to: NodeId(4),
                    bytes: 1 << 30,
                    cost_ns: 52_000.5,
                }),
            ),
            (
                15,
                Event::BudgetExhausted(BudgetExhausted {
                    broker: 0,
                    epoch: 15,
                    spent_ns: 99_000.0,
                    budget_ns: 100_000.0,
                    deferred: 2,
                }),
            ),
        ];
        let mut buf = Vec::new();
        for (epoch, event) in &events {
            append_framed(&mut buf, *epoch, event);
        }
        assert_eq!(read_framed(&buf).expect("parse"), events);
        assert!(read_framed(&buf[..buf.len() - 1]).is_err());
    }
}
