//! Folds an event stream into a per-run placement report.

use crate::{attr_name, Event};
use hetmem_topology::NodeId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Occupancy statistics for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccupancyStats {
    /// Bytes allocated at the end of the run.
    pub used: u64,
    /// Highest used-bytes sample seen.
    pub high_water: u64,
    /// Usable capacity.
    pub total: u64,
}

/// One phase as aggregated from [`crate::PhaseSpan`] events.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSample {
    /// Phase name.
    pub name: String,
    /// Modelled wall time, ns.
    pub time_ns: f64,
    /// Bytes touched per node (read + written).
    pub bytes_per_node: BTreeMap<NodeId, u64>,
}

/// Aggregated view of one run's telemetry.
///
/// Feed events in order via [`Summary::add`] (or build from a ring or
/// a parsed JSONL trace); the summary tracks allocation counts and
/// bytes per target, fallback activity, migrations, per-node occupancy
/// high-water marks, phases, and the *live placement map* — region →
/// per-node byte split — maintained through allocs, migrations and
/// frees. The live map is what integration tests diff against the
/// `MemoryManager`'s ground truth.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Successful allocations.
    pub allocs: u64,
    /// Failed allocations.
    pub alloc_failures: u64,
    /// Bytes placed per node, cumulative over all allocations.
    pub bytes_per_node: BTreeMap<NodeId, u64>,
    /// Allocations that spilled across more than one node.
    pub spills: u64,
    /// Total capacity-fallback hops (targets tried and rejected).
    pub fallback_hops: u64,
    /// Attribute substitutions, `(requested, used)` → count.
    pub attr_fallbacks: BTreeMap<(u32, u32), u64>,
    /// Migrations seen.
    pub migrations: u64,
    /// Bytes moved by migrations.
    pub migrated_bytes: u64,
    /// Tiering-daemon actions seen (each also emits a migration).
    pub tiering_actions: u64,
    /// Online-guidance actions seen (each also emits a migration).
    pub guidance_actions: u64,
    /// Frees seen.
    pub frees: u64,
    /// Broker admissions (multi-tenant service).
    pub tenant_admits: u64,
    /// Fair-share denials the arbiter issued.
    pub quota_clamps: u64,
    /// Contention stalls charged to tenants.
    pub contention_stalls: u64,
    /// Total contention time charged, ns.
    pub contention_stall_ns: f64,
    /// Broker admissions split by broker instance id. Holds only key 0
    /// for a standalone broker; a federated trace attributes each
    /// admission to the shard that granted it.
    pub admits_per_broker: BTreeMap<u32, u64>,
    /// Residual allocations served for a peer broker (federation
    /// cross-broker spill).
    pub spill_forwards: u64,
    /// Bytes granted through spill forwards.
    pub spill_forward_bytes: u64,
    /// Total modelled forwarding cost across spill forwards, ns.
    pub spill_forward_ns: f64,
    /// Peer capacity digests merged into federation boards.
    pub digest_merges: u64,
    /// Coalesced admission batches planned in one placement walk.
    pub batches_coalesced: u64,
    /// Individual requests covered by those coalesced batches.
    pub coalesced_requests: u64,
    /// Work-stealing grabs between shard dispatchers.
    pub shard_steals: u64,
    /// Individual queued requests moved by those steals.
    pub stolen_requests: u64,
    /// Adaptive-sampler period retunes (back-offs and bursts).
    pub sample_rate_changes: u64,
    /// Hot regions promoted by the broker's guided epoch fold.
    pub hot_promotions: u64,
    /// Epoch folds that ran out of migration budget.
    pub budget_exhaustions: u64,
    /// Moves deferred past exhausted budgets, cumulative.
    pub deferred_moves: u64,
    /// Per-node occupancy, latest and high-water.
    pub occupancy: BTreeMap<NodeId, OccupancyStats>,
    /// Phases in arrival order.
    pub phases: Vec<PhaseSample>,
    /// Live region placement: region id → `(node, bytes)` split.
    pub live: BTreeMap<u64, Vec<(NodeId, u64)>>,
    /// Events emitted but not collected: overwritten in a wait-free
    /// ring before a collector reached them. A nonzero count means
    /// every other total above is a lower bound.
    pub events_lost: u64,
    /// [`Summary::events_lost`] split by producing-thread label, as
    /// reported by [`crate::Collector::loss`].
    pub lost_per_thread: BTreeMap<u64, u64>,
}

impl Summary {
    /// Folds one event into the aggregate.
    pub fn add(&mut self, event: &Event) {
        match event {
            Event::AllocDecision(d) => {
                self.fallback_hops += d.hops.len() as u64;
                if d.error.is_some() || d.region.is_none() {
                    self.alloc_failures += 1;
                } else {
                    self.allocs += 1;
                    if d.placement.len() > 1 {
                        self.spills += 1;
                    }
                    for &(node, bytes) in &d.placement {
                        *self.bytes_per_node.entry(node).or_default() += bytes;
                    }
                    if let Some(region) = d.region {
                        self.live.insert(region, d.placement.clone());
                    }
                }
                if d.used != d.requested {
                    *self.attr_fallbacks.entry((d.requested, d.used)).or_default() += 1;
                }
            }
            Event::AttrFallback(a) => {
                // Counted via AllocDecision when one follows; a bare
                // AttrFallback (e.g. from candidates()) counts here.
                *self.attr_fallbacks.entry((a.requested, a.used)).or_default() += 1;
            }
            Event::Migration(m) => {
                self.migrations += 1;
                self.migrated_bytes += m.bytes_moved;
                let total: u64 = m.from.iter().map(|&(_, b)| b).sum();
                self.live.insert(m.region, vec![(m.to, total)]);
            }
            Event::Free(f) => {
                self.frees += 1;
                self.live.remove(&f.region);
            }
            Event::PhaseSpan(p) => {
                let mut bytes = BTreeMap::new();
                for t in &p.per_node {
                    *bytes.entry(t.node).or_default() += t.bytes_read + t.bytes_written;
                }
                self.phases.push(PhaseSample {
                    name: p.name.clone(),
                    time_ns: p.time_ns,
                    bytes_per_node: bytes,
                });
            }
            Event::OccupancyGauge(g) => {
                let s = self.occupancy.entry(g.node).or_default();
                s.used = g.used;
                s.high_water = s.high_water.max(g.high_water);
                s.total = g.total;
            }
            Event::TieringAction(_) => self.tiering_actions += 1,
            Event::GuidanceDecision(_) => self.guidance_actions += 1,
            Event::TenantAdmit(t) => {
                self.tenant_admits += 1;
                *self.admits_per_broker.entry(t.broker).or_default() += 1;
            }
            Event::QuotaClamp(_) => self.quota_clamps += 1,
            Event::ContentionStall(c) => {
                self.contention_stalls += 1;
                self.contention_stall_ns += c.stall_ns;
            }
            Event::SpillForwarded(s) => {
                self.spill_forwards += 1;
                self.spill_forward_bytes += s.size;
                self.spill_forward_ns += s.cost_ns;
            }
            Event::DigestMerged(_) => self.digest_merges += 1,
            Event::BatchCoalesced(b) => {
                self.batches_coalesced += 1;
                self.coalesced_requests += b.merged;
            }
            Event::ShardSteal(s) => {
                self.shard_steals += 1;
                self.stolen_requests += s.stolen;
            }
            Event::SampleRateChanged(_) => self.sample_rate_changes += 1,
            Event::HotPromoted(_) => self.hot_promotions += 1,
            Event::BudgetExhausted(b) => {
                self.budget_exhaustions += 1;
                self.deferred_moves += b.deferred;
            }
            // Event is non_exhaustive for forward compatibility;
            // unknown variants simply don't aggregate.
            #[allow(unreachable_patterns)]
            _ => {}
        }
    }

    /// Builds a summary from a slice of events.
    pub fn from_events(events: &[Event]) -> Summary {
        let mut s = Summary::default();
        for e in events {
            s.add(e);
        }
        s
    }

    /// Folds a collector's per-thread loss accounting into the
    /// summary, so downstream readers see exactly how much of the
    /// stream the totals are missing.
    pub fn apply_loss(&mut self, losses: &[crate::ThreadLoss]) {
        for l in losses {
            if l.lost > 0 {
                self.events_lost += l.lost;
                *self.lost_per_thread.entry(l.thread).or_default() += l.lost;
            }
        }
    }

    /// Live bytes currently placed on `node` according to the trace.
    pub fn live_bytes_on(&self, node: NodeId) -> u64 {
        self.live
            .values()
            .flat_map(|split| split.iter())
            .filter(|&&(n, _)| n == node)
            .map(|&(_, b)| b)
            .sum()
    }

    /// Renders the human-readable placement report printed by the
    /// repro binaries alongside a `--trace` file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "placement report");
        let _ = writeln!(
            out,
            "  allocations: {} ok, {} failed, {} spilled, {} fallback hops",
            self.allocs, self.alloc_failures, self.spills, self.fallback_hops
        );
        for (node, bytes) in &self.bytes_per_node {
            let _ = writeln!(out, "    node {}: {} allocated", node.0, fmt_bytes(*bytes));
        }
        if !self.attr_fallbacks.is_empty() {
            let _ = writeln!(out, "  attribute fallbacks:");
            for (&(req, used), count) in &self.attr_fallbacks {
                let _ = writeln!(out, "    {} -> {}: {count}x", attr_name(req), attr_name(used));
            }
        }
        if self.migrations > 0 {
            let _ = writeln!(
                out,
                "  migrations: {} moving {}",
                self.migrations,
                fmt_bytes(self.migrated_bytes)
            );
        }
        if self.tenant_admits + self.quota_clamps + self.contention_stalls > 0 {
            let _ = writeln!(
                out,
                "  service: {} admissions, {} quota clamps, {} contention stalls ({:.3} ms)",
                self.tenant_admits,
                self.quota_clamps,
                self.contention_stalls,
                self.contention_stall_ns / 1e6
            );
        }
        // Per-broker attribution only matters (and only renders) when
        // a non-default broker id appears, so standalone reports are
        // byte-identical to the pre-federation format.
        if self.admits_per_broker.keys().any(|&b| b != 0) {
            let split = self
                .admits_per_broker
                .iter()
                .map(|(b, n)| format!("broker {b}: {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "    admissions by broker: {split}");
        }
        if self.spill_forwards + self.digest_merges > 0 {
            let _ = writeln!(
                out,
                "  federation: {} spill forwards ({}, {:.3} ms), {} digest merges",
                self.spill_forwards,
                fmt_bytes(self.spill_forward_bytes),
                self.spill_forward_ns / 1e6,
                self.digest_merges
            );
        }
        if self.batches_coalesced + self.shard_steals > 0 {
            let _ = writeln!(
                out,
                "  shards: {} coalesced batches covering {} requests, {} steals moving {} requests",
                self.batches_coalesced,
                self.coalesced_requests,
                self.shard_steals,
                self.stolen_requests
            );
        }
        if self.sample_rate_changes + self.hot_promotions + self.budget_exhaustions > 0 {
            let _ = writeln!(
                out,
                "  guided service: {} hot promotions, {} sampler retunes, \
                 {} budget exhaustions deferring {} moves",
                self.hot_promotions,
                self.sample_rate_changes,
                self.budget_exhaustions,
                self.deferred_moves
            );
        }
        if self.tiering_actions + self.guidance_actions > 0 {
            let _ = writeln!(
                out,
                "  automatic actions: {} tiering, {} guidance",
                self.tiering_actions, self.guidance_actions
            );
        }
        if !self.occupancy.is_empty() {
            let _ = writeln!(out, "  occupancy (high water / total):");
            for (node, s) in &self.occupancy {
                let pct =
                    if s.total > 0 { 100.0 * s.high_water as f64 / s.total as f64 } else { 0.0 };
                let _ = writeln!(
                    out,
                    "    node {}: {} / {} ({pct:.1}%)",
                    node.0,
                    fmt_bytes(s.high_water),
                    fmt_bytes(s.total)
                );
            }
        }
        if self.events_lost > 0 {
            let threads = self
                .lost_per_thread
                .iter()
                .map(|(t, n)| format!("thread {t}: {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "  events lost: {} (counts above are lower bounds{}{})",
                self.events_lost,
                if threads.is_empty() { "" } else { "; " },
                threads
            );
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "  phases:");
            for p in &self.phases {
                let touched: u64 = p.bytes_per_node.values().sum();
                let _ = writeln!(
                    out,
                    "    {}: {:.3} ms, {} touched across {} node(s)",
                    p.name,
                    p.time_ns / 1e6,
                    fmt_bytes(touched),
                    p.bytes_per_node.len()
                );
            }
        }
        out
    }
}

fn fmt_bytes(b: u64) -> String {
    const GIB: u64 = 1 << 30;
    const MIB: u64 = 1 << 20;
    const KIB: u64 = 1 << 10;
    if b >= GIB {
        format!("{:.2} GiB", b as f64 / GIB as f64)
    } else if b >= MIB {
        format!("{:.2} MiB", b as f64 / MIB as f64)
    } else if b >= KIB {
        format!("{:.2} KiB", b as f64 / KIB as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        AllocDecision, AttrFallback, Candidate, FallbackMode, FreeEvent, Hop, Migration,
        OccupancyGauge, Scope,
    };

    fn decision(region: u64, placement: Vec<(NodeId, u64)>, hops: usize) -> Event {
        Event::AllocDecision(AllocDecision {
            region: Some(region),
            size: placement.iter().map(|&(_, b)| b).sum(),
            requested: 2,
            used: 2,
            scope: Scope::Local,
            fallback: FallbackMode::PartialSpill,
            candidates: vec![Candidate { node: NodeId(4), value: 380_000 }],
            hops: (0..hops)
                .map(|i| Hop { node: NodeId(i as u32), reason: "full".into() })
                .collect(),
            placement,
            error: None,
        })
    }

    #[test]
    fn live_placement_tracks_alloc_migrate_free() {
        let mut s = Summary::default();
        s.add(&decision(1, vec![(NodeId(4), 100), (NodeId(0), 50)], 1));
        s.add(&decision(2, vec![(NodeId(0), 30)], 0));
        assert_eq!(s.live_bytes_on(NodeId(4)), 100);
        assert_eq!(s.live_bytes_on(NodeId(0)), 80);
        assert_eq!(s.spills, 1);
        assert_eq!(s.fallback_hops, 1);

        s.add(&Event::Migration(Migration {
            region: 1,
            from: vec![(NodeId(4), 100), (NodeId(0), 50)],
            to: NodeId(4),
            bytes_moved: 50,
            cost_ns: 10.0,
        }));
        assert_eq!(s.live_bytes_on(NodeId(4)), 150);
        assert_eq!(s.live_bytes_on(NodeId(0)), 30);

        s.add(&Event::Free(FreeEvent { region: 1, placement: vec![(NodeId(4), 150)] }));
        assert_eq!(s.live_bytes_on(NodeId(4)), 0);
        assert_eq!(s.live_bytes_on(NodeId(0)), 30);
        assert_eq!(s.frees, 1);
        assert_eq!(s.migrations, 1);
        assert_eq!(s.migrated_bytes, 50);
    }

    #[test]
    fn failures_and_attr_fallbacks_counted() {
        let mut s = Summary::default();
        s.add(&Event::AllocDecision(AllocDecision {
            region: None,
            size: 10,
            requested: 4,
            used: 2,
            scope: Scope::Local,
            fallback: FallbackMode::Strict,
            candidates: vec![],
            hops: vec![],
            placement: vec![],
            error: Some("no candidates".into()),
        }));
        s.add(&Event::AttrFallback(AttrFallback { requested: 6, used: 3 }));
        assert_eq!(s.alloc_failures, 1);
        assert_eq!(s.allocs, 0);
        assert_eq!(s.attr_fallbacks.get(&(4, 2)), Some(&1));
        assert_eq!(s.attr_fallbacks.get(&(6, 3)), Some(&1));
    }

    #[test]
    fn occupancy_keeps_high_water_across_samples() {
        let mut s = Summary::default();
        for (used, hw) in [(10u64, 10u64), (50, 50), (20, 50)] {
            s.add(&Event::OccupancyGauge(OccupancyGauge {
                node: NodeId(1),
                used,
                high_water: hw,
                total: 100,
            }));
        }
        let o = s.occupancy[&NodeId(1)];
        assert_eq!(o.used, 20);
        assert_eq!(o.high_water, 50);
        assert_eq!(o.total, 100);
    }

    #[test]
    fn federation_counters_aggregate_and_render() {
        use crate::{DigestMerged, SpillForwarded, TenantAdmit};
        let mut s = Summary::default();
        for (broker, lease) in [(0u32, 1u64), (1, 2), (1, 3)] {
            s.add(&Event::TenantAdmit(TenantAdmit {
                broker,
                tenant: "graph500".into(),
                lease,
                size: 1 << 20,
                placement: vec![(NodeId(0), 1 << 20)],
                clamped: false,
                fast_bytes: 0,
            }));
        }
        s.add(&Event::SpillForwarded(SpillForwarded {
            broker: 1,
            origin: 0,
            tenant: "graph500".into(),
            size: 2 << 20,
            fast_bytes: 2 << 20,
            cost_ns: 2e6,
        }));
        s.add(&Event::DigestMerged(DigestMerged { broker: 0, peer: 1, epoch: 4, applied: true }));
        assert_eq!(s.tenant_admits, 3);
        assert_eq!(s.admits_per_broker[&0], 1);
        assert_eq!(s.admits_per_broker[&1], 2);
        assert_eq!(s.spill_forwards, 1);
        assert_eq!(s.spill_forward_bytes, 2 << 20);
        assert_eq!(s.digest_merges, 1);
        let text = s.render();
        assert!(text.contains("admissions by broker: broker 0: 1, broker 1: 2"), "{text}");
        assert!(text.contains("1 spill forwards"), "{text}");
        assert!(text.contains("1 digest merges"), "{text}");
    }

    #[test]
    fn shard_counters_aggregate_and_render() {
        use crate::{BatchCoalesced, ShardSteal};
        let mut s = Summary::default();
        s.add(&Event::BatchCoalesced(BatchCoalesced {
            broker: 0,
            shard: 1,
            tenant: "stream".into(),
            merged: 4,
            bytes: 4 << 20,
        }));
        s.add(&Event::BatchCoalesced(BatchCoalesced {
            broker: 0,
            shard: 0,
            tenant: "graph500".into(),
            merged: 2,
            bytes: 2 << 20,
        }));
        s.add(&Event::ShardSteal(ShardSteal { broker: 0, thief: 1, victim: 0, stolen: 3 }));
        assert_eq!(s.batches_coalesced, 2);
        assert_eq!(s.coalesced_requests, 6);
        assert_eq!(s.shard_steals, 1);
        assert_eq!(s.stolen_requests, 3);
        let text = s.render();
        assert!(
            text.contains("2 coalesced batches covering 6 requests, 1 steals moving 3 requests"),
            "{text}"
        );
    }

    #[test]
    fn guided_counters_aggregate_and_render() {
        use crate::{BudgetExhausted, HotPromoted, SampleRateChanged};
        let mut s = Summary::default();
        s.add(&Event::SampleRateChanged(SampleRateChanged {
            broker: 0,
            tenant: "interactive".into(),
            old_period: 65536,
            new_period: 4096,
        }));
        s.add(&Event::HotPromoted(HotPromoted {
            broker: 0,
            tenant: "interactive".into(),
            region: 7,
            to: NodeId(4),
            bytes: 1 << 30,
            cost_ns: 5e4,
        }));
        s.add(&Event::BudgetExhausted(BudgetExhausted {
            broker: 0,
            epoch: 3,
            spent_ns: 9e4,
            budget_ns: 1e5,
            deferred: 2,
        }));
        assert_eq!(s.sample_rate_changes, 1);
        assert_eq!(s.hot_promotions, 1);
        assert_eq!(s.budget_exhaustions, 1);
        assert_eq!(s.deferred_moves, 2);
        let text = s.render();
        assert!(
            text.contains("1 hot promotions, 1 sampler retunes, 1 budget exhaustions"),
            "{text}"
        );
        // An unguided run must not grow the line (render stability).
        assert!(!Summary::default().render().contains("guided service"));
    }

    #[test]
    fn standalone_render_omits_federation_lines() {
        use crate::TenantAdmit;
        let mut s = Summary::default();
        s.add(&Event::TenantAdmit(TenantAdmit {
            broker: 0,
            tenant: "stream".into(),
            lease: 1,
            size: 1 << 20,
            placement: vec![(NodeId(0), 1 << 20)],
            clamped: false,
            fast_bytes: 0,
        }));
        let text = s.render();
        assert!(!text.contains("admissions by broker"), "{text}");
        assert!(!text.contains("federation"), "{text}");
    }

    #[test]
    fn render_mentions_key_facts() {
        let mut s = Summary::default();
        s.add(&decision(1, vec![(NodeId(4), 1 << 30), (NodeId(0), 2 << 30)], 2));
        let text = s.render();
        assert!(text.contains("1 ok"));
        assert!(text.contains("1 spilled"));
        assert!(text.contains("2 fallback hops"));
        assert!(text.contains("node 4: 1.00 GiB"));
        assert!(text.contains("node 0: 2.00 GiB"));
    }
}
