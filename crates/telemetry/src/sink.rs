//! The handle-based emission API: a cloneable [`TelemetrySink`] hands
//! each producing thread a [`ThreadWriter`] that owns a wait-free SPSC
//! race buffer ([`crate::ring`]), and a [`Collector`] drains every
//! ring, tolerating overwrite races and accounting losses exactly.
//!
//! The hot path is `sink.emit(event)` (or `writer.emit(event)` with an
//! explicit handle): encode the event into the compact varint form
//! ([`crate::compact`]) and append it to the calling thread's ring —
//! no lock, no syscall, no allocation beyond a reused scratch buffer.
//! Every event is stamped with a sink-wide **epoch** (an atomic
//! counter), so a collector can merge the per-thread streams back into
//! one causally ordered trace.

use crate::compact::{decode_record, encode_record};
use crate::ring::Ring;
use crate::{Event, Summary};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Default per-thread ring capacity in 8-byte words (8 KiB). At ~4
/// words per compact event this retains roughly 250 events per thread
/// between collector passes; see OPERATIONS.md for tuning.
pub const DEFAULT_RING_WORDS: usize = 1024;

static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

struct SinkShared {
    id: u64,
    enabled: bool,
    ring_words: usize,
    epoch: AtomicU64,
    rings: Mutex<Vec<Arc<Ring>>>,
}

/// Cloneable entry point for wait-free telemetry.
///
/// Producers either call [`TelemetrySink::emit`] directly (each thread
/// is transparently given its own ring on first use) or take an
/// explicit [`ThreadWriter`] via [`TelemetrySink::writer`] for hot
/// loops. Consumers drain everything with a [`Collector`].
///
/// ```
/// use hetmem_telemetry::{AttrFallback, Event, TelemetrySink};
/// let sink = TelemetrySink::new();
/// sink.emit(Event::AttrFallback(AttrFallback { requested: 4, used: 2 }));
/// let mut collector = sink.collector();
/// let events = collector.drain_sorted();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].event.kind(), "attr_fallback");
/// ```
#[derive(Clone)]
pub struct TelemetrySink {
    shared: Arc<SinkShared>,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("enabled", &self.shared.enabled)
            .field("ring_words", &self.shared.ring_words)
            .field("threads", &self.shared.rings.lock().expect("rings").len())
            .finish()
    }
}

impl Default for TelemetrySink {
    fn default() -> TelemetrySink {
        TelemetrySink::new()
    }
}

impl TelemetrySink {
    /// An enabled sink with [`DEFAULT_RING_WORDS`] cells per thread.
    pub fn new() -> TelemetrySink {
        TelemetrySink::with_ring_words(DEFAULT_RING_WORDS)
    }

    /// An enabled sink whose per-thread rings hold `words` 8-byte
    /// cells (rounded up to a power of two). Larger rings tolerate
    /// slower collectors before overwriting.
    pub fn with_ring_words(words: usize) -> TelemetrySink {
        TelemetrySink::build(true, words)
    }

    /// A disabled sink: `enabled()` is `false` and every emission is
    /// discarded before encoding. The default for every instrumented
    /// component.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink::build(false, 8)
    }

    fn build(enabled: bool, words: usize) -> TelemetrySink {
        TelemetrySink {
            shared: Arc::new(SinkShared {
                id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
                enabled,
                ring_words: words,
                epoch: AtomicU64::new(0),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether events are kept. Hot paths skip building events when
    /// this is `false`.
    pub fn enabled(&self) -> bool {
        self.shared.enabled
    }

    /// Registers a new per-thread ring and returns its owning writer.
    ///
    /// The writer is `Send` but neither `Sync` nor `Clone`: exactly
    /// one thread produces into each ring, which is what makes the
    /// fast path wait-free.
    pub fn writer(&self) -> ThreadWriter {
        let ring = if self.shared.enabled {
            let mut rings = self.shared.rings.lock().expect("sink rings poisoned");
            let ring = Arc::new(Ring::new(self.shared.ring_words, rings.len() as u64));
            rings.push(ring.clone());
            Some(ring)
        } else {
            None
        };
        ThreadWriter { shared: self.shared.clone(), ring, scratch: Vec::new() }
    }

    /// Emits one event from the calling thread, creating that thread's
    /// writer on first use. Equivalent to holding a [`ThreadWriter`]
    /// per thread, with the routing hidden — the right call shape for
    /// components that are themselves shared across threads.
    pub fn emit(&self, event: Event) {
        if !self.shared.enabled {
            return;
        }
        TLS_WRITERS.with(|writers| {
            let mut writers = writers.borrow_mut();
            let id = self.shared.id;
            if let Some(entry) = writers.iter_mut().find(|e| e.id == id) {
                entry.writer.emit(event);
                return;
            }
            // First emission from this thread into this sink: drop
            // writers whose sinks are gone, then register a new ring.
            writers.retain(|e| e.probe.strong_count() > 0);
            let mut entry =
                TlsEntry { id, probe: Arc::downgrade(&self.shared), writer: self.writer() };
            entry.writer.emit(event);
            writers.push(entry);
        });
    }

    /// A collector over every ring registered so far and every ring
    /// registered later. Collectors are independent observers: each
    /// sees the full stream (modulo overwritten entries).
    pub fn collector(&self) -> Collector {
        Collector { shared: self.shared.clone(), read: Vec::new(), decoded: Vec::new(), corrupt: 0 }
    }
}

struct TlsEntry {
    id: u64,
    probe: Weak<SinkShared>,
    writer: ThreadWriter,
}

thread_local! {
    static TLS_WRITERS: RefCell<Vec<TlsEntry>> = const { RefCell::new(Vec::new()) };
}

/// A single thread's handle into a [`TelemetrySink`]: owns one SPSC
/// race buffer. Obtain via [`TelemetrySink::writer`] and keep it on
/// the producing thread; emission is wait-free and never blocks on
/// collectors or other producers.
pub struct ThreadWriter {
    shared: Arc<SinkShared>,
    /// `None` for writers of a disabled sink.
    ring: Option<Arc<Ring>>,
    scratch: Vec<u8>,
}

impl ThreadWriter {
    /// Whether emissions are kept (mirrors the parent sink).
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// The per-sink thread label collectors report for this writer.
    pub fn thread(&self) -> u64 {
        self.ring.as_ref().map_or(u64::MAX, |r| r.thread())
    }

    /// Emits one event: stamps it with the next sink epoch, encodes it
    /// compactly, and appends it to this thread's ring, overwriting
    /// the oldest entries if the collector has fallen behind.
    pub fn emit(&mut self, event: Event) {
        let Some(ring) = &self.ring else { return };
        let epoch = self.shared.epoch.fetch_add(1, Ordering::Relaxed);
        self.scratch.clear();
        encode_record(epoch, &event, &mut self.scratch);
        ring.push(&self.scratch);
    }
}

/// One event as drained from a sink: the payload plus its sink-wide
/// epoch stamp and the label of the thread that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedEvent {
    /// Sink-wide emission order stamp.
    pub epoch: u64,
    /// Producing thread label (ring registration order).
    pub thread: u64,
    /// The event.
    pub event: Event,
}

/// Exact per-thread loss accounting for one collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadLoss {
    /// Producing thread label.
    pub thread: u64,
    /// Entries the producer published into its ring.
    pub written: u64,
    /// Entries this collector decoded.
    pub collected: u64,
    /// `written - collected`: entries overwritten before this
    /// collector reached them, plus any still sitting unread in the
    /// ring. Exact once the producer is quiescent and the collector
    /// has drained (a final [`Collector::drain_sorted`] after the
    /// producing threads stop).
    pub lost: u64,
}

/// Drains the per-thread rings of one sink. Create with
/// [`TelemetrySink::collector`]; call [`Collector::drain_sorted`]
/// periodically (or once, at the end of a run) and
/// [`Collector::loss`] for the per-thread accounting.
pub struct Collector {
    shared: Arc<SinkShared>,
    /// Per-ring next read sequence number, parallel to the sink's
    /// ring registry.
    read: Vec<u64>,
    /// Per-ring entries decoded by *this* collector.
    decoded: Vec<u64>,
    corrupt: u64,
}

impl Collector {
    /// Drains every decodable event currently published, merged across
    /// threads in epoch order. Overwritten entries are skipped and
    /// show up in [`Collector::loss`] instead.
    pub fn drain_sorted(&mut self) -> Vec<CollectedEvent> {
        let rings: Vec<Arc<Ring>> = self.shared.rings.lock().expect("sink rings poisoned").clone();
        self.read.resize(rings.len(), 0);
        self.decoded.resize(rings.len(), 0);
        let mut out = Vec::new();
        for (i, ring) in rings.iter().enumerate() {
            let thread = ring.thread();
            let mut corrupt = 0u64;
            let (next, decoded) =
                ring.read_from(self.read[i], |payload| match decode_record(payload) {
                    Ok((epoch, event)) => out.push(CollectedEvent { epoch, thread, event }),
                    Err(_) => corrupt += 1,
                });
            self.read[i] = next;
            self.decoded[i] += decoded - corrupt;
            self.corrupt += corrupt;
        }
        out.sort_by_key(|e| e.epoch);
        out
    }

    /// Per-thread written/collected/lost counts as of the last drain.
    /// Exact when the producers are quiescent; see [`ThreadLoss`].
    pub fn loss(&self) -> Vec<ThreadLoss> {
        let rings: Vec<Arc<Ring>> = self.shared.rings.lock().expect("sink rings poisoned").clone();
        rings
            .iter()
            .enumerate()
            .map(|(i, ring)| {
                let written = ring.written() + ring.oversize();
                let collected = self.decoded.get(i).copied().unwrap_or(0);
                ThreadLoss {
                    thread: ring.thread(),
                    written,
                    collected,
                    lost: written.saturating_sub(collected),
                }
            })
            .collect()
    }

    /// Events whose compact payload failed to decode — zero under the
    /// protocol; a nonzero count means a codec bug, not a race.
    pub fn corrupt(&self) -> u64 {
        self.corrupt
    }

    /// Drains the remaining events and folds everything this collector
    /// has seen into a [`Summary`], including the per-thread loss
    /// counts. Call after the producers are quiescent.
    pub fn summarize(&mut self) -> (Vec<CollectedEvent>, Summary) {
        let events = self.drain_sorted();
        let mut summary = Summary::default();
        for e in &events {
            summary.add(&e.event);
        }
        summary.apply_loss(&self.loss());
        (events, summary)
    }
}

/// A background thread that periodically drains a sink and hands each
/// epoch-sorted batch to a callback (typically a JSONL trace writer).
/// Dropping it (or calling [`BackgroundCollector::finish`]) stops the
/// thread, performs a final drain, and flushes the tail — so a
/// panicking main thread still gets its trace.
pub struct BackgroundCollector {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Vec<ThreadLoss>>>,
}

impl BackgroundCollector {
    /// Spawns a collector thread over `sink`, draining every
    /// `interval` and on shutdown.
    pub fn spawn(
        sink: &TelemetrySink,
        interval: std::time::Duration,
        mut on_batch: impl FnMut(Vec<CollectedEvent>) + Send + 'static,
    ) -> BackgroundCollector {
        let stop = Arc::new(AtomicBool::new(false));
        let mut collector = sink.collector();
        let handle = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                loop {
                    let batch = collector.drain_sorted();
                    if !batch.is_empty() {
                        on_batch(batch);
                    }
                    if stop.load(Ordering::SeqCst) {
                        // One more pass picks up anything raced in
                        // between the drain above and the stop flag.
                        let tail = collector.drain_sorted();
                        if !tail.is_empty() {
                            on_batch(tail);
                        }
                        return collector.loss();
                    }
                    std::thread::sleep(interval);
                }
            })
        };
        BackgroundCollector { stop, handle: Some(handle) }
    }

    /// Stops the thread, drains the tail, and returns the final
    /// per-thread loss accounting.
    pub fn finish(mut self) -> Vec<ThreadLoss> {
        self.finish_inner().unwrap_or_default()
    }

    fn finish_inner(&mut self) -> Option<Vec<ThreadLoss>> {
        let handle = self.handle.take()?;
        self.stop.store(true, Ordering::SeqCst);
        handle.join().ok()
    }
}

impl Drop for BackgroundCollector {
    fn drop(&mut self) {
        let _ = self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrFallback, OccupancyGauge};
    use hetmem_topology::NodeId;

    fn gauge(n: u32) -> Event {
        Event::OccupancyGauge(OccupancyGauge {
            node: NodeId(n),
            used: n as u64,
            high_water: n as u64,
            total: 100,
        })
    }

    #[test]
    fn disabled_sink_discards_everything() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.enabled());
        sink.emit(gauge(1));
        let mut w = sink.writer();
        assert!(!w.enabled());
        w.emit(gauge(2));
        assert!(sink.collector().drain_sorted().is_empty());
        assert!(sink.collector().loss().is_empty());
    }

    #[test]
    fn writer_and_emit_share_one_epoch_order() {
        let sink = TelemetrySink::new();
        let mut w = sink.writer();
        w.emit(gauge(0));
        sink.emit(gauge(1));
        w.emit(gauge(2));
        let events = sink.collector().drain_sorted();
        let nodes: Vec<u32> = events
            .iter()
            .map(|e| match &e.event {
                Event::OccupancyGauge(g) => g.node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![0, 1, 2]);
        // Two rings: the explicit writer and the emit() thread writer.
        let epochs: Vec<u64> = events.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2]);
    }

    #[test]
    fn collectors_are_independent_observers() {
        let sink = TelemetrySink::new();
        let mut w = sink.writer();
        w.emit(gauge(0));
        let mut a = sink.collector();
        let mut b = sink.collector();
        assert_eq!(a.drain_sorted().len(), 1);
        assert_eq!(b.drain_sorted().len(), 1);
        w.emit(gauge(1));
        assert_eq!(a.drain_sorted().len(), 1);
        assert_eq!(b.drain_sorted().len(), 1);
        assert_eq!(a.loss(), b.loss());
        assert_eq!(a.loss()[0].lost, 0);
    }

    #[test]
    fn loss_is_exact_when_collector_lags() {
        // A tiny ring and a burst far beyond it: the writer overwrites
        // most of the stream, and written == collected + lost exactly.
        let sink = TelemetrySink::with_ring_words(32);
        let mut w = sink.writer();
        let total = 10_000u64;
        for i in 0..total {
            w.emit(gauge((i % 7) as u32));
        }
        let mut collector = sink.collector();
        let events = collector.drain_sorted();
        let loss = collector.loss();
        assert_eq!(loss.len(), 1);
        assert_eq!(loss[0].written, total);
        assert_eq!(loss[0].collected, events.len() as u64);
        assert_eq!(loss[0].written, loss[0].collected + loss[0].lost);
        assert!(loss[0].lost > 0, "a 32-word ring cannot hold 10k events");
        assert_eq!(collector.corrupt(), 0);
        // The survivors are the newest events, in epoch order.
        assert_eq!(events.last().expect("tail").epoch, total - 1);
        assert!(events.windows(2).all(|w| w[0].epoch < w[1].epoch));
    }

    #[test]
    fn summarize_folds_events_and_losses() {
        let sink = TelemetrySink::with_ring_words(16);
        let mut w = sink.writer();
        for _ in 0..100 {
            w.emit(Event::AttrFallback(AttrFallback { requested: 4, used: 2 }));
        }
        let mut collector = sink.collector();
        let (events, summary) = collector.summarize();
        assert!(!events.is_empty());
        assert_eq!(summary.events_lost, 100 - events.len() as u64);
        assert_eq!(summary.lost_per_thread.get(&0), Some(&summary.events_lost));
    }

    #[test]
    fn background_collector_flushes_tail_on_drop() {
        let sink = TelemetrySink::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let bg = {
            let seen = seen.clone();
            BackgroundCollector::spawn(&sink, std::time::Duration::from_millis(1), move |batch| {
                seen.lock().expect("seen").extend(batch)
            })
        };
        let mut w = sink.writer();
        for i in 0..100 {
            w.emit(gauge(i));
        }
        let loss = bg.finish();
        assert_eq!(seen.lock().expect("seen").len(), 100);
        assert_eq!(loss.iter().map(|l| l.lost).sum::<u64>(), 0);
    }

    #[test]
    fn eight_producer_threads_merge_by_epoch() {
        let sink = TelemetrySink::with_ring_words(1 << 14);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let mut w = sink.writer();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        w.emit(gauge(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("producer");
        }
        let mut collector = sink.collector();
        let events = collector.drain_sorted();
        assert_eq!(events.len(), 8 * 500);
        assert!(events.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        // Epochs are unique across threads (one shared counter).
        let mut epochs: Vec<u64> = events.iter().map(|e| e.epoch).collect();
        epochs.dedup();
        assert_eq!(epochs.len(), 8 * 500);
        for l in collector.loss() {
            assert_eq!(l.written, l.collected + l.lost);
            assert_eq!(l.lost, 0, "16k-word rings hold 500 gauges easily");
        }
    }
}
