//! Structured telemetry for heterogeneous-memory placement decisions.
//!
//! The paper's whole point is that placement should be *explainable*
//! by performance attributes; this crate is the layer that makes every
//! decision observable. The allocator, memory manager and access
//! engine emit [`Event`]s into a shared [`TelemetrySink`]:
//!
//! * [`AllocDecision`] — why a buffer landed where it did: the
//!   requested criterion, the attribute actually used after fallback,
//!   the ranked candidates with their attribute values, every fallback
//!   hop (target tried and rejected, with the reason), and the final
//!   placement split when a `PartialSpill` divides the buffer.
//! * [`AttrFallback`] — an attribute substitution, e.g.
//!   ReadBandwidth → Bandwidth when firmware carries no read-specific
//!   values (§IV-B of the paper).
//! * [`Migration`] / [`FreeEvent`] — region lifecycle after placement,
//!   so a trace alone reconstructs the live placement map.
//! * [`PhaseSpan`] — per-node bytes and achieved bandwidth of one
//!   simulated kernel phase.
//! * [`OccupancyGauge`] — per-node used bytes and high-water marks,
//!   sampled at every capacity change.
//!
//! The emission fast path is wait-free: a cloneable [`TelemetrySink`]
//! hands each producing thread a [`ThreadWriter`] owning a per-thread
//! SPSC race buffer (after ekotrace's verified protocol), a
//! [`Collector`] drains every ring tolerating overwrite races with
//! exact per-thread loss counts, and [`compact`] provides the varint
//! on-disk encoding. A [`TelemetrySink::disabled`] sink reports
//! `enabled() == false` so instrumented hot paths skip building events
//! entirely. [`JsonlWriter`] streams one JSON object per line, the
//! format the `--trace` flag of the repro binaries produces.
//! [`Summary`] folds a stream of events into a per-run placement
//! report.

#![warn(missing_docs)]

pub mod compact;
pub mod json;
mod ring;
mod sink;
mod summary;

pub use json::ParseError;
pub use sink::{
    BackgroundCollector, CollectedEvent, Collector, TelemetrySink, ThreadLoss, ThreadWriter,
    DEFAULT_RING_WORDS,
};
pub use summary::{OccupancyStats, PhaseSample, Summary};

use hetmem_topology::NodeId;
use json::JsonValue;
use std::io::Write;
use std::sync::Mutex;

/// Whether a ranking considered only the initiator's local targets or
/// every target on the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Targets local to the initiator (the paper's default).
    Local,
    /// All targets, local or remote (the §VIII escape hatch).
    Any,
}

impl Scope {
    fn as_str(self) -> &'static str {
        match self {
            Scope::Local => "local",
            Scope::Any => "any",
        }
    }
}

/// The fallback mode an allocation ran under (mirrors
/// `hetmem_alloc::Fallback` without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackMode {
    /// Fail if the best target cannot hold the buffer.
    Strict,
    /// Retry whole buffers down the ranking.
    NextTarget,
    /// Split across the ranking at page granularity.
    PartialSpill,
}

impl FallbackMode {
    fn as_str(self) -> &'static str {
        match self {
            FallbackMode::Strict => "strict",
            FallbackMode::NextTarget => "next_target",
            FallbackMode::PartialSpill => "partial_spill",
        }
    }
}

/// One ranked candidate target and its attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The target node.
    pub node: NodeId,
    /// The attribute value the ranking used (MiB/s, ns or bytes,
    /// depending on the attribute).
    pub value: u64,
}

/// One fallback hop: a target that was tried and could not take the
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// The rejected target.
    pub node: NodeId,
    /// Why it was rejected (stringified allocation error).
    pub reason: String,
}

/// A fully explained allocation decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocDecision {
    /// The region created, `None` when the allocation failed.
    pub region: Option<u64>,
    /// Requested bytes.
    pub size: u64,
    /// The attribute the caller asked for.
    pub requested: u32,
    /// The attribute actually used after attribute fallback.
    pub used: u32,
    /// Locality scope of the ranking.
    pub scope: Scope,
    /// Capacity-fallback mode.
    pub fallback: FallbackMode,
    /// The ranked candidates, best first, with attribute values.
    pub candidates: Vec<Candidate>,
    /// Targets tried and rejected before the decision resolved.
    pub hops: Vec<Hop>,
    /// Final placement split `(node, bytes)`; more than one entry
    /// means a spill. Empty when the allocation failed.
    pub placement: Vec<(NodeId, u64)>,
    /// The failure, if the allocation failed.
    pub error: Option<String>,
}

/// An attribute substitution (e.g. ReadBandwidth → Bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrFallback {
    /// The attribute the caller asked for.
    pub requested: u32,
    /// The similar attribute used instead.
    pub used: u32,
}

/// A region moved between nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// The migrated region.
    pub region: u64,
    /// Placement before the move.
    pub from: Vec<(NodeId, u64)>,
    /// Destination node.
    pub to: NodeId,
    /// Bytes actually moved.
    pub bytes_moved: u64,
    /// Modelled migration cost in nanoseconds.
    pub cost_ns: f64,
}

/// A region freed.
#[derive(Debug, Clone, PartialEq)]
pub struct FreeEvent {
    /// The freed region.
    pub region: u64,
    /// Placement the region held when freed.
    pub placement: Vec<(NodeId, u64)>,
}

/// Per-node traffic of one simulated phase.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrafficSample {
    /// The node.
    pub node: NodeId,
    /// Bytes read from the node.
    pub bytes_read: u64,
    /// Bytes written to the node.
    pub bytes_written: u64,
    /// Achieved bandwidth, MiB/s.
    pub achieved_bw_mbps: f64,
}

/// One simulated kernel phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    /// Phase name.
    pub name: String,
    /// Modelled wall time, ns.
    pub time_ns: f64,
    /// Thread count.
    pub threads: u64,
    /// Per-node traffic.
    pub per_node: Vec<NodeTrafficSample>,
}

/// A capacity sample for one node, emitted at every change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyGauge {
    /// The node.
    pub node: NodeId,
    /// Bytes currently allocated.
    pub used: u64,
    /// Highest `used` observed so far.
    pub high_water: u64,
    /// Usable capacity of the node.
    pub total: u64,
}

/// A promotion or demotion decided by the phase-boundary tiering
/// daemon (the underlying copy also emits a [`Migration`]; this event
/// records *why* it happened).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieringEvent {
    /// The moved region.
    pub region: u64,
    /// `true` for a promotion to the hot tier, `false` for a demotion.
    pub promoted: bool,
    /// Destination node.
    pub to: NodeId,
    /// Migration cost, ns.
    pub cost_ns: f64,
}

/// One action of the online guidance engine, recording the imperfect
/// sampled hotness estimate that drove it next to the ground truth it
/// could not see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuidanceDecision {
    /// Global guidance-interval counter when the action was taken.
    pub interval: u64,
    /// The moved region.
    pub region: u64,
    /// `true` for a promotion to the hot tier, `false` for a demotion.
    pub promoted: bool,
    /// Destination node.
    pub to: NodeId,
    /// Estimated hotness — the region's EWMA share of sampled traffic
    /// (0..=1) when the decision fired.
    pub estimated_hotness: f64,
    /// Ground-truth hotness — the region's share of the triggering
    /// interval's actual traffic (0..=1).
    pub actual_hotness: f64,
    /// Migration cost, ns.
    pub cost_ns: f64,
    /// Sampling period (accesses per sample) in effect.
    pub period: u64,
}

/// A broker admission: a tenant's allocation request was granted a
/// lease after fair-share arbitration (`hetmem-service`).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantAdmit {
    /// Id of the broker instance that granted the lease (0 for a
    /// standalone broker).
    pub broker: u32,
    /// Tenant name.
    pub tenant: String,
    /// The lease id granted.
    pub lease: u64,
    /// Requested bytes.
    pub size: u64,
    /// Final placement split `(node, bytes)`.
    pub placement: Vec<(NodeId, u64)>,
    /// Whether any candidate was refused by quota/share enforcement
    /// on the way to this placement.
    pub clamped: bool,
    /// Bytes that landed on the machine's fast tier.
    pub fast_bytes: u64,
}

/// A fair-share denial on one node: the arbiter refused to place
/// bytes for a tenant there because the tenant's quota or the
/// guaranteed shares of other tenants left no room.
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaClamp {
    /// Id of the broker instance that refused the bytes.
    pub broker: u32,
    /// Tenant name.
    pub tenant: String,
    /// The node the bytes were refused on.
    pub node: NodeId,
    /// Bytes the tenant wanted on the node.
    pub requested: u64,
    /// Bytes the arbiter was willing to grant there.
    pub allowed: u64,
}

/// Bandwidth degradation charged to a tenant because co-located
/// tenants saturated a node in the same service epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionStall {
    /// Id of the broker instance charging the stall.
    pub broker: u32,
    /// The tenant being slowed down.
    pub tenant: String,
    /// The saturated node.
    pub node: NodeId,
    /// Extra time charged, ns.
    pub stall_ns: f64,
    /// Tenants driving traffic at the node this epoch (including the
    /// stalled one).
    pub sharers: u64,
}

/// A lease aged out: the owning tenant stopped renewing it for a full
/// TTL, so the broker reclaimed the capacity (paired with a
/// [`Reclaim`] event carrying the returned bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseExpired {
    /// Id of the broker instance that owned the lease.
    pub broker: u32,
    /// Tenant name.
    pub tenant: String,
    /// The expired lease id.
    pub lease: u64,
    /// The TTL the lease ran under, in service epochs.
    pub ttl_epochs: u64,
}

/// A lease was revoked before its natural release — the connection
/// that created it dropped, or an operator/fault path pulled it.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseRevoked {
    /// Id of the broker instance that owned the lease.
    pub broker: u32,
    /// Tenant name.
    pub tenant: String,
    /// The revoked lease id.
    pub lease: u64,
    /// Why it was revoked (`"disconnect"`, `"operator"`, ...).
    pub reason: String,
}

/// A memory tier changed health. Degraded tiers are demoted to
/// last-resort rank so new placements fall back to healthy tiers
/// instead of hard-failing.
#[derive(Debug, Clone, PartialEq)]
pub struct TierDegraded {
    /// Id of the broker instance whose shard is affected.
    pub broker: u32,
    /// The tier, by wire name (`"hbm"`, `"dram"`, `"nvdimm"`, ...).
    pub kind: String,
    /// `true` when entering the degraded state, `false` on recovery.
    pub degraded: bool,
}

/// A client exhausted its retry budget against a stalled or failing
/// broker and surfaced the error to the application.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryExhausted {
    /// Tenant name (empty when the failure happened before
    /// registration).
    pub tenant: String,
    /// The wire op that was retried (`"alloc"`, `"renew"`, ...).
    pub op: String,
    /// Attempts made, including the first.
    pub attempts: u64,
    /// The error that ended the last attempt.
    pub last_error: String,
}

/// Capacity returned to the shared pool outside the normal release
/// path — the accounting side of an expiry or revocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Reclaim {
    /// Id of the broker instance that reclaimed the capacity.
    pub broker: u32,
    /// Tenant whose quota the bytes were charged against.
    pub tenant: String,
    /// The reclaimed lease id.
    pub lease: u64,
    /// Total bytes returned.
    pub bytes: u64,
    /// Placement split `(node, bytes)` that was freed.
    pub placement: Vec<(NodeId, u64)>,
    /// What triggered the reclaim (`"expired"`, `"revoked"`).
    pub reason: String,
}

/// A residual allocation served on behalf of a peer broker: the
/// tenant's home broker ran out of shard capacity and forwarded the
/// remainder here (federation cross-broker spill). Emitted by the
/// *serving* peer, so per-broker traces attribute the bytes to the
/// shard that actually holds them.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillForwarded {
    /// Id of the peer broker that served the forwarded bytes (the
    /// emitter).
    pub broker: u32,
    /// Id of the tenant's home broker that forwarded the request.
    pub origin: u32,
    /// Tenant name.
    pub tenant: String,
    /// Forwarded bytes granted here.
    pub size: u64,
    /// Of those, bytes that landed on the machine's fast tier.
    pub fast_bytes: u64,
    /// Modelled forwarding cost (round trip plus transfer), ns.
    pub cost_ns: f64,
}

/// A peer's capacity digest was merged into a broker's federation
/// board. `applied == false` means the held entry was already newer
/// under the last-writer-wins order, so the merge was a no-op.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestMerged {
    /// Id of the broker doing the merging.
    pub broker: u32,
    /// Id of the peer the digest describes.
    pub peer: u32,
    /// Epoch stamp of the incoming digest.
    pub epoch: u64,
    /// Whether the incoming digest replaced the held entry.
    pub applied: bool,
}

/// Several same-tenant, same-attribute admissions were merged into a
/// single placement planning walk by a shard dispatcher. The grants
/// fan back out to the individual requests; this event records only
/// the merge itself (one per coalesced batch).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCoalesced {
    /// Id of the emitting broker (0 standalone).
    pub broker: u32,
    /// Index of the shard whose queue was coalesced.
    pub shard: u32,
    /// Tenant whose requests were merged.
    pub tenant: String,
    /// Number of requests merged into the single planning walk (≥ 2).
    pub merged: u64,
    /// Total bytes requested across the merged batch.
    pub bytes: u64,
}

/// A shard dispatcher drained its own admission queue and stole
/// pending work from the most-loaded sibling shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSteal {
    /// Id of the emitting broker (0 standalone).
    pub broker: u32,
    /// Index of the idle shard that stole the work.
    pub thief: u32,
    /// Index of the loaded shard the work was taken from.
    pub victim: u32,
    /// Number of queued requests moved.
    pub stolen: u64,
}

/// A tenant's adaptive guidance sampler retuned its period: backed
/// off while the hot-set estimate was stable, or burst to the minimum
/// period on a detected phase change.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRateChanged {
    /// Id of the emitting broker (0 standalone).
    pub broker: u32,
    /// The tenant whose sampler retuned.
    pub tenant: String,
    /// Period before the change (accesses per sample).
    pub old_period: u64,
    /// Period after the change.
    pub new_period: u64,
}

/// The broker's epoch fold promoted a tenant's hot region onto the
/// fast tier at arbitration time.
#[derive(Debug, Clone, PartialEq)]
pub struct HotPromoted {
    /// Id of the emitting broker (0 standalone).
    pub broker: u32,
    /// The tenant owning the promoted region.
    pub tenant: String,
    /// The promoted region's id.
    pub region: u64,
    /// Destination node (the fast-tier target).
    pub to: NodeId,
    /// Region size, bytes.
    pub bytes: u64,
    /// Modelled migration cost charged to the epoch budget, ns.
    pub cost_ns: f64,
}

/// An epoch's migration budget ran out before every planned move was
/// executed; the remainder is deferred to a later epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetExhausted {
    /// Id of the emitting broker (0 standalone).
    pub broker: u32,
    /// The epoch whose fold hit the cap.
    pub epoch: u64,
    /// Migration cost charged before the cap was hit, ns.
    pub spent_ns: f64,
    /// The per-epoch cap, ns.
    pub budget_ns: f64,
    /// Planned moves deferred past the cap.
    pub deferred: u64,
}

/// A telemetry event.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// An allocation decision (success or failure).
    AllocDecision(AllocDecision),
    /// An attribute substitution.
    AttrFallback(AttrFallback),
    /// A region migration.
    Migration(Migration),
    /// A region free.
    Free(FreeEvent),
    /// A simulated phase.
    PhaseSpan(PhaseSpan),
    /// A node occupancy sample.
    OccupancyGauge(OccupancyGauge),
    /// A tiering-daemon promotion or demotion.
    TieringAction(TieringEvent),
    /// An online-guidance promotion or demotion.
    GuidanceDecision(GuidanceDecision),
    /// A broker admission (multi-tenant service).
    TenantAdmit(TenantAdmit),
    /// A fair-share denial on one node (multi-tenant service).
    QuotaClamp(QuotaClamp),
    /// Contention-induced slowdown charged to a tenant.
    ContentionStall(ContentionStall),
    /// A lease aged out without renewal (multi-tenant service).
    LeaseExpired(LeaseExpired),
    /// A lease was revoked (disconnect, operator, fault).
    LeaseRevoked(LeaseRevoked),
    /// A tier entered or left the degraded state.
    TierDegraded(TierDegraded),
    /// A client gave up after its retry budget.
    RetryExhausted(RetryExhausted),
    /// Capacity reclaimed from an expired or revoked lease.
    Reclaim(Reclaim),
    /// A forwarded residual allocation served for a peer broker.
    SpillForwarded(SpillForwarded),
    /// A peer capacity digest merged into a federation board.
    DigestMerged(DigestMerged),
    /// Same-tenant admissions merged into one planning walk (shard
    /// dispatch plane).
    BatchCoalesced(BatchCoalesced),
    /// An idle shard stole queued admissions from a loaded sibling.
    ShardSteal(ShardSteal),
    /// A tenant's adaptive sampler backed off or burst its period.
    SampleRateChanged(SampleRateChanged),
    /// The epoch fold promoted a tenant's hot region to the fast tier.
    HotPromoted(HotPromoted),
    /// An epoch's migration budget ran out; moves were deferred.
    BudgetExhausted(BudgetExhausted),
}

/// The `event` field value of every [`Event`] variant, in declaration
/// order. `docs/PROTOCOL.md` coverage tests enumerate this list so the
/// spec cannot silently fall behind the enum.
pub const EVENT_KINDS: &[&str] = &[
    "alloc_decision",
    "attr_fallback",
    "migration",
    "free",
    "phase_span",
    "occupancy",
    "tiering_action",
    "guidance_decision",
    "tenant_admit",
    "quota_clamp",
    "contention_stall",
    "lease_expired",
    "lease_revoked",
    "tier_degraded",
    "retry_exhausted",
    "reclaim",
    "spill_forwarded",
    "digest_merged",
    "batch_coalesced",
    "shard_steal",
    "sample_rate_changed",
    "hot_promoted",
    "budget_exhausted",
];

/// Human-readable name for the well-known attribute ids of
/// `hetmem-core` (custom attributes render as `attr#N`).
pub fn attr_name(id: u32) -> String {
    match id {
        0 => "Capacity".into(),
        1 => "Locality".into(),
        2 => "Bandwidth".into(),
        3 => "Latency".into(),
        4 => "ReadBandwidth".into(),
        5 => "WriteBandwidth".into(),
        6 => "ReadLatency".into(),
        7 => "WriteLatency".into(),
        n => format!("attr#{n}"),
    }
}

fn placement_json(placement: &[(NodeId, u64)]) -> JsonValue {
    JsonValue::Array(
        placement
            .iter()
            .map(|&(n, b)| {
                JsonValue::Array(vec![JsonValue::num(n.0 as f64), JsonValue::num(b as f64)])
            })
            .collect(),
    )
}

/// Broker ids were added in the federation PR; traces written before
/// then carry no `broker` field and parse as broker 0 (standalone).
fn broker_from_json(v: &JsonValue) -> Result<u32, ParseError> {
    match v.get("broker") {
        Ok(b) => Ok(b.u64()? as u32),
        Err(_) => Ok(0),
    }
}

fn placement_from_json(v: &JsonValue) -> Result<Vec<(NodeId, u64)>, ParseError> {
    v.array()?
        .iter()
        .map(|pair| {
            let pair = pair.array()?;
            if pair.len() != 2 {
                return Err(ParseError::new("placement pair must have two entries"));
            }
            Ok((NodeId(pair[0].u64()? as u32), pair[1].u64()?))
        })
        .collect()
}

impl Event {
    /// The `event` field value this variant encodes to — one of
    /// [`EVENT_KINDS`].
    ///
    /// ```
    /// use hetmem_telemetry::{Event, LeaseExpired, EVENT_KINDS};
    /// let e = Event::LeaseExpired(LeaseExpired {
    ///     broker: 0,
    ///     tenant: "graph500".into(),
    ///     lease: 7,
    ///     ttl_epochs: 5,
    /// });
    /// assert_eq!(e.kind(), "lease_expired");
    /// assert!(EVENT_KINDS.contains(&e.kind()));
    /// ```
    pub fn kind(&self) -> &'static str {
        match self {
            Event::AllocDecision(_) => "alloc_decision",
            Event::AttrFallback(_) => "attr_fallback",
            Event::Migration(_) => "migration",
            Event::Free(_) => "free",
            Event::PhaseSpan(_) => "phase_span",
            Event::OccupancyGauge(_) => "occupancy",
            Event::TieringAction(_) => "tiering_action",
            Event::GuidanceDecision(_) => "guidance_decision",
            Event::TenantAdmit(_) => "tenant_admit",
            Event::QuotaClamp(_) => "quota_clamp",
            Event::ContentionStall(_) => "contention_stall",
            Event::LeaseExpired(_) => "lease_expired",
            Event::LeaseRevoked(_) => "lease_revoked",
            Event::TierDegraded(_) => "tier_degraded",
            Event::RetryExhausted(_) => "retry_exhausted",
            Event::Reclaim(_) => "reclaim",
            Event::SpillForwarded(_) => "spill_forwarded",
            Event::DigestMerged(_) => "digest_merged",
            Event::BatchCoalesced(_) => "batch_coalesced",
            Event::ShardSteal(_) => "shard_steal",
            Event::SampleRateChanged(_) => "sample_rate_changed",
            Event::HotPromoted(_) => "hot_promoted",
            Event::BudgetExhausted(_) => "budget_exhausted",
        }
    }

    /// Encodes the event as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let obj = match self {
            Event::AllocDecision(d) => {
                let mut fields = vec![
                    ("event", JsonValue::str("alloc_decision")),
                    ("region", d.region.map_or(JsonValue::Null, |r| JsonValue::num(r as f64))),
                    ("size", JsonValue::num(d.size as f64)),
                    ("requested", JsonValue::str(&attr_name(d.requested))),
                    ("used", JsonValue::str(&attr_name(d.used))),
                    ("scope", JsonValue::str(d.scope.as_str())),
                    ("fallback", JsonValue::str(d.fallback.as_str())),
                    (
                        "candidates",
                        JsonValue::Array(
                            d.candidates
                                .iter()
                                .map(|c| {
                                    JsonValue::Object(vec![
                                        ("node".into(), JsonValue::num(c.node.0 as f64)),
                                        ("value".into(), JsonValue::num(c.value as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "hops",
                        JsonValue::Array(
                            d.hops
                                .iter()
                                .map(|h| {
                                    JsonValue::Object(vec![
                                        ("node".into(), JsonValue::num(h.node.0 as f64)),
                                        ("reason".into(), JsonValue::str(&h.reason)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("placement", placement_json(&d.placement)),
                ];
                if let Some(e) = &d.error {
                    fields.push(("error", JsonValue::str(e)));
                }
                fields
            }
            Event::AttrFallback(a) => vec![
                ("event", JsonValue::str("attr_fallback")),
                ("requested", JsonValue::str(&attr_name(a.requested))),
                ("used", JsonValue::str(&attr_name(a.used))),
            ],
            Event::Migration(m) => vec![
                ("event", JsonValue::str("migration")),
                ("region", JsonValue::num(m.region as f64)),
                ("from", placement_json(&m.from)),
                ("to", JsonValue::num(m.to.0 as f64)),
                ("bytes_moved", JsonValue::num(m.bytes_moved as f64)),
                ("cost_ns", JsonValue::num(m.cost_ns)),
            ],
            Event::Free(f) => vec![
                ("event", JsonValue::str("free")),
                ("region", JsonValue::num(f.region as f64)),
                ("placement", placement_json(&f.placement)),
            ],
            Event::PhaseSpan(p) => vec![
                ("event", JsonValue::str("phase_span")),
                ("name", JsonValue::str(&p.name)),
                ("time_ns", JsonValue::num(p.time_ns)),
                ("threads", JsonValue::num(p.threads as f64)),
                (
                    "per_node",
                    JsonValue::Array(
                        p.per_node
                            .iter()
                            .map(|t| {
                                JsonValue::Object(vec![
                                    ("node".into(), JsonValue::num(t.node.0 as f64)),
                                    ("bytes_read".into(), JsonValue::num(t.bytes_read as f64)),
                                    (
                                        "bytes_written".into(),
                                        JsonValue::num(t.bytes_written as f64),
                                    ),
                                    ("achieved_bw_mbps".into(), JsonValue::num(t.achieved_bw_mbps)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ],
            Event::OccupancyGauge(g) => vec![
                ("event", JsonValue::str("occupancy")),
                ("node", JsonValue::num(g.node.0 as f64)),
                ("used", JsonValue::num(g.used as f64)),
                ("high_water", JsonValue::num(g.high_water as f64)),
                ("total", JsonValue::num(g.total as f64)),
            ],
            Event::TieringAction(t) => vec![
                ("event", JsonValue::str("tiering_action")),
                ("region", JsonValue::num(t.region as f64)),
                ("action", JsonValue::str(action_name(t.promoted))),
                ("to", JsonValue::num(t.to.0 as f64)),
                ("cost_ns", JsonValue::num(t.cost_ns)),
            ],
            Event::GuidanceDecision(g) => vec![
                ("event", JsonValue::str("guidance_decision")),
                ("interval", JsonValue::num(g.interval as f64)),
                ("region", JsonValue::num(g.region as f64)),
                ("action", JsonValue::str(action_name(g.promoted))),
                ("to", JsonValue::num(g.to.0 as f64)),
                ("estimated_hotness", JsonValue::num(g.estimated_hotness)),
                ("actual_hotness", JsonValue::num(g.actual_hotness)),
                ("cost_ns", JsonValue::num(g.cost_ns)),
                ("period", JsonValue::num(g.period as f64)),
            ],
            Event::TenantAdmit(t) => vec![
                ("event", JsonValue::str("tenant_admit")),
                ("broker", JsonValue::num(t.broker as f64)),
                ("tenant", JsonValue::str(&t.tenant)),
                ("lease", JsonValue::num(t.lease as f64)),
                ("size", JsonValue::num(t.size as f64)),
                ("placement", placement_json(&t.placement)),
                ("clamped", JsonValue::str(if t.clamped { "yes" } else { "no" })),
                ("fast_bytes", JsonValue::num(t.fast_bytes as f64)),
            ],
            Event::QuotaClamp(q) => vec![
                ("event", JsonValue::str("quota_clamp")),
                ("broker", JsonValue::num(q.broker as f64)),
                ("tenant", JsonValue::str(&q.tenant)),
                ("node", JsonValue::num(q.node.0 as f64)),
                ("requested", JsonValue::num(q.requested as f64)),
                ("allowed", JsonValue::num(q.allowed as f64)),
            ],
            Event::ContentionStall(c) => vec![
                ("event", JsonValue::str("contention_stall")),
                ("broker", JsonValue::num(c.broker as f64)),
                ("tenant", JsonValue::str(&c.tenant)),
                ("node", JsonValue::num(c.node.0 as f64)),
                ("stall_ns", JsonValue::num(c.stall_ns)),
                ("sharers", JsonValue::num(c.sharers as f64)),
            ],
            Event::LeaseExpired(l) => vec![
                ("event", JsonValue::str("lease_expired")),
                ("broker", JsonValue::num(l.broker as f64)),
                ("tenant", JsonValue::str(&l.tenant)),
                ("lease", JsonValue::num(l.lease as f64)),
                ("ttl_epochs", JsonValue::num(l.ttl_epochs as f64)),
            ],
            Event::LeaseRevoked(l) => vec![
                ("event", JsonValue::str("lease_revoked")),
                ("broker", JsonValue::num(l.broker as f64)),
                ("tenant", JsonValue::str(&l.tenant)),
                ("lease", JsonValue::num(l.lease as f64)),
                ("reason", JsonValue::str(&l.reason)),
            ],
            Event::TierDegraded(t) => vec![
                ("event", JsonValue::str("tier_degraded")),
                ("broker", JsonValue::num(t.broker as f64)),
                ("kind", JsonValue::str(&t.kind)),
                ("degraded", JsonValue::str(if t.degraded { "yes" } else { "no" })),
            ],
            Event::RetryExhausted(r) => vec![
                ("event", JsonValue::str("retry_exhausted")),
                ("tenant", JsonValue::str(&r.tenant)),
                ("op", JsonValue::str(&r.op)),
                ("attempts", JsonValue::num(r.attempts as f64)),
                ("last_error", JsonValue::str(&r.last_error)),
            ],
            Event::Reclaim(r) => vec![
                ("event", JsonValue::str("reclaim")),
                ("broker", JsonValue::num(r.broker as f64)),
                ("tenant", JsonValue::str(&r.tenant)),
                ("lease", JsonValue::num(r.lease as f64)),
                ("bytes", JsonValue::num(r.bytes as f64)),
                ("placement", placement_json(&r.placement)),
                ("reason", JsonValue::str(&r.reason)),
            ],
            Event::SpillForwarded(s) => vec![
                ("event", JsonValue::str("spill_forwarded")),
                ("broker", JsonValue::num(s.broker as f64)),
                ("origin", JsonValue::num(s.origin as f64)),
                ("tenant", JsonValue::str(&s.tenant)),
                ("size", JsonValue::num(s.size as f64)),
                ("fast_bytes", JsonValue::num(s.fast_bytes as f64)),
                ("cost_ns", JsonValue::num(s.cost_ns)),
            ],
            Event::DigestMerged(d) => vec![
                ("event", JsonValue::str("digest_merged")),
                ("broker", JsonValue::num(d.broker as f64)),
                ("peer", JsonValue::num(d.peer as f64)),
                ("epoch", JsonValue::num(d.epoch as f64)),
                ("applied", JsonValue::str(if d.applied { "yes" } else { "no" })),
            ],
            Event::BatchCoalesced(b) => vec![
                ("event", JsonValue::str("batch_coalesced")),
                ("broker", JsonValue::num(b.broker as f64)),
                ("shard", JsonValue::num(b.shard as f64)),
                ("tenant", JsonValue::str(&b.tenant)),
                ("merged", JsonValue::num(b.merged as f64)),
                ("bytes", JsonValue::num(b.bytes as f64)),
            ],
            Event::ShardSteal(s) => vec![
                ("event", JsonValue::str("shard_steal")),
                ("broker", JsonValue::num(s.broker as f64)),
                ("thief", JsonValue::num(s.thief as f64)),
                ("victim", JsonValue::num(s.victim as f64)),
                ("stolen", JsonValue::num(s.stolen as f64)),
            ],
            Event::SampleRateChanged(s) => vec![
                ("event", JsonValue::str("sample_rate_changed")),
                ("broker", JsonValue::num(s.broker as f64)),
                ("tenant", JsonValue::str(&s.tenant)),
                ("old_period", JsonValue::num(s.old_period as f64)),
                ("new_period", JsonValue::num(s.new_period as f64)),
            ],
            Event::HotPromoted(h) => vec![
                ("event", JsonValue::str("hot_promoted")),
                ("broker", JsonValue::num(h.broker as f64)),
                ("tenant", JsonValue::str(&h.tenant)),
                ("region", JsonValue::num(h.region as f64)),
                ("to", JsonValue::num(h.to.0 as f64)),
                ("bytes", JsonValue::num(h.bytes as f64)),
                ("cost_ns", JsonValue::num(h.cost_ns)),
            ],
            Event::BudgetExhausted(b) => vec![
                ("event", JsonValue::str("budget_exhausted")),
                ("broker", JsonValue::num(b.broker as f64)),
                ("epoch", JsonValue::num(b.epoch as f64)),
                ("spent_ns", JsonValue::num(b.spent_ns)),
                ("budget_ns", JsonValue::num(b.budget_ns)),
                ("deferred", JsonValue::num(b.deferred as f64)),
            ],
        };
        JsonValue::Object(obj.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).render()
    }

    /// Parses one JSON line produced by [`Event::to_json`].
    pub fn from_json(line: &str) -> Result<Event, ParseError> {
        let v = json::parse(line)?;
        let kind = v.get("event")?.string()?;
        match kind.as_str() {
            "alloc_decision" => {
                let region = match v.get("region")? {
                    JsonValue::Null => None,
                    other => Some(other.u64()?),
                };
                Ok(Event::AllocDecision(AllocDecision {
                    region,
                    size: v.get("size")?.u64()?,
                    requested: attr_id(&v.get("requested")?.string()?)?,
                    used: attr_id(&v.get("used")?.string()?)?,
                    scope: match v.get("scope")?.string()?.as_str() {
                        "local" => Scope::Local,
                        "any" => Scope::Any,
                        other => return Err(ParseError::new(format!("bad scope {other:?}"))),
                    },
                    fallback: match v.get("fallback")?.string()?.as_str() {
                        "strict" => FallbackMode::Strict,
                        "next_target" => FallbackMode::NextTarget,
                        "partial_spill" => FallbackMode::PartialSpill,
                        other => return Err(ParseError::new(format!("bad fallback {other:?}"))),
                    },
                    candidates: v
                        .get("candidates")?
                        .array()?
                        .iter()
                        .map(|c| {
                            Ok(Candidate {
                                node: NodeId(c.get("node")?.u64()? as u32),
                                value: c.get("value")?.u64()?,
                            })
                        })
                        .collect::<Result<_, ParseError>>()?,
                    hops: v
                        .get("hops")?
                        .array()?
                        .iter()
                        .map(|h| {
                            Ok(Hop {
                                node: NodeId(h.get("node")?.u64()? as u32),
                                reason: h.get("reason")?.string()?,
                            })
                        })
                        .collect::<Result<_, ParseError>>()?,
                    placement: placement_from_json(&v.get("placement")?)?,
                    error: match v.get("error") {
                        Ok(e) => Some(e.string()?),
                        Err(_) => None,
                    },
                }))
            }
            "attr_fallback" => Ok(Event::AttrFallback(AttrFallback {
                requested: attr_id(&v.get("requested")?.string()?)?,
                used: attr_id(&v.get("used")?.string()?)?,
            })),
            "migration" => Ok(Event::Migration(Migration {
                region: v.get("region")?.u64()?,
                from: placement_from_json(&v.get("from")?)?,
                to: NodeId(v.get("to")?.u64()? as u32),
                bytes_moved: v.get("bytes_moved")?.u64()?,
                cost_ns: v.get("cost_ns")?.f64()?,
            })),
            "free" => Ok(Event::Free(FreeEvent {
                region: v.get("region")?.u64()?,
                placement: placement_from_json(&v.get("placement")?)?,
            })),
            "phase_span" => Ok(Event::PhaseSpan(PhaseSpan {
                name: v.get("name")?.string()?,
                time_ns: v.get("time_ns")?.f64()?,
                threads: v.get("threads")?.u64()?,
                per_node: v
                    .get("per_node")?
                    .array()?
                    .iter()
                    .map(|t| {
                        Ok(NodeTrafficSample {
                            node: NodeId(t.get("node")?.u64()? as u32),
                            bytes_read: t.get("bytes_read")?.u64()?,
                            bytes_written: t.get("bytes_written")?.u64()?,
                            achieved_bw_mbps: t.get("achieved_bw_mbps")?.f64()?,
                        })
                    })
                    .collect::<Result<_, ParseError>>()?,
            })),
            "occupancy" => Ok(Event::OccupancyGauge(OccupancyGauge {
                node: NodeId(v.get("node")?.u64()? as u32),
                used: v.get("used")?.u64()?,
                high_water: v.get("high_water")?.u64()?,
                total: v.get("total")?.u64()?,
            })),
            "tiering_action" => Ok(Event::TieringAction(TieringEvent {
                region: v.get("region")?.u64()?,
                promoted: action_promoted(&v.get("action")?.string()?)?,
                to: NodeId(v.get("to")?.u64()? as u32),
                cost_ns: v.get("cost_ns")?.f64()?,
            })),
            "guidance_decision" => Ok(Event::GuidanceDecision(GuidanceDecision {
                interval: v.get("interval")?.u64()?,
                region: v.get("region")?.u64()?,
                promoted: action_promoted(&v.get("action")?.string()?)?,
                to: NodeId(v.get("to")?.u64()? as u32),
                estimated_hotness: v.get("estimated_hotness")?.f64()?,
                actual_hotness: v.get("actual_hotness")?.f64()?,
                cost_ns: v.get("cost_ns")?.f64()?,
                period: v.get("period")?.u64()?,
            })),
            "tenant_admit" => Ok(Event::TenantAdmit(TenantAdmit {
                broker: broker_from_json(&v)?,
                tenant: v.get("tenant")?.string()?,
                lease: v.get("lease")?.u64()?,
                size: v.get("size")?.u64()?,
                placement: placement_from_json(&v.get("placement")?)?,
                clamped: match v.get("clamped")?.string()?.as_str() {
                    "yes" => true,
                    "no" => false,
                    other => return Err(ParseError::new(format!("bad clamped {other:?}"))),
                },
                fast_bytes: v.get("fast_bytes")?.u64()?,
            })),
            "quota_clamp" => Ok(Event::QuotaClamp(QuotaClamp {
                broker: broker_from_json(&v)?,
                tenant: v.get("tenant")?.string()?,
                node: NodeId(v.get("node")?.u64()? as u32),
                requested: v.get("requested")?.u64()?,
                allowed: v.get("allowed")?.u64()?,
            })),
            "contention_stall" => Ok(Event::ContentionStall(ContentionStall {
                broker: broker_from_json(&v)?,
                tenant: v.get("tenant")?.string()?,
                node: NodeId(v.get("node")?.u64()? as u32),
                stall_ns: v.get("stall_ns")?.f64()?,
                sharers: v.get("sharers")?.u64()?,
            })),
            "lease_expired" => Ok(Event::LeaseExpired(LeaseExpired {
                broker: broker_from_json(&v)?,
                tenant: v.get("tenant")?.string()?,
                lease: v.get("lease")?.u64()?,
                ttl_epochs: v.get("ttl_epochs")?.u64()?,
            })),
            "lease_revoked" => Ok(Event::LeaseRevoked(LeaseRevoked {
                broker: broker_from_json(&v)?,
                tenant: v.get("tenant")?.string()?,
                lease: v.get("lease")?.u64()?,
                reason: v.get("reason")?.string()?,
            })),
            "tier_degraded" => Ok(Event::TierDegraded(TierDegraded {
                broker: broker_from_json(&v)?,
                kind: v.get("kind")?.string()?,
                degraded: match v.get("degraded")?.string()?.as_str() {
                    "yes" => true,
                    "no" => false,
                    other => return Err(ParseError::new(format!("bad degraded {other:?}"))),
                },
            })),
            "retry_exhausted" => Ok(Event::RetryExhausted(RetryExhausted {
                tenant: v.get("tenant")?.string()?,
                op: v.get("op")?.string()?,
                attempts: v.get("attempts")?.u64()?,
                last_error: v.get("last_error")?.string()?,
            })),
            "reclaim" => Ok(Event::Reclaim(Reclaim {
                broker: broker_from_json(&v)?,
                tenant: v.get("tenant")?.string()?,
                lease: v.get("lease")?.u64()?,
                bytes: v.get("bytes")?.u64()?,
                placement: placement_from_json(&v.get("placement")?)?,
                reason: v.get("reason")?.string()?,
            })),
            "spill_forwarded" => Ok(Event::SpillForwarded(SpillForwarded {
                broker: broker_from_json(&v)?,
                origin: v.get("origin")?.u64()? as u32,
                tenant: v.get("tenant")?.string()?,
                size: v.get("size")?.u64()?,
                fast_bytes: v.get("fast_bytes")?.u64()?,
                cost_ns: v.get("cost_ns")?.f64()?,
            })),
            "digest_merged" => Ok(Event::DigestMerged(DigestMerged {
                broker: broker_from_json(&v)?,
                peer: v.get("peer")?.u64()? as u32,
                epoch: v.get("epoch")?.u64()?,
                applied: match v.get("applied")?.string()?.as_str() {
                    "yes" => true,
                    "no" => false,
                    other => return Err(ParseError::new(format!("bad applied {other:?}"))),
                },
            })),
            "batch_coalesced" => Ok(Event::BatchCoalesced(BatchCoalesced {
                broker: broker_from_json(&v)?,
                shard: v.get("shard")?.u64()? as u32,
                tenant: v.get("tenant")?.string()?,
                merged: v.get("merged")?.u64()?,
                bytes: v.get("bytes")?.u64()?,
            })),
            "shard_steal" => Ok(Event::ShardSteal(ShardSteal {
                broker: broker_from_json(&v)?,
                thief: v.get("thief")?.u64()? as u32,
                victim: v.get("victim")?.u64()? as u32,
                stolen: v.get("stolen")?.u64()?,
            })),
            "sample_rate_changed" => Ok(Event::SampleRateChanged(SampleRateChanged {
                broker: broker_from_json(&v)?,
                tenant: v.get("tenant")?.string()?,
                old_period: v.get("old_period")?.u64()?,
                new_period: v.get("new_period")?.u64()?,
            })),
            "hot_promoted" => Ok(Event::HotPromoted(HotPromoted {
                broker: broker_from_json(&v)?,
                tenant: v.get("tenant")?.string()?,
                region: v.get("region")?.u64()?,
                to: NodeId(v.get("to")?.u64()? as u32),
                bytes: v.get("bytes")?.u64()?,
                cost_ns: v.get("cost_ns")?.f64()?,
            })),
            "budget_exhausted" => Ok(Event::BudgetExhausted(BudgetExhausted {
                broker: broker_from_json(&v)?,
                epoch: v.get("epoch")?.u64()?,
                spent_ns: v.get("spent_ns")?.f64()?,
                budget_ns: v.get("budget_ns")?.f64()?,
                deferred: v.get("deferred")?.u64()?,
            })),
            other => Err(ParseError::new(format!("unknown event kind {other:?}"))),
        }
    }
}

fn action_name(promoted: bool) -> &'static str {
    if promoted {
        "promote"
    } else {
        "demote"
    }
}

fn action_promoted(name: &str) -> Result<bool, ParseError> {
    match name {
        "promote" => Ok(true),
        "demote" => Ok(false),
        other => Err(ParseError::new(format!("bad action {other:?}"))),
    }
}

fn attr_id(name: &str) -> Result<u32, ParseError> {
    Ok(match name {
        "Capacity" => 0,
        "Locality" => 1,
        "Bandwidth" => 2,
        "Latency" => 3,
        "ReadBandwidth" => 4,
        "WriteBandwidth" => 5,
        "ReadLatency" => 6,
        "WriteLatency" => 7,
        other => other
            .strip_prefix("attr#")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ParseError::new(format!("unknown attribute {other:?}")))?,
    })
}

/// Streams events as JSON lines (the `--trace` file format).
pub struct JsonlWriter {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlWriter {
    /// Wraps any writer.
    pub fn new(out: impl Write + Send + 'static) -> JsonlWriter {
        JsonlWriter { out: Mutex::new(Box::new(out)) }
    }

    /// Creates (truncating) a trace file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlWriter> {
        Ok(JsonlWriter::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }

    /// Flushes buffered output.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("writer poisoned").flush()
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl JsonlWriter {
    /// Writes one event as a JSON line. Write errors are swallowed —
    /// a full disk mid-trace must not take the experiment down.
    pub fn write_event(&self, event: &Event) {
        let line = event.to_json();
        let mut out = self.out.lock().expect("writer poisoned");
        let _ = writeln!(out, "{line}");
    }
}

/// Parses a JSONL trace back into events.
pub fn read_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    text.lines().map(str::trim).filter(|l| !l.is_empty()).map(Event::from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_decision() -> Event {
        Event::AllocDecision(AllocDecision {
            region: Some(7),
            size: 3 << 30,
            requested: 4,
            used: 2,
            scope: Scope::Local,
            fallback: FallbackMode::PartialSpill,
            candidates: vec![
                Candidate { node: NodeId(4), value: 380_000 },
                Candidate { node: NodeId(0), value: 90_000 },
            ],
            hops: vec![Hop { node: NodeId(4), reason: "insufficient capacity".into() }],
            placement: vec![(NodeId(4), 1 << 30), (NodeId(0), 2 << 30)],
            error: None,
        })
    }

    #[test]
    fn jsonl_roundtrip_every_variant() {
        let events = vec![
            sample_decision(),
            Event::AllocDecision(AllocDecision {
                region: None,
                size: 1 << 40,
                requested: 3,
                used: 3,
                scope: Scope::Any,
                fallback: FallbackMode::Strict,
                candidates: vec![Candidate { node: NodeId(0), value: 81 }],
                hops: vec![],
                placement: vec![],
                error: Some("insufficient capacity on node 0".into()),
            }),
            Event::AttrFallback(AttrFallback { requested: 4, used: 2 }),
            Event::Migration(Migration {
                region: 7,
                from: vec![(NodeId(0), 2 << 30)],
                to: NodeId(4),
                bytes_moved: 2 << 30,
                cost_ns: 643_000_000.25,
            }),
            Event::Free(FreeEvent { region: 7, placement: vec![(NodeId(4), 3 << 30)] }),
            Event::PhaseSpan(PhaseSpan {
                name: "bfs \"root0\"\\n".into(),
                time_ns: 1.25e9,
                threads: 16,
                per_node: vec![NodeTrafficSample {
                    node: NodeId(0),
                    bytes_read: 123,
                    bytes_written: 456,
                    achieved_bw_mbps: 8123.5,
                }],
            }),
            Event::OccupancyGauge(OccupancyGauge {
                node: NodeId(2),
                used: 5 << 30,
                high_water: 9 << 30,
                total: 768 << 30,
            }),
            Event::TieringAction(TieringEvent {
                region: 3,
                promoted: false,
                to: NodeId(0),
                cost_ns: 12_500.75,
            }),
            Event::GuidanceDecision(GuidanceDecision {
                interval: 42,
                region: 9,
                promoted: true,
                to: NodeId(4),
                estimated_hotness: 0.8125,
                actual_hotness: 0.96875,
                cost_ns: 7_000.5,
                period: 16384,
            }),
            Event::TenantAdmit(TenantAdmit {
                broker: 1,
                tenant: "graph \"500\"".into(),
                lease: 11,
                size: 3 << 30,
                placement: vec![(NodeId(4), 1 << 30), (NodeId(0), 2 << 30)],
                clamped: true,
                fast_bytes: 1 << 30,
            }),
            Event::TenantAdmit(TenantAdmit {
                broker: 0,
                tenant: "stream".into(),
                lease: 12,
                size: 1 << 20,
                placement: vec![(NodeId(2), 1 << 20)],
                clamped: false,
                fast_bytes: 0,
            }),
            Event::QuotaClamp(QuotaClamp {
                broker: 0,
                tenant: "stream".into(),
                node: NodeId(4),
                requested: 2 << 30,
                allowed: 512 << 20,
            }),
            Event::ContentionStall(ContentionStall {
                broker: 2,
                tenant: "graph500".into(),
                node: NodeId(4),
                stall_ns: 125_000.5,
                sharers: 3,
            }),
            Event::LeaseExpired(LeaseExpired {
                broker: 0,
                tenant: "stream".into(),
                lease: 12,
                ttl_epochs: 5,
            }),
            Event::LeaseRevoked(LeaseRevoked {
                broker: 1,
                tenant: "graph500".into(),
                lease: 11,
                reason: "disconnect".into(),
            }),
            Event::TierDegraded(TierDegraded { broker: 0, kind: "hbm".into(), degraded: true }),
            Event::TierDegraded(TierDegraded { broker: 3, kind: "hbm".into(), degraded: false }),
            Event::RetryExhausted(RetryExhausted {
                tenant: "stream".into(),
                op: "alloc".into(),
                attempts: 4,
                last_error: "allocation stalled; retry".into(),
            }),
            Event::Reclaim(Reclaim {
                broker: 1,
                tenant: "graph500".into(),
                lease: 11,
                bytes: 3 << 30,
                placement: vec![(NodeId(4), 1 << 30), (NodeId(0), 2 << 30)],
                reason: "revoked".into(),
            }),
            Event::SpillForwarded(SpillForwarded {
                broker: 1,
                origin: 0,
                tenant: "graph500".into(),
                size: 2 << 30,
                fast_bytes: 2 << 30,
                cost_ns: 84_000.5,
            }),
            Event::DigestMerged(DigestMerged { broker: 0, peer: 1, epoch: 17, applied: true }),
            Event::DigestMerged(DigestMerged { broker: 1, peer: 0, epoch: 16, applied: false }),
            Event::BatchCoalesced(BatchCoalesced {
                broker: 0,
                shard: 2,
                tenant: "stream".into(),
                merged: 4,
                bytes: 2 << 30,
            }),
            Event::ShardSteal(ShardSteal { broker: 1, thief: 0, victim: 3, stolen: 7 }),
            Event::SampleRateChanged(SampleRateChanged {
                broker: 0,
                tenant: "interactive".into(),
                old_period: 65536,
                new_period: 4096,
            }),
            Event::HotPromoted(HotPromoted {
                broker: 2,
                tenant: "interactive".into(),
                region: 9,
                to: NodeId(4),
                bytes: 1 << 30,
                cost_ns: 42_000.25,
            }),
            Event::BudgetExhausted(BudgetExhausted {
                broker: 0,
                epoch: 12,
                spent_ns: 95_000.0,
                budget_ns: 100_000.0,
                deferred: 3,
            }),
        ];
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let back = read_jsonl(&text).expect("roundtrip");
        assert_eq!(back, events);
        // Every variant exercised above must carry a kind from the
        // published list, and the encoded line must agree with kind().
        for e in &events {
            assert!(EVENT_KINDS.contains(&e.kind()), "{} missing from EVENT_KINDS", e.kind());
            assert!(
                e.to_json().contains(&format!("\"event\":\"{}\"", e.kind())),
                "kind() disagrees with to_json() for {e:?}"
            );
        }
    }

    #[test]
    fn event_kinds_list_has_no_duplicates() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in EVENT_KINDS {
            assert!(seen.insert(*kind), "duplicate event kind {kind:?}");
        }
        assert_eq!(EVENT_KINDS.len(), 23);
    }

    #[test]
    fn json_lines_are_single_lines() {
        let line = sample_decision().to_json();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buf").extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let w = JsonlWriter::new(Shared(buf.clone()));
        w.write_event(&sample_decision());
        w.write_event(&Event::AttrFallback(AttrFallback { requested: 6, used: 3 }));
        w.flush().expect("flush");
        let text = String::from_utf8(buf.lock().expect("buf").clone()).expect("utf8");
        let back = read_jsonl(&text).expect("parse");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], sample_decision());
    }

    #[test]
    fn jsonl_writer_flushes_tail_on_drop() {
        // Regression: a function that returns early (or unwinds)
        // without calling flush() must not lose the buffered tail —
        // JsonlWriter's Drop does a best-effort flush.
        let path =
            std::env::temp_dir().join(format!("hetmem_jsonl_drop_{}.jsonl", std::process::id()));
        fn write_and_return_early(path: &std::path::Path) {
            let w = JsonlWriter::new(std::io::BufWriter::with_capacity(
                1 << 20, // large enough that nothing auto-flushes
                std::fs::File::create(path).expect("create"),
            ));
            w.write_event(&Event::AttrFallback(AttrFallback { requested: 4, used: 2 }));
            w.write_event(&Event::AttrFallback(AttrFallback { requested: 6, used: 3 }));
            // No flush: the drop glue owns the tail.
        }
        write_and_return_early(&path);
        let text = std::fs::read_to_string(&path).expect("trace file");
        let events = read_jsonl(&text).expect("parses");
        assert_eq!(events.len(), 2, "tail lost on early return");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn attr_names_roundtrip() {
        for id in 0..12u32 {
            assert_eq!(attr_id(&attr_name(id)).expect("roundtrip"), id);
        }
    }
}
