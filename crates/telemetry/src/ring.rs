//! Wait-free SPSC race buffer — the storage layer under
//! [`crate::TelemetrySink`].
//!
//! One ring has exactly one producer (the thread that owns the
//! [`crate::ThreadWriter`]) and any number of non-coordinating
//! observers (collectors). The protocol is the race buffer verified in
//! ekotrace's `RaceBuffer.tla` model, generalized from double-cell
//! entries to N-cell frames:
//!
//! * Storage is a power-of-two array of `AtomicU64` cells addressed by
//!   an unwrapped 64-bit sequence number (`cell = seqn % capacity`).
//! * The **two-word write cursor**: `write_seqn` is the sequence
//!   number of the next cell the writer will publish; `overwrite_seqn`
//!   is the sequence number of the oldest cell that is still safe to
//!   read. Both only ever grow.
//! * An entry is a **prefix cell** (a header word carrying a magic tag
//!   and the payload byte length) followed by the payload cells. The
//!   writer never blocks: when the ring is full it advances
//!   `overwrite_seqn` past whole victim entries *first* (with a
//!   release fence), then clobbers their cells, then publishes
//!   `write_seqn`.
//! * Reads are **overwrite-tolerant**: a collector snapshots the cell
//!   range `[max(read_seqn, overwrite_seqn), write_seqn)`, re-reads
//!   `overwrite_seqn` behind an acquire fence, and discards every
//!   snapshot entry the writer may have raced — any entry below the
//!   post-read overwrite cursor. A torn cell can therefore be *copied*
//!   but never *decoded*: cells are plain `u64`s, so the race is a
//!   stale value, not undefined behavior, and the post-check filters
//!   it out.
//!
//! Loss accounting is exact because the writer publishes a
//! monotonically increasing `written` entry count: once a producer is
//! quiescent, `written - decoded` over a fully drained ring is
//! precisely the number of entries the writer overwrote before any
//! collector decoded them.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Magic tag in the top 16 bits of every prefix (header) cell, so a
/// collector can assert it is frame-aligned.
const HEADER_MAGIC: u64 = 0x7E1E << 48;
const HEADER_MAGIC_MASK: u64 = 0xFFFF << 48;
/// Payload byte length lives in the low 32 bits of the header.
const HEADER_LEN_MASK: u64 = 0xFFFF_FFFF;

/// Packs a prefix cell for a payload of `len` bytes.
fn header(len: usize) -> u64 {
    HEADER_MAGIC | len as u64
}

/// Payload cell count for a header word.
fn payload_words(header: u64) -> u64 {
    (header & HEADER_LEN_MASK).div_ceil(8)
}

/// One wait-free SPSC ring. The owning [`crate::ThreadWriter`] is the
/// single producer; collectors are pure observers and never write.
pub(crate) struct Ring {
    cells: Box<[AtomicU64]>,
    mask: u64,
    /// Next sequence number the writer will publish (entry-aligned).
    write_seqn: AtomicU64,
    /// Oldest sequence number still safe to read (entry-aligned).
    overwrite_seqn: AtomicU64,
    /// Entries successfully written, published by the producer.
    written: AtomicU64,
    /// Entries rejected because their frame exceeds the ring capacity.
    oversize: AtomicU64,
    /// Label of the producing thread (registration order in the sink).
    thread: u64,
}

impl Ring {
    /// A ring of `capacity_words` cells (rounded up to a power of
    /// two, minimum 8).
    pub(crate) fn new(capacity_words: usize, thread: u64) -> Ring {
        let cap = capacity_words.next_power_of_two().max(8);
        Ring {
            cells: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as u64 - 1,
            write_seqn: AtomicU64::new(0),
            overwrite_seqn: AtomicU64::new(0),
            written: AtomicU64::new(0),
            oversize: AtomicU64::new(0),
            thread,
        }
    }

    pub(crate) fn capacity(&self) -> u64 {
        self.mask + 1
    }

    pub(crate) fn thread(&self) -> u64 {
        self.thread
    }

    /// Entries the producer has published so far.
    pub(crate) fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Entries rejected as larger than the whole ring.
    pub(crate) fn oversize(&self) -> u64 {
        self.oversize.load(Ordering::Relaxed)
    }

    /// Producer side: appends one frame (prefix cell + payload cells),
    /// overwriting the oldest entries if the ring is full. Returns
    /// `false` only when the frame cannot fit the ring at all.
    ///
    /// # Safety contract
    /// Must only be called from the single producer thread (enforced
    /// by [`crate::ThreadWriter`] being neither `Sync` nor `Clone`).
    pub(crate) fn push(&self, payload: &[u8]) -> bool {
        let words = payload.len().div_ceil(8) as u64;
        let total = 1 + words;
        if total > self.capacity() {
            // Count and drop: an entry that cannot fit even an empty
            // ring would deadlock the cursor walk below.
            self.oversize.store(self.oversize.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
            return false;
        }
        let wseq = self.write_seqn.load(Ordering::Relaxed);
        let need = wseq + total;
        let mut oseq = self.overwrite_seqn.load(Ordering::Relaxed);
        if need - oseq > self.capacity() {
            // Free whole victim entries before clobbering any cell.
            // Only the producer ever stored these headers, so plain
            // relaxed loads read back exactly what it wrote.
            while need - oseq > self.capacity() {
                let victim = self.cells[(oseq & self.mask) as usize].load(Ordering::Relaxed);
                debug_assert_eq!(victim & HEADER_MAGIC_MASK, HEADER_MAGIC, "misaligned victim");
                oseq += 1 + payload_words(victim);
            }
            self.overwrite_seqn.store(oseq, Ordering::Relaxed);
            // Order the cursor store before the cell stores below: a
            // reader that observes a clobbered cell (relaxed load)
            // and then runs its acquire fence is guaranteed to see
            // this advanced cursor and discard the entry.
            fence(Ordering::Release);
        }
        self.cells[(wseq & self.mask) as usize].store(header(payload.len()), Ordering::Relaxed);
        for (i, chunk) in payload.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.cells[((wseq + 1 + i as u64) & self.mask) as usize]
                .store(u64::from_le_bytes(word), Ordering::Relaxed);
        }
        // Publish the whole frame; pairs with the collector's acquire
        // load of `write_seqn`.
        self.write_seqn.store(need, Ordering::Release);
        self.written.store(self.written.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        true
    }

    /// Observer side: drains every decodable frame published since
    /// `read_seqn`, invoking `on_frame` with each payload (oldest
    /// first). Returns `(next_read_seqn, frames_decoded)`.
    ///
    /// Tolerates concurrent overwrites: frames the producer raced are
    /// skipped, never mis-decoded.
    pub(crate) fn read_from(&self, read_seqn: u64, mut on_frame: impl FnMut(&[u8])) -> (u64, u64) {
        let wseq = self.write_seqn.load(Ordering::Acquire);
        if wseq == read_seqn {
            return (read_seqn, 0);
        }
        let pre = self.overwrite_seqn.load(Ordering::Relaxed);
        let start = read_seqn.max(pre);
        let mut snap = Vec::with_capacity((wseq - start) as usize);
        for seqn in start..wseq {
            snap.push(self.cells[(seqn & self.mask) as usize].load(Ordering::Relaxed));
        }
        // Pairs with the producer's release fence: any cell above that
        // was clobbered mid-copy forces this re-read to observe the
        // advanced overwrite cursor, putting the torn frame below
        // `valid`.
        fence(Ordering::Acquire);
        let post = self.overwrite_seqn.load(Ordering::Relaxed);
        let valid = start.max(post);

        let mut decoded = 0u64;
        let mut seqn = valid;
        let mut bytes = Vec::new();
        while seqn < wseq {
            let head = snap[(seqn - start) as usize];
            debug_assert_eq!(head & HEADER_MAGIC_MASK, HEADER_MAGIC, "misaligned frame");
            if head & HEADER_MAGIC_MASK != HEADER_MAGIC {
                // A corrupted frame boundary would desynchronize the
                // walk; abandon the rest of this snapshot. (Unreached
                // under the protocol; belt and braces for release
                // builds.)
                break;
            }
            let len = (head & HEADER_LEN_MASK) as usize;
            let words = payload_words(head);
            debug_assert!(seqn + 1 + words <= wseq, "producer published a partial frame");
            bytes.clear();
            for w in 0..words {
                let idx = (seqn + 1 + w - start) as usize;
                bytes.extend_from_slice(&snap[idx].to_le_bytes());
            }
            bytes.truncate(len);
            on_frame(&bytes);
            decoded += 1;
            seqn += 1 + words;
        }
        (wseq, decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(ring: &Ring, read: &mut u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let (next, _) = ring.read_from(*read, |b| out.push(b.to_vec()));
        *read = next;
        out
    }

    #[test]
    fn roundtrips_in_order() {
        let ring = Ring::new(64, 0);
        for i in 0..10u8 {
            assert!(ring.push(&[i; 5]));
        }
        let mut read = 0;
        let got = drain(&ring, &mut read);
        assert_eq!(got.len(), 10);
        for (i, frame) in got.iter().enumerate() {
            assert_eq!(frame, &vec![i as u8; 5]);
        }
        assert!(drain(&ring, &mut read).is_empty());
        assert_eq!(ring.written(), 10);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = Ring::new(8, 0); // 8 cells; each 5-byte frame takes 2
        for i in 0..10u8 {
            assert!(ring.push(&[i; 5]));
        }
        let mut read = 0;
        let got = drain(&ring, &mut read);
        // Only the 4 newest frames fit; the 6 oldest were overwritten.
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], vec![6u8; 5]);
        assert_eq!(got[3], vec![9u8; 5]);
        assert_eq!(ring.written(), 10);
    }

    #[test]
    fn variable_length_frames_survive_wrapping() {
        let ring = Ring::new(16, 0);
        let mut read = 0;
        let mut decoded = 0u64;
        for round in 0..50u64 {
            for len in [0usize, 1, 7, 8, 9, 23] {
                let byte = (round as u8).wrapping_add(len as u8);
                ring.push(&vec![byte; len]);
            }
            let got = drain(&ring, &mut read);
            for frame in &got {
                if !frame.is_empty() {
                    assert!(frame.iter().all(|&b| b == frame[0]));
                }
            }
            decoded += got.len() as u64;
        }
        assert!(decoded > 0);
        assert!(decoded <= ring.written());
    }

    #[test]
    fn oversize_frames_are_counted_not_wedged() {
        let ring = Ring::new(8, 0);
        assert!(!ring.push(&[0u8; 1024]));
        assert_eq!(ring.oversize(), 1);
        assert!(ring.push(&[1u8; 4]));
        let mut read = 0;
        assert_eq!(drain(&ring, &mut read).len(), 1);
    }

    #[test]
    fn empty_payload_frames_work() {
        let ring = Ring::new(8, 0);
        for _ in 0..20 {
            assert!(ring.push(&[]));
        }
        let mut read = 0;
        let got = drain(&ring, &mut read);
        assert_eq!(got.len(), 8); // one cell per frame, ring holds 8
        assert!(got.iter().all(|f| f.is_empty()));
    }

    #[test]
    fn concurrent_overwrite_never_tears_frames() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let ring = Arc::new(Ring::new(64, 0));
        let stop = Arc::new(AtomicBool::new(false));
        let producer = {
            let ring = ring.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Frame content derives from its index so the
                    // reader can verify integrity.
                    let len = (n % 29) as usize;
                    ring.push(&vec![(n % 251) as u8; len]);
                    n += 1;
                }
                n
            })
        };
        let mut read = 0;
        let mut decoded = 0u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while std::time::Instant::now() < deadline {
            let (next, _) = ring.read_from(read, |frame| {
                // Every decoded frame must be internally consistent:
                // uniform fill byte (torn frames would mix two values).
                if !frame.is_empty() {
                    assert!(frame.iter().all(|&b| b == frame[0]), "torn frame decoded: {frame:?}");
                }
            });
            decoded += next.saturating_sub(read).min(1);
            read = next;
        }
        stop.store(true, Ordering::Relaxed);
        let written = producer.join().expect("producer");
        assert!(written > 0);
        assert!(decoded > 0, "reader decoded nothing in 200ms");
        // Final drain at quiescence: the remaining frames all decode.
        let (_, _) = ring.read_from(read, |_| {});
    }
}
