//! Minimal hand-rolled JSON, just enough for the trace format: object,
//! array, string, number, null. No external dependencies by design —
//! the trace schema is flat and fully under our control.
//!
//! Public because other crates reuse the same encoder for their own
//! line-oriented protocols (the `hetmem-service` wire format speaks
//! exactly this dialect); the trace schema itself stays defined by
//! [`crate::Event`].

use std::fmt::Write as _;

/// A parse error from the JSON reader or a schema mismatch while
/// decoding an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    /// A parse/schema error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> ParseError {
        ParseError { msg: msg.into() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

/// One JSON value. Objects keep field order (and allow duplicate
/// keys — first match wins on lookup), which keeps rendering
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// Any number; integers survive exactly below 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Shorthand for [`JsonValue::Num`].
    pub fn num(v: f64) -> JsonValue {
        JsonValue::Num(v)
    }

    /// Shorthand for [`JsonValue::Str`] from a borrowed string.
    pub fn str(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }

    /// Looks up `key` in an object; errors if `self` is not an object
    /// or the field is missing.
    pub fn get(&self, key: &str) -> Result<JsonValue, ParseError> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| ParseError::new(format!("missing field {key:?}"))),
            _ => Err(ParseError::new(format!("expected object looking up {key:?}"))),
        }
    }

    /// The value as an owned string; errors on any other type.
    pub fn string(&self) -> Result<String, ParseError> {
        match self {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(ParseError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as a number; errors on any other type.
    pub fn f64(&self) -> Result<f64, ParseError> {
        match self {
            JsonValue::Num(n) => Ok(*n),
            other => Err(ParseError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// Integers survive the f64 round-trip exactly below 2^53, far
    /// beyond any byte count or node id this repo models.
    pub fn u64(&self) -> Result<u64, ParseError> {
        let n = self.f64()?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(ParseError::new(format!("expected unsigned integer, got {n}")));
        }
        Ok(n as u64)
    }

    /// The value as an array slice; errors on any other type.
    pub fn array(&self) -> Result<&[JsonValue], ParseError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(ParseError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    // {:?} prints the shortest string that parses back
                    // to the same f64 — exact round-trip.
                    let _ = write!(out, "{n:?}");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document; rejects trailing data.
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ParseError::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::new(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(JsonValue::Null)
                } else {
                    Err(ParseError::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(ParseError::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(ParseError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(ParseError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(ParseError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(ParseError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(ParseError::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| ParseError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| ParseError::new("bad \\u escape"))?;
                            // Traces only escape control chars, so BMP
                            // scalars are all we ever emit.
                            let c = char::from_u32(code)
                                .ok_or_else(|| ParseError::new("bad \\u scalar"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(ParseError::new(format!(
                                "unknown escape {:?}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(ParseError::new("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| ParseError::new("bad UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::new("bad number"))?;
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| ParseError::new(format!("bad number {s:?}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,2.5,null],"b":{"c":"x\ny"},"d":-3}"#).unwrap();
        assert_eq!(v.get("d").unwrap().f64().unwrap(), -3.0);
        assert_eq!(v.get("a").unwrap().array().unwrap()[1].f64().unwrap(), 2.5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().string().unwrap(), "x\ny");
        assert!(matches!(v.get("a").unwrap().array().unwrap()[2], JsonValue::Null));
    }

    #[test]
    fn render_parse_roundtrip() {
        let v = JsonValue::Object(vec![
            ("s".into(), JsonValue::str("quote \" slash \\ tab\tümlaut")),
            ("n".into(), JsonValue::num(1.0e9 + 0.25)),
            ("i".into(), JsonValue::num((1u64 << 52) as f64)),
            ("z".into(), JsonValue::Null),
            ("a".into(), JsonValue::Array(vec![JsonValue::num(0.0), JsonValue::str("")])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn u64_rejects_fractions_and_negatives() {
        assert!(parse("1.5").unwrap().u64().is_err());
        assert!(parse("-2").unwrap().u64().is_err());
        assert_eq!(parse("9007199254740992").unwrap().u64().unwrap(), 1 << 53);
    }
}
