//! A VTune-style memory-access profiler for the simulator.
//!
//! §VI-B of the paper uses the Intel VTune Profiler's *Memory Access*
//! analysis to decide buffer sensitivity: the execution **summary**
//! (Table IV) says whether the application is DRAM-bound /
//! PMem-bound (latency) or bandwidth-bound, and the **per-object
//! view** (Fig. 7) ranks buffers by LLC misses and shows where they
//! were allocated. "We believe similar results could be obtained with
//! many other profiling tools" — this crate is that other tool.
//!
//! It consumes the deterministic [`PhaseReport`]s the simulator
//! produces and computes:
//!
//! * per-memory-kind **Bound %clockticks** — the share of execution
//!   time cores spend stalled on that kind of memory (latency stalls
//!   plus a calibrated share of bandwidth-saturated phases, matching
//!   VTune's cycles-with-pending-loads semantics);
//! * per-kind **Bandwidth Bound %elapsed** — the share of time during
//!   which that kind's achieved bandwidth exceeds a high-water
//!   threshold derived from the *platform's* fastest memory (this is
//!   why the paper's Table IV shows STREAM-on-NVDIMM as *not*
//!   bandwidth-bound: 10 GB/s is far below the platform's DRAM-class
//!   thresholds even though it saturates the device);
//! * the per-object table of Fig. 7 (loads, stores, LLC misses,
//!   average latency, allocation site), sorted by LLC misses;
//! * a sensitivity classification per run and per buffer, the input
//!   the paper feeds back into its heterogeneous allocator.

#![warn(missing_docs)]
use hetmem_memsim::{Machine, PhaseReport, RegionId};
use hetmem_topology::{MemoryKind, NodeId};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// A tracked memory object: a region plus its allocation site, like
/// VTune's "memory objects" (`xmalloc at bfs.rs:31`).
#[derive(Debug, Clone)]
pub struct MemoryObject {
    /// The simulator region.
    pub region: RegionId,
    /// Allocation-site label shown in reports.
    pub site: String,
    /// Object size in bytes.
    pub size: u64,
    /// Placement snapshot taken at tracking time (objects may be freed
    /// before the report is rendered).
    pub placement: Vec<(NodeId, u64)>,
}

/// What a run (or a buffer) is most sensitive to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sensitivity {
    /// Dominated by memory latency (graph traversal, pointer chasing).
    Latency,
    /// Dominated by memory bandwidth (streaming kernels).
    Bandwidth,
    /// Not memory-bound.
    Compute,
}

impl std::fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sensitivity::Latency => write!(f, "latency"),
            Sensitivity::Bandwidth => write!(f, "bandwidth"),
            Sensitivity::Compute => write!(f, "compute"),
        }
    }
}

/// The Table IV-style execution summary.
#[derive(Debug, Clone)]
pub struct BoundnessSummary {
    /// Total profiled time, ns.
    pub total_ns: f64,
    /// Per-kind Bound %clockticks (VTune's "DRAM Bound", "Persistent
    /// Memory Bound").
    pub bound_pct: BTreeMap<MemoryKind, f64>,
    /// Per-kind Bandwidth Bound %elapsed.
    pub bw_bound_pct: BTreeMap<MemoryKind, f64>,
    /// Indicators VTune would flag (metric names above threshold).
    pub flagged: Vec<String>,
    /// The run-level sensitivity classification.
    pub sensitivity: Sensitivity,
}

impl BoundnessSummary {
    /// Convenience accessor with 0.0 default.
    pub fn bound(&self, kind: MemoryKind) -> f64 {
        self.bound_pct.get(&kind).copied().unwrap_or(0.0)
    }

    /// Convenience accessor with 0.0 default.
    pub fn bw_bound(&self, kind: MemoryKind) -> f64 {
        self.bw_bound_pct.get(&kind).copied().unwrap_or(0.0)
    }
}

/// One row of the Fig. 7 per-object view.
#[derive(Debug, Clone)]
pub struct ObjectProfile {
    /// Allocation-site label.
    pub site: String,
    /// Object size, bytes.
    pub size: u64,
    /// Demand loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// LLC misses — "important here because it is the last and
    /// longest-latency \[level\] before main memory".
    pub llc_misses: u64,
    /// Average memory latency observed, ns.
    pub avg_latency_ns: f64,
    /// Core-stall time attributed to this object, ns.
    pub stall_ns: f64,
    /// Which kinds of memory backed it (bytes per kind).
    pub kinds: BTreeMap<MemoryKind, u64>,
    /// The object's inferred sensitivity.
    pub sensitivity: Sensitivity,
}

/// Thresholds mirroring VTune's indicator logic.
const BOUND_FLAG_PCT: f64 = 20.0;
const BW_FLAG_PCT: f64 = 30.0;
/// A kind counts as "high bandwidth utilization" when its achieved
/// bandwidth exceeds this fraction of the platform's fastest memory.
const HIGH_BW_FRACTION: f64 = 0.5;
/// Share of a bandwidth-saturated phase that cores spend with pending
/// memory requests (calibrated against Table IV's 63.3% for STREAM).
const BW_STALL_SHARE: f64 = 0.65;

/// The profiler: registers objects, records phases, renders reports.
pub struct Profiler {
    machine: Arc<Machine>,
    objects: Vec<MemoryObject>,
    phases: Vec<PhaseReport>,
}

impl Profiler {
    /// Creates a profiler for a machine.
    pub fn new(machine: Arc<Machine>) -> Self {
        Profiler { machine, objects: Vec::new(), phases: Vec::new() }
    }

    /// Registers a memory object (call at allocation time, while the
    /// region is live — its placement is snapshotted here).
    pub fn track(
        &mut self,
        mm: &hetmem_memsim::MemoryManager,
        region: RegionId,
        site: &str,
        size: u64,
    ) {
        let placement = mm.region(region).map(|r| r.placement.clone()).unwrap_or_default();
        self.objects.push(MemoryObject { region, site: site.to_string(), size, placement });
    }

    /// Records a completed phase.
    pub fn record(&mut self, report: PhaseReport) {
        self.phases.push(report);
    }

    /// Recorded phases.
    pub fn phases(&self) -> &[PhaseReport] {
        &self.phases
    }

    fn kind_of(&self, node: NodeId) -> MemoryKind {
        self.machine.topology().node_kind(node).unwrap_or(MemoryKind::Dram)
    }

    /// Computes the Table IV-style summary.
    pub fn summary(&self) -> BoundnessSummary {
        let total_ns: f64 = self.phases.iter().map(|p| p.time_ns).sum();
        let peak_platform_bw = self
            .machine
            .topology()
            .node_ids()
            .iter()
            .map(|&n| self.machine.timing(n).peak_read_bw_mbps)
            .fold(0.0f64, f64::max);

        let mut stall_by_kind: BTreeMap<MemoryKind, f64> = BTreeMap::new();
        let mut bw_stall_by_kind: BTreeMap<MemoryKind, f64> = BTreeMap::new();
        let mut bw_high_time: BTreeMap<MemoryKind, f64> = BTreeMap::new();

        for phase in &self.phases {
            // Latency stalls, attributed per kind.
            for buf in &phase.buffers {
                for &(node, stall) in &buf.stall_by_node {
                    *stall_by_kind.entry(self.kind_of(node)).or_insert(0.0) += stall;
                }
            }
            let core_time = phase.compute_ns + phase.stall_ns;
            let bw_dominated = core_time < 0.5 * phase.time_ns;
            for (&node, traffic) in &phase.per_node {
                let kind = self.kind_of(node);
                if bw_dominated {
                    // Streaming phases: cores wait for the saturated
                    // controller most of the time.
                    *bw_stall_by_kind.entry(kind).or_insert(0.0) +=
                        BW_STALL_SHARE * traffic.busy_ns;
                }
                // Platform-relative high-bandwidth detection (the VTune
                // semantics that makes NVDIMM streaming look *not*
                // bandwidth-bound in Table IV).
                if traffic.achieved_bw_mbps > HIGH_BW_FRACTION * peak_platform_bw {
                    *bw_high_time.entry(kind).or_insert(0.0) += phase.time_ns * traffic.utilization;
                }
            }
        }

        let mut bound_pct = BTreeMap::new();
        let mut bw_bound_pct = BTreeMap::new();
        if total_ns > 0.0 {
            let kinds: std::collections::BTreeSet<MemoryKind> = stall_by_kind
                .keys()
                .chain(bw_stall_by_kind.keys())
                .chain(bw_high_time.keys())
                .copied()
                .collect();
            for kind in kinds {
                let stall = stall_by_kind.get(&kind).copied().unwrap_or(0.0)
                    + bw_stall_by_kind.get(&kind).copied().unwrap_or(0.0);
                bound_pct.insert(kind, (100.0 * stall / total_ns).min(99.0));
                let hi = bw_high_time.get(&kind).copied().unwrap_or(0.0);
                bw_bound_pct.insert(kind, (100.0 * hi / total_ns).min(99.0));
            }
        }

        let mut flagged = Vec::new();
        for (&kind, &pct) in &bound_pct {
            if pct > BOUND_FLAG_PCT {
                flagged.push(format!("{kind} Bound"));
            }
        }
        for (&kind, &pct) in &bw_bound_pct {
            if pct > BW_FLAG_PCT {
                flagged.push(format!("{kind} Bandwidth Bound"));
            }
        }

        let any_bw = bw_bound_pct.values().any(|&p| p > BW_FLAG_PCT);
        let any_bound = bound_pct.values().any(|&p| p > BOUND_FLAG_PCT);
        let sensitivity = if any_bw {
            Sensitivity::Bandwidth
        } else if any_bound {
            Sensitivity::Latency
        } else {
            Sensitivity::Compute
        };

        BoundnessSummary { total_ns, bound_pct, bw_bound_pct, flagged, sensitivity }
    }

    /// Computes the Fig. 7-style per-object table, sorted by LLC
    /// misses (descending) — "the list of buffers ordered by
    /// importance".
    pub fn object_report(&self) -> Vec<ObjectProfile> {
        let mut rows: Vec<ObjectProfile> = self
            .objects
            .iter()
            .map(|obj| {
                let mut loads = 0;
                let mut stores = 0;
                let mut misses = 0;
                let mut stall = 0.0;
                let mut lat_weight = 0.0;
                let mut dependent_misses = 0u64;
                for phase in &self.phases {
                    for buf in &phase.buffers {
                        if buf.region == obj.region {
                            loads += buf.loads;
                            stores += buf.stores;
                            misses += buf.llc_misses;
                            stall += buf.stall_ns;
                            lat_weight += buf.avg_latency_ns * buf.llc_misses as f64;
                            if matches!(
                                buf.pattern,
                                hetmem_memsim::AccessPattern::Random
                                    | hetmem_memsim::AccessPattern::PointerChase
                            ) {
                                dependent_misses += buf.llc_misses;
                            }
                        }
                    }
                }
                let mut kinds = BTreeMap::new();
                for &(node, bytes) in &obj.placement {
                    *kinds.entry(self.kind_of(node)).or_insert(0) += bytes;
                }
                let traffic = (loads + stores) * hetmem_memsim::LINE;
                let sensitivity = classify_object(misses, dependent_misses, traffic, stores);
                ObjectProfile {
                    site: obj.site.clone(),
                    size: obj.size,
                    loads,
                    stores,
                    llc_misses: misses,
                    avg_latency_ns: if misses > 0 { lat_weight / misses as f64 } else { 0.0 },
                    stall_ns: stall,
                    kinds,
                    sensitivity,
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.llc_misses));
        rows
    }

    /// The Figure 6 output: per-allocation-site sensitivity advice,
    /// hottest first — "this sensitivity is exposed to the runtime as
    /// additional criteria in allocation requests".
    pub fn advise(&self) -> Vec<(String, Sensitivity)> {
        self.object_report().into_iter().map(|o| (o.site, o.sensitivity)).collect()
    }

    /// Renders the summary like VTune's text report (Table IV rows).
    pub fn render_summary(&self) -> String {
        let s = self.summary();
        let mut out = String::new();
        writeln!(out, "Memory Access analysis — elapsed {:.3} ms", s.total_ns / 1e6).unwrap();
        for (kind, pct) in &s.bound_pct {
            let flag = if s.flagged.iter().any(|f| f == &format!("{kind} Bound")) {
                "  <-- flagged"
            } else {
                ""
            };
            writeln!(out, "  {kind} Bound:            {pct:5.1}% of Clockticks{flag}").unwrap();
        }
        for (kind, pct) in &s.bw_bound_pct {
            let name = format!("{kind} Bandwidth Bound");
            let flag = if s.flagged.iter().any(|f| f == &name) { "  <-- flagged" } else { "" };
            writeln!(out, "  {name}:  {pct:5.1}% of Elapsed Time{flag}").unwrap();
        }
        writeln!(out, "  => application is {} sensitive", s.sensitivity).unwrap();
        out
    }

    /// Renders the Fig. 7 bandwidth timeline: one row per recorded
    /// phase, with read/write bandwidth bars (VTune draws read in
    /// turquoise and write stacked on top; we use '=' and '#').
    pub fn render_timeline(&self) -> String {
        const WIDTH: f64 = 50.0;
        let peak = self.phases.iter().map(|p| p.total_bw_mbps()).fold(0.0f64, f64::max).max(1.0);
        let mut out = String::new();
        writeln!(
            out,
            "{:<16} {:>10} {:>9} {:>9}  bandwidth (= read, # write)",
            "phase", "time ms", "rd GiB/s", "wr GiB/s"
        )
        .expect("string write");
        for phase in &self.phases {
            let secs = phase.time_ns / 1e9;
            let rd: f64 = phase
                .per_node
                .values()
                .map(|t| t.bytes_read as f64 / secs / (1u64 << 30) as f64)
                .sum();
            let wr: f64 = phase
                .per_node
                .values()
                .map(|t| t.bytes_written as f64 / secs / (1u64 << 30) as f64)
                .sum();
            let total_mbps = phase.total_bw_mbps();
            let bar_len = (total_mbps / peak * WIDTH) as usize;
            let rd_len =
                if rd + wr > 0.0 { ((rd / (rd + wr)) * bar_len as f64) as usize } else { 0 };
            let mut bar = "=".repeat(rd_len);
            bar.push_str(&"#".repeat(bar_len.saturating_sub(rd_len)));
            writeln!(
                out,
                "{:<16} {:>10.2} {:>9.2} {:>9.2}  |{bar}",
                phase.name,
                phase.time_ns / 1e6,
                rd,
                wr
            )
            .expect("string write");
        }
        out
    }

    /// Renders the VTune-style summary followed by the allocator's
    /// placement report from a telemetry trace — what the profiler
    /// *observed* next to what the allocator *decided*. Also flags
    /// tracked objects whose snapshotted placement disagrees with the
    /// trace's live-region reconstruction (a region that migrated after
    /// tracking, or a trace from a different run).
    pub fn render_with_trace(&self, trace: &hetmem_telemetry::Summary) -> String {
        let mut out = self.render_summary();
        out.push('\n');
        out.push_str(&trace.render());
        let mut stale: Vec<&str> = Vec::new();
        for obj in &self.objects {
            if let Some(live) = trace.live.get(&obj.region.0) {
                if live != &obj.placement {
                    stale.push(&obj.site);
                }
            }
        }
        if !stale.is_empty() {
            out.push_str(&format!(
                "note: {} object(s) moved since tracking: {}\n",
                stale.len(),
                stale.join(", ")
            ));
        }
        out
    }

    /// Renders the per-object view (Fig. 7).
    pub fn render_objects(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "{:<28} {:>12} {:>14} {:>14} {:>10} {:>12}  Placement",
            "Memory Object", "Size", "Loads", "LLC Miss Count", "Avg Lat", "Sensitivity"
        )
        .unwrap();
        for row in self.object_report() {
            let placement: Vec<String> =
                row.kinds.iter().map(|(k, b)| format!("{k}:{}MB", b / (1024 * 1024))).collect();
            writeln!(
                out,
                "{:<28} {:>12} {:>14} {:>14} {:>8.0}ns {:>12}  {}",
                row.site,
                row.size,
                row.loads,
                row.llc_misses,
                row.avg_latency_ns,
                row.sensitivity.to_string(),
                placement.join("+")
            )
            .unwrap();
        }
        out
    }
}

/// Per-object classification: objects whose misses come from
/// dependent/random access chains are latency-sensitive; objects with
/// heavy streamed traffic (reads *or* posted stores — a write-only
/// STREAM array never read-misses but is pure bandwidth) are
/// bandwidth-sensitive; objects that barely touch memory are not
/// memory-relevant.
fn classify_object(
    misses: u64,
    dependent_misses: u64,
    traffic_bytes: u64,
    stores: u64,
) -> Sensitivity {
    if traffic_bytes == 0 {
        return Sensitivity::Compute;
    }
    let lines = traffic_bytes / hetmem_memsim::LINE;
    if misses >= lines / 20 {
        if dependent_misses * 2 >= misses {
            Sensitivity::Latency
        } else {
            Sensitivity::Bandwidth
        }
    } else if stores >= lines / 2 {
        // Mostly-store object: posted writes stress bandwidth, not
        // load latency.
        Sensitivity::Bandwidth
    } else {
        Sensitivity::Compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use hetmem_memsim::{
        AccessEngine, AccessPattern, AllocPolicy, BufferAccess, MemoryManager, Phase,
    };
    use hetmem_topology::GIB;

    struct Setup {
        machine: Arc<Machine>,
        engine: AccessEngine,
        mm: MemoryManager,
        profiler: Profiler,
    }

    fn xeon() -> Setup {
        let machine = Arc::new(Machine::xeon_1lm_no_snc());
        Setup {
            machine: machine.clone(),
            engine: AccessEngine::new(machine.clone()),
            mm: MemoryManager::new(machine.clone()),
            profiler: Profiler::new(machine),
        }
    }

    fn stream_phase(region: hetmem_memsim::RegionId, bytes: u64) -> Phase {
        Phase {
            name: "triad".into(),
            accesses: vec![BufferAccess::new(
                region,
                bytes * 2 / 3,
                bytes / 3,
                AccessPattern::Sequential,
            )],
            threads: 20,
            initiator: "0-19".parse().unwrap(),
            compute_ns: 0.0,
        }
    }

    fn graph_phase(region: hetmem_memsim::RegionId, bytes: u64) -> Phase {
        Phase {
            name: "bfs".into(),
            accesses: vec![BufferAccess::new(region, bytes, 0, AccessPattern::Random)],
            threads: 16,
            initiator: "0-15".parse().unwrap(),
            compute_ns: 0.0,
        }
    }

    #[test]
    fn stream_on_dram_is_dram_bandwidth_bound() {
        let mut s = xeon();
        let size = 16 * GIB;
        let r = s.mm.alloc(size, AllocPolicy::Bind(hetmem_topology::NodeId(0))).unwrap();
        s.profiler.track(&s.mm, r, "stream arrays", size);
        let rep = s.engine.run_phase(&s.mm, &stream_phase(r, size));
        s.profiler.record(rep);
        let sum = s.profiler.summary();
        assert!(sum.bw_bound(MemoryKind::Dram) > 50.0, "{:?}", sum.bw_bound_pct);
        assert!(sum.bound(MemoryKind::Dram) > 30.0);
        assert_eq!(sum.bw_bound(MemoryKind::Nvdimm), 0.0);
        assert_eq!(sum.sensitivity, Sensitivity::Bandwidth);
        assert!(sum.flagged.iter().any(|f| f == "DRAM Bandwidth Bound"));
    }

    #[test]
    fn stream_on_nvdimm_not_bandwidth_flagged() {
        // Table IV's surprising row: STREAM on NVDIMM saturates the
        // device but VTune's platform-relative thresholds don't flag
        // bandwidth — the PMem *Bound* (stall) metric reacts instead.
        let mut s = xeon();
        let size = 16 * GIB;
        let r = s.mm.alloc(size, AllocPolicy::Bind(hetmem_topology::NodeId(2))).unwrap();
        s.profiler.track(&s.mm, r, "stream arrays", size);
        let rep = s.engine.run_phase(&s.mm, &stream_phase(r, size));
        s.profiler.record(rep);
        let sum = s.profiler.summary();
        assert!(
            sum.bw_bound(MemoryKind::Nvdimm) < 10.0,
            "platform-relative threshold should not flag NVDIMM bw: {:?}",
            sum.bw_bound_pct
        );
        assert!(sum.bound(MemoryKind::Nvdimm) > 30.0, "{:?}", sum.bound_pct);
    }

    #[test]
    fn graph_on_dram_is_latency_sensitive() {
        let mut s = xeon();
        let size = 8 * GIB;
        let r = s.mm.alloc(size, AllocPolicy::Bind(hetmem_topology::NodeId(0))).unwrap();
        s.profiler.track(&s.mm, r, "xmalloc at bfs.c:31", size);
        let rep = s.engine.run_phase(&s.mm, &graph_phase(r, size));
        s.profiler.record(rep);
        let sum = s.profiler.summary();
        assert!(sum.bound(MemoryKind::Dram) > BOUND_FLAG_PCT);
        assert!(sum.bw_bound(MemoryKind::Dram) < 20.0, "{:?}", sum.bw_bound_pct);
        assert_eq!(sum.sensitivity, Sensitivity::Latency);
    }

    #[test]
    fn graph_on_nvdimm_flags_pmem_bound() {
        let mut s = xeon();
        let size = 8 * GIB;
        let r = s.mm.alloc(size, AllocPolicy::Bind(hetmem_topology::NodeId(2))).unwrap();
        s.profiler.track(&s.mm, r, "xmalloc at bfs.c:31", size);
        let rep = s.engine.run_phase(&s.mm, &graph_phase(r, size));
        s.profiler.record(rep);
        let sum = s.profiler.summary();
        assert!(sum.bound(MemoryKind::Nvdimm) > BOUND_FLAG_PCT);
        assert!(sum.flagged.iter().any(|f| f == "NVDIMM Bound"));
        assert_eq!(sum.sensitivity, Sensitivity::Latency);
    }

    #[test]
    fn object_report_ranks_by_misses_and_classifies() {
        let mut s = xeon();
        let big = 8 * GIB;
        let small = GIB;
        let graph = s.mm.alloc(big, AllocPolicy::Bind(hetmem_topology::NodeId(0))).unwrap();
        let stream = s.mm.alloc(small, AllocPolicy::Bind(hetmem_topology::NodeId(0))).unwrap();
        s.profiler.track(&s.mm, graph, "xmalloc at bfs.c:31", big);
        s.profiler.track(&s.mm, stream, "stream.c:120", small);
        let phase = Phase {
            name: "mixed".into(),
            accesses: vec![
                BufferAccess::new(graph, big, 0, AccessPattern::PointerChase),
                BufferAccess::new(stream, small / 2, small / 2, AccessPattern::Sequential),
            ],
            threads: 16,
            initiator: "0-15".parse().unwrap(),
            compute_ns: 0.0,
        };
        let rep = s.engine.run_phase(&s.mm, &phase);
        s.profiler.record(rep);
        let rows = s.profiler.object_report();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].site, "xmalloc at bfs.c:31"); // most misses first
        assert_eq!(rows[0].sensitivity, Sensitivity::Latency);
        assert_eq!(rows[1].sensitivity, Sensitivity::Bandwidth);
        assert!(rows[0].kinds.contains_key(&MemoryKind::Dram));
    }

    #[test]
    fn renders_contain_landmarks() {
        let mut s = xeon();
        let size = 4 * GIB;
        let r = s.mm.alloc(size, AllocPolicy::Bind(hetmem_topology::NodeId(0))).unwrap();
        s.profiler.track(&s.mm, r, "xmalloc at bfs.c:31", size);
        let rep = s.engine.run_phase(&s.mm, &graph_phase(r, size));
        s.profiler.record(rep);
        let summary = s.profiler.render_summary();
        assert!(summary.contains("DRAM Bound"));
        assert!(summary.contains("flagged"));
        let objects = s.profiler.render_objects();
        assert!(objects.contains("xmalloc at bfs.c:31"));
        assert!(objects.contains("LLC Miss Count"));
    }

    #[test]
    fn timeline_renders_phases_with_bars() {
        let mut s = xeon();
        let size = 8 * GIB;
        let r = s.mm.alloc(size, AllocPolicy::Bind(hetmem_topology::NodeId(0))).unwrap();
        s.profiler.track(&s.mm, r, "arrays", size);
        for _ in 0..3 {
            let rep = s.engine.run_phase(&s.mm, &stream_phase(r, size));
            s.profiler.record(rep);
        }
        let tl = s.profiler.render_timeline();
        assert_eq!(tl.lines().count(), 4); // header + 3 phases
        assert!(tl.contains("triad"));
        // Triad is 2 reads : 1 write — both bar glyphs present.
        assert!(tl.contains('=') && tl.contains('#'));
        // The bars are equal for equal phases.
        let bars: Vec<&str> = tl.lines().skip(1).map(|l| l.split('|').nth(1).unwrap()).collect();
        assert_eq!(bars[0], bars[1]);
    }

    #[test]
    fn empty_profile_is_compute_bound() {
        let s = xeon();
        let sum = s.profiler.summary();
        assert_eq!(sum.sensitivity, Sensitivity::Compute);
        assert!(sum.flagged.is_empty());
        assert_eq!(sum.total_ns, 0.0);
        let _ = s.machine; // keep machine alive for clarity
    }
}
