//! Per-node hardware timing parameters.

/// Timing model of one NUMA node's memory device(s).
///
/// Two families of values coexist deliberately:
///
/// * the **datasheet** values (`hmat_latency_ns`, `hmat_bandwidth_mbps`)
///   that firmware would advertise in the ACPI HMAT — e.g. 26 ns /
///   131072 MB/s for local DRAM in the paper's Fig. 5;
/// * the **behavioural** values (everything else) that drive the
///   simulation — e.g. the ~81 ns idle / ~285 ns loaded latency and
///   ~75 GB/s triad the paper quotes from benchmarking (§IV-A2,
///   van Renen et al. for NVDIMMs).
///
/// The gap between the two is a point the paper makes: HMAT values are
/// theoretical, benchmarks measure reality, but *both are sufficient to
/// rank memories*.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTiming {
    /// Unloaded read latency in ns.
    pub idle_read_lat_ns: f64,
    /// Unloaded write latency in ns.
    pub idle_write_lat_ns: f64,
    /// Latency multiplier when the device is fully utilized; effective
    /// latency interpolates linearly with utilization.
    pub loaded_lat_factor: f64,
    /// Peak read bandwidth in MiB/s, all threads combined.
    pub peak_read_bw_mbps: f64,
    /// Peak write bandwidth in MiB/s.
    pub peak_write_bw_mbps: f64,
    /// Bandwidth one thread can extract, MiB/s (limits small runs).
    pub per_thread_bw_mbps: f64,
    /// Optane AIT-cache coverage: when a phase's footprint on this node
    /// exceeds this many bytes, bandwidth degrades. `None` for DRAM/HBM.
    pub ait_window_bytes: Option<u64>,
    /// Bandwidth multiplier applied beyond the AIT window (0 < f ≤ 1).
    pub ait_degraded_factor: f64,
    /// Extra latency per access paid by the fraction of the footprint
    /// outside the AIT window (on-DIMM address-indirection cache
    /// misses), ns.
    pub ait_extra_lat_ns: f64,
    /// Datasheet access latency for the HMAT, ns.
    pub hmat_latency_ns: u32,
    /// Datasheet access bandwidth for the HMAT, MB/s.
    pub hmat_bandwidth_mbps: u32,
}

impl NodeTiming {
    /// Calibrated Xeon Cascade Lake DDR4-2933 (one socket, 6 channels).
    ///
    /// Datasheet 26 ns / 131072 MB/s per SNC half (Fig. 5); measured
    /// idle ≈ 81 ns, loaded ≈ 285 ns, triad ≈ 75 GB/s (§VI).
    pub fn xeon_dram() -> Self {
        NodeTiming {
            idle_read_lat_ns: 81.0,
            idle_write_lat_ns: 86.0,
            loaded_lat_factor: 285.0 / 81.0,
            peak_read_bw_mbps: 104_857.0, // 100 GiB/s
            peak_write_bw_mbps: 52_428.0, // 50 GiB/s
            per_thread_bw_mbps: 12_288.0, // 12 GiB/s
            ait_window_bytes: None,
            ait_degraded_factor: 1.0,
            ait_extra_lat_ns: 0.0,
            hmat_latency_ns: 26,
            hmat_bandwidth_mbps: 131_072,
        }
    }

    /// Calibrated Optane DC NVDIMM (one socket, 6 DIMMs, App Direct /
    /// 1LM). Measured ≈ 305 ns idle, 860 ns loaded (van Renen et al.,
    /// cited in §IV-A2); bandwidth collapses once the footprint
    /// outgrows the on-DIMM AIT cache coverage.
    pub fn xeon_nvdimm() -> Self {
        NodeTiming {
            idle_read_lat_ns: 305.0,
            idle_write_lat_ns: 94.0, // writes buffer in the controller
            loaded_lat_factor: 860.0 / 305.0,
            peak_read_bw_mbps: 46_080.0,  // 45 GiB/s
            peak_write_bw_mbps: 21_504.0, // 21 GiB/s
            per_thread_bw_mbps: 6_144.0,
            ait_window_bytes: Some(28 * 1024 * 1024 * 1024), // ~28 GiB
            ait_degraded_factor: 0.31,
            ait_extra_lat_ns: 1400.0,
            hmat_latency_ns: 77,
            hmat_bandwidth_mbps: 78_644,
        }
    }

    /// Calibrated KNL DDR4 (per SNC-4 cluster: 1/4 of ~90 GB/s).
    pub fn knl_dram() -> Self {
        NodeTiming {
            idle_read_lat_ns: 130.0,
            idle_write_lat_ns: 135.0,
            loaded_lat_factor: 1.8,
            peak_read_bw_mbps: 40_960.0, // 40 GiB/s per cluster
            peak_write_bw_mbps: 20_480.0,
            per_thread_bw_mbps: 4_096.0, // KNL cores are weak
            ait_window_bytes: None,
            ait_degraded_factor: 1.0,
            ait_extra_lat_ns: 0.0,
            hmat_latency_ns: 130,
            hmat_bandwidth_mbps: 23_040,
        }
    }

    /// Calibrated KNL MCDRAM (per SNC-4 cluster: 1/4 of ~350 GB/s).
    /// Slightly *worse* idle latency than DRAM — the paper notes the
    /// latencies are similar and that HBM wins on bandwidth only.
    pub fn knl_mcdram() -> Self {
        NodeTiming {
            idle_read_lat_ns: 140.0,
            idle_write_lat_ns: 145.0,
            loaded_lat_factor: 1.5,
            peak_read_bw_mbps: 122_880.0, // 120 GiB/s per cluster
            peak_write_bw_mbps: 61_440.0,
            per_thread_bw_mbps: 8_192.0,
            ait_window_bytes: None,
            ait_degraded_factor: 1.0,
            ait_extra_lat_ns: 0.0,
            hmat_latency_ns: 135,
            hmat_bandwidth_mbps: 89_600,
        }
    }

    /// Generic HBM2 stack (per stack).
    pub fn hbm2() -> Self {
        NodeTiming {
            idle_read_lat_ns: 110.0,
            idle_write_lat_ns: 115.0,
            loaded_lat_factor: 1.6,
            peak_read_bw_mbps: 262_144.0, // 256 GiB/s
            peak_write_bw_mbps: 131_072.0,
            per_thread_bw_mbps: 16_384.0,
            ait_window_bytes: None,
            ait_degraded_factor: 1.0,
            ait_extra_lat_ns: 0.0,
            // Datasheet latency close to DRAM's (Eq. 2: DRAM ≈ HBM),
            // well below NVDIMM's 77 ns.
            hmat_latency_ns: 30,
            hmat_bandwidth_mbps: 512_000,
        }
    }

    /// Network-attached memory: very high capacity, high latency,
    /// modest bandwidth (§II-C).
    pub fn network_attached() -> Self {
        NodeTiming {
            idle_read_lat_ns: 1_500.0,
            idle_write_lat_ns: 1_500.0,
            loaded_lat_factor: 2.0,
            peak_read_bw_mbps: 12_288.0,
            peak_write_bw_mbps: 12_288.0,
            per_thread_bw_mbps: 4_096.0,
            ait_window_bytes: None,
            ait_degraded_factor: 1.0,
            ait_extra_lat_ns: 0.0,
            hmat_latency_ns: 1_200,
            hmat_bandwidth_mbps: 12_288,
        }
    }

    /// GPU memory accessed from host cores over NVLink (§II-C).
    pub fn gpu_over_nvlink() -> Self {
        NodeTiming {
            idle_read_lat_ns: 600.0,
            idle_write_lat_ns: 600.0,
            loaded_lat_factor: 1.8,
            peak_read_bw_mbps: 61_440.0,
            peak_write_bw_mbps: 61_440.0,
            per_thread_bw_mbps: 8_192.0,
            ait_window_bytes: None,
            ait_degraded_factor: 1.0,
            ait_extra_lat_ns: 0.0,
            hmat_latency_ns: 500,
            hmat_bandwidth_mbps: 61_440,
        }
    }

    /// Effective read bandwidth for a phase: capped by thread count and
    /// degraded beyond the AIT window.
    pub fn effective_read_bw(&self, threads: usize, footprint_on_node: u64) -> f64 {
        self.effective_bw(self.peak_read_bw_mbps, threads, footprint_on_node)
    }

    /// Effective write bandwidth for a phase.
    pub fn effective_write_bw(&self, threads: usize, footprint_on_node: u64) -> f64 {
        self.effective_bw(self.peak_write_bw_mbps, threads, footprint_on_node)
    }

    fn effective_bw(&self, peak: f64, threads: usize, footprint: u64) -> f64 {
        let mut bw = peak.min(threads as f64 * self.per_thread_bw_mbps);
        if let Some(window) = self.ait_window_bytes {
            if footprint > window {
                // Transition to a degraded floor: once the footprint is
                // 2x the AIT coverage, nearly every access misses the
                // indirection cache and the device runs at its floor
                // rate (measured Optane behaviour: Table IIIa's 10.49
                // at 89 GiB barely drops further at 223 GiB).
                let t = ((footprint - window) as f64 / window as f64).min(1.0);
                bw *= 1.0 - t * (1.0 - self.ait_degraded_factor);
            }
        }
        bw
    }

    /// Read latency at a given utilization (0..=1).
    pub fn read_latency_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_read_lat_ns * (1.0 + (self.loaded_lat_factor - 1.0) * u)
    }

    /// Write latency at a given utilization (0..=1).
    pub fn write_latency_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_write_lat_ns * (1.0 + (self.loaded_lat_factor - 1.0) * u)
    }

    /// Extra average latency from AIT-cache misses for a footprint on
    /// this node: the uncovered fraction of accesses pays
    /// `ait_extra_lat_ns`.
    pub fn ait_latency_penalty(&self, footprint: u64) -> f64 {
        match self.ait_window_bytes {
            Some(window) if footprint > window => {
                let t = ((footprint - window) as f64 / window as f64).min(1.0);
                t * self.ait_extra_lat_ns
            }
            _ => 0.0,
        }
    }
}

/// Timing of a memory-side cache (KNL Cache mode, Xeon 2LM): the cache
/// device is itself an MCDRAM/DRAM with its own bandwidth and latency.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSideCacheTiming {
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Bandwidth served on hits, MiB/s.
    pub hit_bw_mbps: f64,
    /// Latency on hits, ns.
    pub hit_lat_ns: f64,
    /// Extra latency on misses (tag check + fill), ns.
    pub miss_penalty_ns: f64,
}

impl MemSideCacheTiming {
    /// KNL Cache mode: 16 GB MCDRAM in front of DRAM.
    pub fn knl_cache_mode() -> Self {
        MemSideCacheTiming {
            capacity: 16 * 1024 * 1024 * 1024,
            hit_bw_mbps: 350_000.0,
            hit_lat_ns: 140.0,
            miss_penalty_ns: 60.0,
        }
    }

    /// Xeon 2LM: 192 GB DRAM in front of NVDIMMs (per socket).
    pub fn xeon_2lm() -> Self {
        MemSideCacheTiming {
            capacity: 192 * 1024 * 1024 * 1024,
            hit_bw_mbps: 104_857.0,
            hit_lat_ns: 85.0,
            miss_penalty_ns: 40.0,
        }
    }

    /// Hit ratio for a working set: direct-mapped-ish capacity model —
    /// full hits while the footprint fits, proportional beyond.
    pub fn hit_ratio(&self, footprint: u64) -> f64 {
        if footprint == 0 {
            return 1.0;
        }
        (self.capacity as f64 / footprint as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cap_limits_bandwidth() {
        let t = NodeTiming::xeon_dram();
        let one = t.effective_read_bw(1, 0);
        let twenty = t.effective_read_bw(20, 0);
        assert_eq!(one, t.per_thread_bw_mbps);
        assert_eq!(twenty, t.peak_read_bw_mbps);
        assert!(twenty > one);
    }

    #[test]
    fn ait_window_degrades_bandwidth() {
        let t = NodeTiming::xeon_nvdimm();
        let small = t.effective_read_bw(20, 8 << 30);
        let large = t.effective_read_bw(20, 200 << 30);
        assert_eq!(small, t.peak_read_bw_mbps);
        assert!(large < small * 0.45, "large-footprint bw {large} should collapse vs {small}");
        // Transition region is monotone; beyond ~2x the window the
        // degraded floor is flat.
        let mid = t.effective_read_bw(20, 40 << 30);
        assert!(large < mid && mid < small);
        let very_large = t.effective_read_bw(20, 400 << 30);
        assert!((very_large - large).abs() < 1e-9, "floor should be flat");
    }

    #[test]
    fn dram_has_no_ait_effect() {
        let t = NodeTiming::xeon_dram();
        assert_eq!(t.effective_read_bw(20, 1 << 40), t.peak_read_bw_mbps);
    }

    #[test]
    fn loaded_latency_interpolates() {
        let t = NodeTiming::xeon_dram();
        assert!((t.read_latency_at(0.0) - 81.0).abs() < 1e-9);
        assert!((t.read_latency_at(1.0) - 285.0).abs() < 1e-6);
        let half = t.read_latency_at(0.5);
        assert!(half > 81.0 && half < 285.0);
        // Clamped outside [0,1].
        assert_eq!(t.read_latency_at(7.0), t.read_latency_at(1.0));
    }

    #[test]
    fn paper_orderings_hold() {
        // Eq. 1: HBM > DRAM > NVDIMM by bandwidth.
        assert!(
            NodeTiming::knl_mcdram().peak_read_bw_mbps > NodeTiming::knl_dram().peak_read_bw_mbps
        );
        assert!(
            NodeTiming::xeon_dram().peak_read_bw_mbps > NodeTiming::xeon_nvdimm().peak_read_bw_mbps
        );
        // Eq. 2: DRAM ≈ HBM ≪ NVDIMM by latency.
        let knl_gap = (NodeTiming::knl_mcdram().idle_read_lat_ns
            - NodeTiming::knl_dram().idle_read_lat_ns)
            .abs();
        assert!(knl_gap < 20.0);
        assert!(
            NodeTiming::xeon_nvdimm().idle_read_lat_ns
                > 2.0 * NodeTiming::xeon_dram().idle_read_lat_ns
        );
    }

    #[test]
    fn cache_hit_ratio_model() {
        let c = MemSideCacheTiming::knl_cache_mode();
        assert_eq!(c.hit_ratio(0), 1.0);
        assert_eq!(c.hit_ratio(8 << 30), 1.0);
        let r = c.hit_ratio(32 << 30);
        assert!((r - 0.5).abs() < 1e-9);
        assert!(c.hit_ratio(64 << 30) < r);
    }
}
