//! Analytic simulator of heterogeneous NUMA memory systems.
//!
//! The paper evaluates on two physical machines (a dual Xeon Cascade
//! Lake 6230 with Optane NVDIMMs and a Xeon Phi 7230 in SNC-4 Flat
//! mode). This crate replaces that hardware with a deterministic
//! analytic model — the substitution is sound because the paper's
//! claims are about *orderings and crossovers* (which memory is best
//! for which access pattern, where capacity forces fallback), not
//! absolute GB/s; see DESIGN.md §2.
//!
//! The pieces:
//!
//! * [`NodeTiming`] — per-NUMA-node hardware parameters: idle and
//!   loaded latency, peak read/write bandwidth, per-thread bandwidth
//!   cap, and the Optane *AIT-cache* footprint effect (device
//!   bandwidth collapses once the working set exceeds the on-DIMM
//!   address-indirection cache coverage — this reproduces the paper's
//!   Table IIa drop at 34 GB and Table IIIa NVDIMM 31.6 → 10.5 GB/s).
//! * [`Machine`] — a [`hetmem_topology::Topology`] plus timings plus
//!   datasheet (HMAT) values; constructors calibrated for the paper's
//!   machines.
//! * [`MemoryManager`] — capacity accounting and NUMA allocation
//!   policies (bind / preferred / interleave / local), page-granular,
//!   with Linux's preferred-fallback quirk (paper footnote 21) and
//!   migration with a realistic cost model.
//! * [`AccessEngine`] — costs *kernel phases*: given per-buffer access
//!   descriptors (bytes, pattern, concurrency) it computes phase time
//!   as the max of bandwidth terms (per node, shared) and latency
//!   terms (per access chain), with LLC filtering and loaded-latency
//!   inflation, and reports per-buffer/per-node counters that the
//!   profiler crate turns into VTune-style summaries.
//!
//! Everything is deterministic: no wall-clock timing anywhere.

#![warn(missing_docs)]
mod engine;
mod fault;
mod machine;
mod memory;
mod timing;

pub use engine::{
    AccessEngine, AccessPattern, BufferAccess, BufferStats, NodeTraffic, Phase, PhaseReport, LINE,
};
pub use fault::{Fault, FaultKind, FaultPlan, SplitMix64};
pub use machine::{AccessAdjust, Machine};
pub use memory::{
    AllocError, AllocPolicy, ManagerState, MemoryManager, MigrationReport, Region, RegionId,
    RegionState, RestoreError,
};
pub use timing::{MemSideCacheTiming, NodeTiming};

/// Simulated page size (4 KiB, like Linux).
pub const PAGE_SIZE: u64 = 4096;

/// Converts MiB/s and bytes to nanoseconds.
pub(crate) fn ns_for_bytes(bytes: f64, bw_mibps: f64) -> f64 {
    if bw_mibps <= 0.0 {
        return f64::INFINITY;
    }
    bytes * 1e9 / (bw_mibps * 1024.0 * 1024.0)
}
