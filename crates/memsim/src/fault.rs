//! Deterministic fault-injection plans for chaos harnesses.
//!
//! A [`FaultPlan`] is a pre-computed schedule of fault events pinned to
//! virtual *epochs* (the broker's batch clock — no wall time anywhere),
//! so the same plan replayed against the same workload produces
//! bit-identical results. Plans are either hand-built with
//! [`FaultPlan::inject`] or generated from a seed with
//! [`FaultPlan::seeded`], which draws epochs, victims and durations
//! from an inline [`SplitMix64`] stream.
//!
//! The plan itself has no side effects; a harness (the bench crate's
//! chaos load generator, a scenario script) reads [`FaultPlan::at`]
//! each epoch and applies the faults to whatever it is driving:
//! degrade a tier, kill a client, slow a client's renewals, or stall
//! the allocator.

use hetmem_topology::MemoryKind;

/// One kind of injected failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A memory tier degrades (device throttling, ECC storms, a
    /// firmware-reported health drop) for `epochs` epochs, then
    /// recovers. Placement should demote the tier to last resort, not
    /// hard-fail.
    TierDegraded {
        /// The degraded tier.
        kind: MemoryKind,
        /// Epochs until the tier recovers.
        epochs: u64,
    },
    /// Client number `victim` (modulo the population) dies without
    /// releasing anything: its connection drops and its renewals stop.
    ClientDrop {
        /// Index of the client to kill.
        victim: u64,
    },
    /// Client number `victim` stops renewing for `epochs` epochs (a GC
    /// pause, a network partition) but keeps running afterwards.
    SlowClient {
        /// Index of the client to slow.
        victim: u64,
        /// Epochs of silence.
        epochs: u64,
    },
    /// The broker refuses allocations for `epochs` epochs; clients are
    /// expected to ride it out with capped-backoff retries.
    AllocStall {
        /// Epochs of refusal.
        epochs: u64,
    },
}

impl FaultKind {
    /// Stable lowercase name of this fault kind (log and table labels).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::TierDegraded { .. } => "tier_degraded",
            FaultKind::ClientDrop { .. } => "client_drop",
            FaultKind::SlowClient { .. } => "slow_client",
            FaultKind::AllocStall { .. } => "alloc_stall",
        }
    }
}

/// One scheduled fault: `kind` fires when the harness clock reaches
/// `epoch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The epoch the fault fires at.
    pub epoch: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, sorted by epoch.
///
/// ```
/// use hetmem_memsim::{Fault, FaultKind, FaultPlan};
/// use hetmem_topology::MemoryKind;
/// let plan = FaultPlan::new()
///     .inject(3, FaultKind::TierDegraded { kind: MemoryKind::Hbm, epochs: 4 })
///     .inject(1, FaultKind::ClientDrop { victim: 2 });
/// assert_eq!(plan.len(), 2);
/// assert_eq!(plan.at(3).count(), 1);
/// assert_eq!(plan.at(2).count(), 0);
/// // Sorted by epoch regardless of insertion order.
/// assert_eq!(plan.faults()[0].epoch, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (a chaos run with no chaos).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds one fault at `epoch`, keeping the schedule sorted.
    pub fn inject(mut self, epoch: u64, kind: FaultKind) -> FaultPlan {
        let at = self.faults.partition_point(|f| f.epoch <= epoch);
        self.faults.insert(at, Fault { epoch, kind });
        self
    }

    /// Generates a plan from `seed` covering `epochs` ticks of a run
    /// with `clients` clients and the given vulnerable tiers. The same
    /// arguments always produce the same plan. Roughly one tier
    /// degradation per 60 epochs, one stall per 80, one client drop
    /// and one slow client per 4 clients — enough pressure to exercise
    /// every recovery path without drowning the workload.
    pub fn seeded(seed: u64, epochs: u64, clients: u64, tiers: &[MemoryKind]) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        let pick =
            |rng: &mut SplitMix64, span: u64| if span == 0 { 0 } else { rng.next_u64() % span };
        if !tiers.is_empty() {
            for _ in 0..(epochs / 60).max(1) {
                let kind = tiers[pick(&mut rng, tiers.len() as u64) as usize];
                let epoch = pick(&mut rng, epochs.saturating_sub(10).max(1));
                let dur = 4 + pick(&mut rng, 12);
                plan = plan.inject(epoch, FaultKind::TierDegraded { kind, epochs: dur });
            }
        }
        for _ in 0..(epochs / 80).max(1) {
            let epoch = pick(&mut rng, epochs.saturating_sub(8).max(1));
            let dur = 1 + pick(&mut rng, 3);
            plan = plan.inject(epoch, FaultKind::AllocStall { epochs: dur });
        }
        if clients > 0 {
            for _ in 0..(clients / 4).max(1) {
                let epoch = pick(&mut rng, epochs.max(1));
                plan =
                    plan.inject(epoch, FaultKind::ClientDrop { victim: rng.next_u64() % clients });
            }
            for _ in 0..(clients / 4).max(1) {
                let epoch = pick(&mut rng, epochs.max(1));
                let dur = 4 + pick(&mut rng, 12);
                plan = plan.inject(
                    epoch,
                    FaultKind::SlowClient { victim: rng.next_u64() % clients, epochs: dur },
                );
            }
        }
        plan
    }

    /// The faults scheduled for exactly `epoch`.
    pub fn at(&self, epoch: u64) -> impl Iterator<Item = &Fault> {
        let start = self.faults.partition_point(|f| f.epoch < epoch);
        self.faults[start..].iter().take_while(move |f| f.epoch == epoch)
    }

    /// The full schedule, sorted by epoch.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The splitmix64 generator: tiny, seedable, and plenty for spreading
/// fault epochs around. Kept inline so fault plans need no external
/// RNG dependency.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_sorted() {
        let tiers = [MemoryKind::Hbm, MemoryKind::Dram];
        let a = FaultPlan::seeded(42, 240, 16, &tiers);
        let b = FaultPlan::seeded(42, 240, 16, &tiers);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.faults().windows(2).all(|w| w[0].epoch <= w[1].epoch), "sorted");
        let c = FaultPlan::seeded(43, 240, 16, &tiers);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn seeded_plans_cover_every_fault_kind() {
        let plan = FaultPlan::seeded(7, 480, 16, &[MemoryKind::Hbm]);
        for name in ["tier_degraded", "client_drop", "slow_client", "alloc_stall"] {
            assert!(
                plan.faults().iter().any(|f| f.kind.name() == name),
                "plan lacks {name}: {plan:?}"
            );
        }
    }

    #[test]
    fn at_returns_exactly_the_epochs_faults() {
        let plan = FaultPlan::new()
            .inject(5, FaultKind::AllocStall { epochs: 2 })
            .inject(5, FaultKind::ClientDrop { victim: 1 })
            .inject(9, FaultKind::SlowClient { victim: 0, epochs: 3 });
        assert_eq!(plan.at(5).count(), 2);
        assert_eq!(plan.at(9).count(), 1);
        assert_eq!(plan.at(0).count(), 0);
        assert_eq!(plan.at(10).count(), 0);
        // Victims and epochs survive the roundtrip.
        let drop = plan.at(5).find(|f| f.kind.name() == "client_drop").expect("drop");
        assert_eq!(drop.kind, FaultKind::ClientDrop { victim: 1 });
    }

    #[test]
    fn splitmix_streams_are_reproducible() {
        let mut a = SplitMix64::new(0xdead_beef);
        let mut b = SplitMix64::new(0xdead_beef);
        let draws: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(draws, (0..8).map(|_| b.next_u64()).collect::<Vec<u64>>());
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "not constant");
    }
}
