//! The phase cost engine.
//!
//! Applications are modelled as sequences of *kernel phases*: each
//! phase describes, per buffer, how many bytes are read/written and
//! with what pattern, plus thread count and pure-compute time. The
//! engine turns a phase into a deterministic time and a set of
//! counters:
//!
//! * a **bandwidth term** per NUMA node — traffic that lands on a node
//!   shares its (thread-capped, AIT-degraded, cache-filtered)
//!   bandwidth; nodes serve in parallel, so the phase's bandwidth
//!   floor is the busiest node;
//! * a **latency term** per buffer — demand misses divided by the
//!   memory-level parallelism the pattern allows (64-wide for
//!   prefetched streams, 1 for pointer chasing), at the node's
//!   *loaded* latency;
//! * a **TLB term** — random accesses to working sets far beyond TLB
//!   reach pay growing page-walk costs (this reproduces the gentle
//!   Graph500 TEPS decline at large scales in Table IIa).
//!
//! Phase time = max(bandwidth floor, compute + latency stalls): stalls
//! serialize with computation on the cores, streaming overlaps with it.

use crate::machine::Machine;
use crate::memory::{MemoryManager, RegionId};
use crate::ns_for_bytes;
use hetmem_bitmap::Bitmap;
use hetmem_telemetry as telemetry;
use hetmem_telemetry::TelemetrySink;
use hetmem_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cache line size used for miss accounting.
pub const LINE: u64 = 64;

/// TLB reach with transparent huge pages (entries × 2 MiB).
const TLB_REACH_BYTES: f64 = 8.0 * 1024.0 * 1024.0 * 1024.0;
/// Page-walk cost factor (ns per doubling beyond reach).
const TLB_WALK_NS_PER_DOUBLING: f64 = 16.0;

/// How a buffer is accessed during a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Streaming, prefetch-friendly (STREAM kernels).
    Sequential,
    /// Regular but non-unit stride; prefetch partially effective.
    Strided,
    /// Independent random accesses (hash tables, BFS frontiers).
    Random,
    /// Dependent random accesses — each load's address comes from the
    /// previous one (lmbench/multichase, linked structures).
    PointerChase,
}

impl AccessPattern {
    /// Memory-level parallelism per thread.
    pub fn mlp(self) -> f64 {
        match self {
            AccessPattern::Sequential => 64.0,
            AccessPattern::Strided => 16.0,
            AccessPattern::Random => 6.0,
            AccessPattern::PointerChase => 1.0,
        }
    }

    /// LLC miss ratio for a working set `ws` against `llc` bytes of
    /// last-level cache.
    pub fn llc_miss_ratio(self, ws: u64, llc: u64) -> f64 {
        if ws == 0 {
            return 0.0;
        }
        match self {
            AccessPattern::Sequential | AccessPattern::Strided => {
                // Streams have no reuse unless the whole set fits.
                if ws <= llc {
                    0.02
                } else {
                    1.0
                }
            }
            AccessPattern::Random | AccessPattern::PointerChase => {
                (1.0 - llc as f64 / ws as f64).clamp(0.02, 1.0)
            }
        }
    }

    /// Extra per-miss page-walk latency from TLB pressure.
    pub fn tlb_walk_ns(self, ws: u64) -> f64 {
        match self {
            // Streams are TLB-friendly (next-page prefetch).
            AccessPattern::Sequential | AccessPattern::Strided => 0.0,
            AccessPattern::Random | AccessPattern::PointerChase => {
                let ratio = ws as f64 / TLB_REACH_BYTES;
                if ratio <= 1.0 {
                    0.0
                } else {
                    TLB_WALK_NS_PER_DOUBLING * ratio.log2()
                }
            }
        }
    }
}

/// Access description for one buffer within a phase.
#[derive(Debug, Clone)]
pub struct BufferAccess {
    /// The region being accessed.
    pub region: RegionId,
    /// Line-granular bytes read by the kernel from this buffer.
    pub bytes_read: u64,
    /// Line-granular bytes written.
    pub bytes_written: u64,
    /// The access pattern.
    pub pattern: AccessPattern,
    /// Fraction of the region that is actually hot (working set =
    /// `region.size × hot_fraction`). 1.0 for whole-buffer kernels.
    pub hot_fraction: f64,
}

impl BufferAccess {
    /// Whole-buffer access with the given traffic.
    pub fn new(
        region: RegionId,
        bytes_read: u64,
        bytes_written: u64,
        pattern: AccessPattern,
    ) -> Self {
        BufferAccess { region, bytes_read, bytes_written, pattern, hot_fraction: 1.0 }
    }
}

/// One kernel phase.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Display name (shows up in profiler reports).
    pub name: String,
    /// Per-buffer accesses.
    pub accesses: Vec<BufferAccess>,
    /// Worker thread count.
    pub threads: usize,
    /// The cpuset the threads run on (determines LLC share).
    pub initiator: Bitmap,
    /// Pure compute time on the critical path, ns.
    pub compute_ns: f64,
}

impl Phase {
    /// The `idx`-th of `n` equal time slices of this phase.
    ///
    /// Traffic and compute are divided evenly, with byte remainders
    /// spread so the slices sum exactly to the whole phase. Working
    /// sets (`hot_fraction`), thread count and initiator are
    /// unchanged — slicing splits *time*, not the data. Slice names
    /// get a `#idx` suffix so per-slice reports stay tellable apart.
    pub fn interval_slice(&self, idx: usize, n: usize) -> Phase {
        assert!(n > 0, "cannot slice a phase into 0 intervals");
        assert!(idx < n, "slice index {idx} out of range for {n} intervals");
        let part = |total: u64| -> u64 {
            let (i, n) = (idx as u64, n as u64);
            total * (i + 1) / n - total * i / n
        };
        Phase {
            name: if n == 1 { self.name.clone() } else { format!("{}#{idx}", self.name) },
            accesses: self
                .accesses
                .iter()
                .map(|a| BufferAccess {
                    region: a.region,
                    bytes_read: part(a.bytes_read),
                    bytes_written: part(a.bytes_written),
                    pattern: a.pattern,
                    hot_fraction: a.hot_fraction,
                })
                .collect(),
            threads: self.threads,
            initiator: self.initiator.clone(),
            compute_ns: self.compute_ns / n as f64,
        }
    }
}

/// Traffic and utilization of one node during a phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeTraffic {
    /// Bytes read from the node's devices (post-LLC).
    pub bytes_read: u64,
    /// Bytes written to the node's devices.
    pub bytes_written: u64,
    /// Time the node's memory controller was busy, ns.
    pub busy_ns: f64,
    /// busy / phase time (0..=1).
    pub utilization: f64,
    /// Achieved bandwidth over the phase, MiB/s.
    pub achieved_bw_mbps: f64,
}

/// Per-buffer counters for a phase (feeds the profiler).
#[derive(Debug, Clone)]
pub struct BufferStats {
    /// The region.
    pub region: RegionId,
    /// Demand loads issued (line granular).
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// LLC miss ratio applied to this buffer's traffic.
    pub llc_miss_ratio: f64,
    /// The access pattern the kernel used on this buffer.
    pub pattern: AccessPattern,
    /// Average memory latency seen by this buffer's misses, ns.
    pub avg_latency_ns: f64,
    /// Core stall time attributable to this buffer, ns.
    pub stall_ns: f64,
    /// Stall time split per node backing the buffer.
    pub stall_by_node: Vec<(NodeId, f64)>,
}

/// The outcome of costing one phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// Total phase time, ns.
    pub time_ns: f64,
    /// Thread count it ran with.
    pub threads: usize,
    /// Pure compute on the critical path, ns.
    pub compute_ns: f64,
    /// Total latency stalls on the critical path, ns.
    pub stall_ns: f64,
    /// Per-node traffic.
    pub per_node: BTreeMap<NodeId, NodeTraffic>,
    /// Per-buffer counters.
    pub buffers: Vec<BufferStats>,
}

impl PhaseReport {
    /// Aggregate achieved bandwidth (all nodes), MiB/s.
    pub fn total_bw_mbps(&self) -> f64 {
        self.per_node.values().map(|t| t.achieved_bw_mbps).sum()
    }

    /// Total bytes moved to/from memory.
    pub fn total_bytes(&self) -> u64 {
        self.per_node.values().map(|t| t.bytes_read + t.bytes_written).sum()
    }
}

/// The phase cost engine for one machine.
#[derive(Clone)]
pub struct AccessEngine {
    machine: Arc<Machine>,
    sink: TelemetrySink,
}

impl std::fmt::Debug for AccessEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessEngine").field("machine", &self.machine).finish_non_exhaustive()
    }
}

impl AccessEngine {
    /// Creates an engine for `machine`.
    pub fn new(machine: Arc<Machine>) -> Self {
        AccessEngine { machine, sink: TelemetrySink::disabled() }
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Routes phase spans into `sink` (default: discard).
    pub fn set_sink(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Costs one phase against the current placements in `mm`.
    ///
    /// Panics if a `BufferAccess` references a freed region — that is a
    /// use-after-free in the simulated application.
    pub fn run_phase(&self, mm: &MemoryManager, phase: &Phase) -> PhaseReport {
        let llc = self.machine.llc_bytes(&phase.initiator);
        let threads = phase.threads.max(1);

        // Pass 1: post-LLC traffic per node and per buffer.
        struct Resolved {
            region: RegionId,
            pattern: AccessPattern,
            ws: u64,
            miss_ratio: f64,
            // (node, read bytes, write bytes) post-LLC
            split: Vec<(NodeId, u64, u64)>,
            loads: u64,
            stores: u64,
            misses: u64,
        }
        let mut resolved = Vec::with_capacity(phase.accesses.len());
        let mut node_read: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut node_write: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut node_footprint: BTreeMap<NodeId, u64> = BTreeMap::new();

        for acc in &phase.accesses {
            let region = mm
                .region(acc.region)
                .unwrap_or_else(|| panic!("access to freed region {:?}", acc.region));
            let ws = (region.size as f64 * acc.hot_fraction.clamp(0.0, 1.0)) as u64;
            let m = acc.pattern.llc_miss_ratio(ws, llc);
            let mem_read = (acc.bytes_read as f64 * m) as u64;
            let mem_write = (acc.bytes_written as f64 * m) as u64;
            let mut split = Vec::with_capacity(region.placement.len());
            for (node, bytes) in &region.placement {
                let frac = *bytes as f64 / region.size.max(1) as f64;
                split.push((
                    *node,
                    (mem_read as f64 * frac) as u64,
                    (mem_write as f64 * frac) as u64,
                ));
                *node_read.entry(*node).or_insert(0) += (mem_read as f64 * frac) as u64;
                *node_write.entry(*node).or_insert(0) += (mem_write as f64 * frac) as u64;
                *node_footprint.entry(*node).or_insert(0) +=
                    (*bytes as f64 * acc.hot_fraction) as u64;
            }
            resolved.push(Resolved {
                region: acc.region,
                pattern: acc.pattern,
                ws,
                miss_ratio: m,
                split,
                loads: acc.bytes_read / LINE,
                stores: acc.bytes_written / LINE,
                misses: mem_read / LINE,
            });
        }

        // Pass 2: per-node busy time (bandwidth term), with memory-side
        // cache filtering and remote-access penalties.
        let mut node_busy: BTreeMap<NodeId, f64> = BTreeMap::new();
        for (&node, &r) in &node_read {
            let w = node_write.get(&node).copied().unwrap_or(0);
            let fp = node_footprint.get(&node).copied().unwrap_or(0);
            let adjust = self.machine.access_adjust(&phase.initiator, node);
            node_busy.insert(node, self.node_busy_ns(node, r, w, fp, threads, adjust));
        }
        let bw_floor = node_busy.values().copied().fold(0.0f64, f64::max);

        // Pass 3: latency stalls, iterated twice so loaded latency uses
        // a consistent utilization estimate.
        let mut phase_time = bw_floor.max(phase.compute_ns).max(1.0);
        let mut stall_total = 0.0;
        let mut buffer_stats: Vec<BufferStats> = Vec::new();
        for _ in 0..2 {
            stall_total = 0.0;
            buffer_stats.clear();
            for res in &resolved {
                let mut stall_by_node = Vec::new();
                let mut lat_weighted = 0.0;
                let mut traffic_total = 0.0;
                for &(node, r, w) in &res.split {
                    let fp = node_footprint.get(&node).copied().unwrap_or(0);
                    let busy = node_busy.get(&node).copied().unwrap_or(0.0);
                    let util = (busy / phase_time).clamp(0.0, 1.0);
                    let adjust = self.machine.access_adjust(&phase.initiator, node);
                    let lat = self.node_latency_ns(node, util, fp)
                        + adjust.extra_lat_ns
                        + res.pattern.tlb_walk_ns(res.ws);
                    let misses_here = (r / LINE) as f64;
                    let chain = misses_here * lat / (threads as f64 * res.pattern.mlp());
                    stall_by_node.push((node, chain));
                    lat_weighted += lat * (r + w) as f64;
                    traffic_total += (r + w) as f64;
                }
                let stall: f64 = stall_by_node.iter().map(|(_, s)| s).sum();
                stall_total += stall;
                buffer_stats.push(BufferStats {
                    region: res.region,
                    loads: res.loads,
                    stores: res.stores,
                    llc_misses: res.misses,
                    llc_miss_ratio: res.miss_ratio,
                    pattern: res.pattern,
                    avg_latency_ns: if traffic_total > 0.0 {
                        lat_weighted / traffic_total
                    } else {
                        0.0
                    },
                    stall_ns: stall,
                    stall_by_node,
                });
            }
            phase_time = bw_floor.max(phase.compute_ns + stall_total).max(1.0);
        }

        // Final per-node traffic summary.
        let mut per_node = BTreeMap::new();
        for (&node, &busy) in &node_busy {
            let r = node_read.get(&node).copied().unwrap_or(0);
            let w = node_write.get(&node).copied().unwrap_or(0);
            per_node.insert(
                node,
                NodeTraffic {
                    bytes_read: r,
                    bytes_written: w,
                    busy_ns: busy,
                    utilization: (busy / phase_time).clamp(0.0, 1.0),
                    achieved_bw_mbps: (r + w) as f64 / (phase_time / 1e9) / (1024.0 * 1024.0),
                },
            );
        }

        let report = PhaseReport {
            name: phase.name.clone(),
            time_ns: phase_time,
            threads,
            compute_ns: phase.compute_ns,
            stall_ns: stall_total,
            per_node,
            buffers: buffer_stats,
        };
        if self.sink.enabled() {
            self.sink.emit(telemetry::Event::PhaseSpan(telemetry::PhaseSpan {
                name: report.name.clone(),
                time_ns: report.time_ns,
                threads: report.threads as u64,
                per_node: report
                    .per_node
                    .iter()
                    .map(|(&node, t)| telemetry::NodeTrafficSample {
                        node,
                        bytes_read: t.bytes_read,
                        bytes_written: t.bytes_written,
                        achieved_bw_mbps: t.achieved_bw_mbps,
                    })
                    .collect(),
            }));
        }
        report
    }

    /// Costs `phase` in `n` equal slices, invoking `between` after
    /// each slice with mutable access to the memory manager — the hook
    /// an online guidance policy uses to migrate regions *mid-phase*,
    /// so later slices are costed against the new placement.
    ///
    /// Returns the per-slice reports, in order. With `n == 1` (or 0,
    /// clamped) this degenerates to [`AccessEngine::run_phase`] plus
    /// one callback at the phase boundary.
    pub fn run_phase_sliced<F>(
        &self,
        mm: &mut MemoryManager,
        phase: &Phase,
        n: usize,
        mut between: F,
    ) -> Vec<PhaseReport>
    where
        F: FnMut(&mut MemoryManager, &PhaseReport, usize),
    {
        let n = n.max(1);
        let mut reports = Vec::with_capacity(n);
        for idx in 0..n {
            let slice = phase.interval_slice(idx, n);
            let report = self.run_phase(mm, &slice);
            between(mm, &report, idx);
            reports.push(report);
        }
        reports
    }

    /// Controller busy time for (r, w) bytes on a node, including
    /// memory-side cache filtering and the remote-access bandwidth cap.
    fn node_busy_ns(
        &self,
        node: NodeId,
        r: u64,
        w: u64,
        footprint: u64,
        threads: usize,
        adjust: crate::machine::AccessAdjust,
    ) -> f64 {
        let t = self.machine.timing(node);
        let f = adjust.bw_factor;
        match self.machine.cache_timing(node) {
            None => {
                ns_for_bytes(r as f64, t.effective_read_bw(threads, footprint) * f)
                    + ns_for_bytes(w as f64, t.effective_write_bw(threads, footprint) * f)
            }
            Some(cache) => {
                let h = cache.hit_ratio(footprint);
                let hit_bytes = (r + w) as f64 * h;
                let miss_r = r as f64 * (1.0 - h);
                let miss_w = w as f64 * (1.0 - h);
                ns_for_bytes(hit_bytes, cache.hit_bw_mbps * f)
                    + ns_for_bytes(miss_r, t.effective_read_bw(threads, footprint) * f)
                    + ns_for_bytes(miss_w, t.effective_write_bw(threads, footprint) * f)
            }
        }
    }

    /// Demand-read latency on a node at a utilization level, including
    /// memory-side cache effects.
    fn node_latency_ns(&self, node: NodeId, utilization: f64, footprint: u64) -> f64 {
        let t = self.machine.timing(node);
        let base = t.read_latency_at(utilization) + t.ait_latency_penalty(footprint);
        match self.machine.cache_timing(node) {
            None => base,
            Some(cache) => {
                let h = cache.hit_ratio(footprint);
                h * cache.hit_lat_ns + (1.0 - h) * (base + cache.miss_penalty_ns)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AllocPolicy;
    use hetmem_topology::GIB;

    fn setup() -> (AccessEngine, MemoryManager) {
        let machine = Arc::new(Machine::xeon_1lm_no_snc());
        (AccessEngine::new(machine.clone()), MemoryManager::new(machine))
    }

    fn knl_setup() -> (AccessEngine, MemoryManager) {
        let machine = Arc::new(Machine::knl_snc4_flat());
        (AccessEngine::new(machine.clone()), MemoryManager::new(machine))
    }

    fn stream_phase(region: RegionId, bytes: u64, threads: usize) -> Phase {
        Phase {
            name: "triad".into(),
            accesses: vec![BufferAccess::new(
                region,
                bytes * 2 / 3,
                bytes / 3,
                AccessPattern::Sequential,
            )],
            threads,
            initiator: "0-19".parse().unwrap(),
            compute_ns: 0.0,
        }
    }

    #[test]
    fn stream_dram_hits_calibrated_triad() {
        let (engine, mut mm) = setup();
        let size = 16 * GIB;
        let r = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let report = engine.run_phase(&mm, &stream_phase(r, size, 20));
        // Triad throughput = bytes / time; calibrated ≈ 75 GiB/s.
        let gibps = size as f64 / (report.time_ns / 1e9) / GIB as f64;
        assert!((70.0..80.0).contains(&gibps), "Xeon DRAM triad {gibps:.1} GiB/s");
    }

    #[test]
    fn stream_nvdimm_slower_and_footprint_sensitive() {
        let (engine, mut mm) = setup();
        let small = 20 * GIB;
        let r1 = mm.alloc(small, AllocPolicy::Bind(NodeId(2))).unwrap();
        let rep1 = engine.run_phase(&mm, &stream_phase(r1, small, 20));
        let small_gibps = small as f64 / (rep1.time_ns / 1e9) / GIB as f64;
        mm.free(r1);
        let large = 200 * GIB;
        let r2 = mm.alloc(large, AllocPolicy::Bind(NodeId(2))).unwrap();
        let rep2 = engine.run_phase(&mm, &stream_phase(r2, large, 20));
        let large_gibps = large as f64 / (rep2.time_ns / 1e9) / GIB as f64;
        // Paper Table IIIa: ~31.6 small, ~9.5 large.
        assert!((25.0..38.0).contains(&small_gibps), "NVDIMM small triad {small_gibps:.1}");
        assert!((7.0..14.0).contains(&large_gibps), "NVDIMM large triad {large_gibps:.1}");
        assert!(small_gibps > 2.0 * large_gibps);
    }

    #[test]
    fn knl_mcdram_beats_dram_on_bandwidth_only() {
        let (engine, mut mm) = knl_setup();
        let size = 3 * GIB;
        let cluster: Bitmap = "0-15".parse().unwrap();
        let mk_phase = |r| Phase {
            name: "triad".into(),
            accesses: vec![BufferAccess::new(r, size * 2 / 3, size / 3, AccessPattern::Sequential)],
            threads: 16,
            initiator: cluster.clone(),
            compute_ns: 0.0,
        };
        let dram = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let hbm = mm.alloc(size, AllocPolicy::Bind(NodeId(4))).unwrap();
        let t_dram = engine.run_phase(&mm, &mk_phase(dram)).time_ns;
        let t_hbm = engine.run_phase(&mm, &mk_phase(hbm)).time_ns;
        let sp = t_dram / t_hbm;
        assert!(sp > 2.5, "MCDRAM triad speedup {sp:.2} should be ~3x");

        // But for pointer chasing, DRAM is no worse (similar latency).
        let mk_chase = |r| Phase {
            name: "chase".into(),
            accesses: vec![BufferAccess::new(r, GIB, 0, AccessPattern::PointerChase)],
            threads: 16,
            initiator: cluster.clone(),
            compute_ns: 0.0,
        };
        let c_dram = engine.run_phase(&mm, &mk_chase(dram)).time_ns;
        let c_hbm = engine.run_phase(&mm, &mk_chase(hbm)).time_ns;
        let ratio = c_hbm / c_dram;
        assert!((0.9..1.3).contains(&ratio), "chase HBM/DRAM ratio {ratio:.2} ≈ 1");
    }

    #[test]
    fn pointer_chase_sees_idle_latency() {
        let (engine, mut mm) = setup();
        let size = GIB;
        let r = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let phase = Phase {
            name: "chase".into(),
            accesses: vec![BufferAccess::new(r, size, 0, AccessPattern::PointerChase)],
            threads: 1,
            initiator: "0".parse().unwrap(),
            compute_ns: 0.0,
        };
        let report = engine.run_phase(&mm, &phase);
        // 1 GiB / 64 B = 16M dependent misses; miss ratio ≈ 0.97 at
        // 1 GiB vs 27.5 MB LLC. Per-miss time ≈ idle latency (device
        // not bandwidth-stressed).
        let misses = report.buffers[0].llc_misses as f64;
        let per_miss = report.time_ns / misses;
        assert!((75.0..110.0).contains(&per_miss), "per-miss {per_miss:.0} ns ≈ idle DRAM latency");
    }

    #[test]
    fn nvdimm_chase_much_slower_than_dram() {
        let (engine, mut mm) = setup();
        let size = GIB;
        let d = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let n = mm.alloc(size, AllocPolicy::Bind(NodeId(2))).unwrap();
        let mk = |r| Phase {
            name: "chase".into(),
            accesses: vec![BufferAccess::new(r, size, 0, AccessPattern::PointerChase)],
            threads: 1,
            initiator: "0".parse().unwrap(),
            compute_ns: 0.0,
        };
        let td = engine.run_phase(&mm, &mk(d)).time_ns;
        let tn = engine.run_phase(&mm, &mk(n)).time_ns;
        let ratio = tn / td;
        assert!(ratio > 2.5, "NVDIMM/DRAM chase ratio {ratio:.2}");
    }

    #[test]
    fn split_region_bounded_by_slower_node() {
        let (engine, mut mm) = setup();
        // Half DRAM, half NVDIMM.
        let size = 32 * GIB;
        let id = mm.alloc(size, AllocPolicy::Interleave(vec![NodeId(0), NodeId(2)])).unwrap();
        let report = engine.run_phase(&mm, &stream_phase(id, size, 20));
        let gibps = size as f64 / (report.time_ns / 1e9) / GIB as f64;
        // Faster than pure NVDIMM (~31), slower than pure DRAM (~75).
        assert!((32.0..75.0).contains(&gibps), "hybrid triad {gibps:.1}");
        assert_eq!(report.per_node.len(), 2);
    }

    #[test]
    fn compute_overlaps_bandwidth_but_not_stalls() {
        let (engine, mut mm) = setup();
        let size = 8 * GIB;
        let r = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let mut phase = stream_phase(r, size, 20);
        let t0 = engine.run_phase(&mm, &phase).time_ns;
        phase.compute_ns = t0 * 0.5; // small compute hides under streaming
        let t1 = engine.run_phase(&mm, &phase).time_ns;
        assert!((t1 - t0).abs() / t0 < 1e-6, "hidden compute should not extend phase");
        phase.compute_ns = t0 * 3.0;
        let t2 = engine.run_phase(&mm, &phase).time_ns;
        assert!(t2 >= 2.9 * t0, "dominant compute should set the pace");
    }

    #[test]
    fn memory_side_cache_accelerates_fitting_sets() {
        let machine = Arc::new(Machine::knl_quadrant_cache());
        let engine = AccessEngine::new(machine.clone());
        let mut mm = MemoryManager::new(machine);
        let all: Bitmap = "0-63".parse().unwrap();
        let mk = |r, bytes| Phase {
            name: "triad".into(),
            accesses: vec![BufferAccess::new(
                r,
                bytes * 2 / 3,
                bytes / 3,
                AccessPattern::Sequential,
            )],
            threads: 64,
            initiator: all.clone(),
            compute_ns: 0.0,
        };
        let small = 8 * GIB; // fits the 16 GiB MCDRAM cache
        let r1 = mm.alloc(small, AllocPolicy::Bind(NodeId(0))).unwrap();
        let g_small =
            small as f64 / (engine.run_phase(&mm, &mk(r1, small)).time_ns / 1e9) / GIB as f64;
        mm.free(r1);
        let big = 64 * GIB; // 4× the cache
        let r2 = mm.alloc(big, AllocPolicy::Bind(NodeId(0))).unwrap();
        let g_big = big as f64 / (engine.run_phase(&mm, &mk(r2, big)).time_ns / 1e9) / GIB as f64;
        assert!(
            g_small > 1.5 * g_big,
            "cache-mode triad should degrade beyond cache capacity: {g_small:.1} vs {g_big:.1}"
        );
    }

    #[test]
    fn counters_are_consistent() {
        let (engine, mut mm) = setup();
        let size = 4 * GIB;
        let r = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let phase = Phase {
            name: "scan".into(),
            accesses: vec![BufferAccess::new(r, size, 0, AccessPattern::Sequential)],
            threads: 20,
            initiator: "0-19".parse().unwrap(),
            compute_ns: 0.0,
        };
        let rep = engine.run_phase(&mm, &phase);
        let b = &rep.buffers[0];
        assert_eq!(b.loads, size / LINE);
        assert_eq!(b.stores, 0);
        assert_eq!(b.llc_misses, size / LINE); // ws ≫ LLC ⇒ all miss
        let t = &rep.per_node[&NodeId(0)];
        assert_eq!(t.bytes_read, size);
        assert_eq!(t.bytes_written, 0);
        assert!(t.utilization > 0.9, "streaming should saturate the node");
    }

    #[test]
    fn small_working_set_stays_in_llc() {
        let (engine, mut mm) = setup();
        let size = 8 * 1024 * 1024; // 8 MiB < 27.5 MiB LLC
        let r = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let phase = Phase {
            name: "resident".into(),
            accesses: vec![BufferAccess::new(r, 100 * size, 0, AccessPattern::Random)],
            threads: 20,
            initiator: "0-19".parse().unwrap(),
            compute_ns: 0.0,
        };
        let rep = engine.run_phase(&mm, &phase);
        let b = &rep.buffers[0];
        assert!(
            (b.llc_misses as f64) < 0.05 * b.loads as f64,
            "resident set should mostly hit: {} misses / {} loads",
            b.llc_misses,
            b.loads
        );
    }

    #[test]
    fn tlb_pressure_grows_with_working_set() {
        let p = AccessPattern::Random;
        assert_eq!(p.tlb_walk_ns(GIB), 0.0);
        let w17 = p.tlb_walk_ns(17 * GIB);
        let w34 = p.tlb_walk_ns(34 * GIB);
        assert!(w17 > 0.0 && w34 > w17);
        assert_eq!(AccessPattern::Sequential.tlb_walk_ns(100 * GIB), 0.0);
    }

    #[test]
    fn slices_preserve_traffic_and_time() {
        let (engine, mut mm) = setup();
        let size = 8 * GIB;
        let r = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let mut phase = stream_phase(r, size + 12345 * LINE, 20);
        phase.compute_ns = 1e6;
        let whole = engine.run_phase(&mm, &phase);
        for n in [1usize, 3, 7, 16] {
            let slices = engine.run_phase_sliced(&mut mm, &phase, n, |_, _, _| {});
            assert_eq!(slices.len(), n);
            let bytes: u64 = slices.iter().map(|s| s.total_bytes()).sum();
            assert_eq!(bytes, whole.total_bytes(), "traffic lost slicing into {n}");
            let time: f64 = slices.iter().map(|s| s.time_ns).sum();
            let rel = (time - whole.time_ns).abs() / whole.time_ns;
            assert!(rel < 0.01, "sliced time drifted {rel:.4} at n={n}");
        }
    }

    #[test]
    fn slice_names_and_bounds() {
        let (_, mut mm) = setup();
        let r = mm.alloc(GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let phase = stream_phase(r, GIB, 20);
        assert_eq!(phase.interval_slice(0, 1).name, "triad");
        assert_eq!(phase.interval_slice(2, 4).name, "triad#2");
        assert!((phase.interval_slice(1, 4).compute_ns - phase.compute_ns / 4.0).abs() < 1e-12);
    }

    #[test]
    fn callback_migration_speeds_up_later_slices() {
        let (engine, mut mm) = knl_setup();
        let size = 3 * GIB;
        let r = mm.alloc(size, AllocPolicy::Bind(NodeId(0))).unwrap();
        let cluster: Bitmap = "0-15".parse().unwrap();
        let phase = Phase {
            name: "triad".into(),
            accesses: vec![BufferAccess::new(r, size * 2 / 3, size / 3, AccessPattern::Sequential)],
            threads: 16,
            initiator: cluster,
            compute_ns: 0.0,
        };
        let dram_only = engine.run_phase(&mm, &phase).time_ns;
        let slices = engine.run_phase_sliced(&mut mm, &phase, 4, |mm, _, idx| {
            if idx == 0 {
                mm.migrate(r, NodeId(4)).expect("fits MCDRAM");
            }
        });
        let total: f64 = slices.iter().map(|s| s.time_ns).sum();
        assert!(
            total < dram_only * 0.6,
            "mid-phase promotion should pay: sliced {total:.0} vs DRAM {dram_only:.0}"
        );
        assert!(slices[0].time_ns > 2.0 * slices[1].time_ns);
    }

    #[test]
    #[should_panic(expected = "freed region")]
    fn access_to_freed_region_panics() {
        let (engine, mut mm) = setup();
        let r = mm.alloc(GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        mm.free(r);
        let phase = Phase {
            name: "uaf".into(),
            accesses: vec![BufferAccess::new(r, GIB, 0, AccessPattern::Sequential)],
            threads: 1,
            initiator: "0".parse().unwrap(),
            compute_ns: 0.0,
        };
        let _ = engine.run_phase(&mm, &phase);
    }
}
