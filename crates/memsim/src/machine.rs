//! A simulated machine: topology + timing + firmware tables.

use crate::timing::{MemSideCacheTiming, NodeTiming};
use hetmem_bitmap::Bitmap;
use hetmem_hmat::{
    DataType, Hmat, MemProximityAttrs, MemorySideCacheInfo, Srat, SratMemoryAffinity,
    SratProcessorAffinity, SystemLocalityLatencyBandwidth,
};
use hetmem_topology::{platforms, MemoryKind, NodeId, ObjectType, Topology, GIB};
use std::collections::BTreeMap;

/// Latency/bandwidth adjustment for non-local accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessAdjust {
    /// Extra latency added per access, ns.
    pub extra_lat_ns: f64,
    /// Multiplier on the achievable bandwidth (0 < f ≤ 1).
    pub bw_factor: f64,
}

impl AccessAdjust {
    /// No adjustment: a local access.
    pub const LOCAL: AccessAdjust = AccessAdjust { extra_lat_ns: 0.0, bw_factor: 1.0 };
}

/// A complete simulated machine.
///
/// Owns the structural topology, the behavioural timing of every NUMA
/// node, optional memory-side cache timings, and per-node OS
/// reservations (memory the benchmark cannot allocate: kernel, runtime,
/// page tables — this is what makes the paper's Table III "blank"
/// cells reproducible as allocation failures).
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    topology: Topology,
    timings: BTreeMap<NodeId, NodeTiming>,
    cache_timings: BTreeMap<NodeId, MemSideCacheTiming>,
    os_reserved: BTreeMap<NodeId, u64>,
}

impl Machine {
    /// Builds a machine from parts. Every NUMA node in `topology` must
    /// have a timing entry.
    pub fn new(
        name: &str,
        topology: Topology,
        timings: BTreeMap<NodeId, NodeTiming>,
        cache_timings: BTreeMap<NodeId, MemSideCacheTiming>,
        os_reserved: BTreeMap<NodeId, u64>,
    ) -> Result<Self, String> {
        for node in topology.node_ids() {
            if !timings.contains_key(&node) {
                return Err(format!("missing timing for {node}"));
            }
        }
        Ok(Machine { name: name.to_string(), topology, timings, cache_timings, os_reserved })
    }

    /// Builds a machine by assigning one timing per memory kind, with no
    /// OS reservations — convenient for synthetic platforms.
    pub fn from_kinds(
        name: &str,
        topology: Topology,
        f: impl Fn(MemoryKind) -> NodeTiming,
    ) -> Self {
        let timings = topology
            .node_ids()
            .into_iter()
            .map(|n| (n, f(topology.node_kind(n).expect("node exists"))))
            .collect();
        Machine {
            name: name.to_string(),
            topology,
            timings,
            cache_timings: BTreeMap::new(),
            os_reserved: BTreeMap::new(),
        }
    }

    /// The paper's Xeon server (§VI): dual Cascade Lake 6230, SNC off,
    /// 192 GB DRAM + 768 GB NVDIMM per socket, 1-Level-Memory.
    pub fn xeon_1lm_no_snc() -> Self {
        let topo = platforms::xeon_1lm_no_snc();
        let mut m = Machine::from_kinds("xeon-6230-1lm", topo, |k| match k {
            MemoryKind::Dram => NodeTiming::xeon_dram(),
            MemoryKind::Nvdimm => NodeTiming::xeon_nvdimm(),
            other => unreachable!("no {other} on the Xeon platform"),
        });
        // Kernel + runtime keep ~8 GiB per DRAM node; DAX-kmem NVDIMM
        // nodes start empty.
        m.os_reserved.insert(NodeId(0), 8 * GIB);
        m.os_reserved.insert(NodeId(1), 8 * GIB);
        m
    }

    /// The Fig. 2 / Fig. 5 machine: same Xeon but with Sub-NUMA
    /// Clustering enabled (DRAM split in 96 GB halves).
    pub fn xeon_1lm_snc() -> Self {
        let topo = platforms::xeon_1lm();
        let mut m = Machine::from_kinds("xeon-6230-1lm-snc2", topo, |k| match k {
            MemoryKind::Dram => {
                // Half the channels per SNC: half the bandwidth.
                let mut t = NodeTiming::xeon_dram();
                t.peak_read_bw_mbps /= 2.0;
                t.peak_write_bw_mbps /= 2.0;
                t
            }
            MemoryKind::Nvdimm => NodeTiming::xeon_nvdimm(),
            other => unreachable!("no {other} on the Xeon platform"),
        });
        for n in [0u32, 1, 3, 4] {
            m.os_reserved.insert(NodeId(n), 4 * GIB);
        }
        m
    }

    /// The Xeon in 2-Level-Memory mode: DRAM is a memory-side cache.
    pub fn xeon_2lm() -> Self {
        let topo = platforms::xeon_2lm();
        let mut m = Machine::from_kinds("xeon-6230-2lm", topo, |k| match k {
            MemoryKind::Nvdimm => NodeTiming::xeon_nvdimm(),
            other => unreachable!("no {other} in 2LM mode"),
        });
        m.cache_timings.insert(NodeId(0), MemSideCacheTiming::xeon_2lm());
        m.cache_timings.insert(NodeId(1), MemSideCacheTiming::xeon_2lm());
        m.os_reserved.insert(NodeId(0), 8 * GIB);
        m
    }

    /// The paper's KNL server (§VI): Xeon Phi 7230 in SNC-4 Flat mode.
    ///
    /// The OS, MPI runtime and filesystem caches occupy a sizeable part
    /// of each 24 GB cluster DRAM node; we reserve 6.5 GiB, which makes
    /// the 17.9 GiB STREAM run fail on DRAM exactly as the blank cell
    /// in Table IIIb reports (see EXPERIMENTS.md).
    pub fn knl_snc4_flat() -> Self {
        let topo = platforms::knl_snc4_flat();
        let mut m = Machine::from_kinds("knl-7230-snc4-flat", topo, |k| match k {
            MemoryKind::Dram => NodeTiming::knl_dram(),
            MemoryKind::Hbm => NodeTiming::knl_mcdram(),
            other => unreachable!("no {other} on KNL"),
        });
        for n in 0..4u32 {
            m.os_reserved.insert(NodeId(n), 6 * GIB + 512 * 1024 * 1024);
            m.os_reserved.insert(NodeId(4 + n), 200 * 1024 * 1024);
        }
        m
    }

    /// KNL in Quadrant/Cache mode: MCDRAM as memory-side cache.
    pub fn knl_quadrant_cache() -> Self {
        let topo = platforms::knl_quadrant_cache();
        let mut m = Machine::from_kinds("knl-7230-cache", topo, |k| match k {
            MemoryKind::Dram => {
                let mut t = NodeTiming::knl_dram();
                // Quadrant mode: all 4 clusters' channels behind one node.
                t.peak_read_bw_mbps *= 4.0;
                t.peak_write_bw_mbps *= 4.0;
                t
            }
            other => unreachable!("no {other} on KNL cache mode"),
        });
        m.cache_timings.insert(NodeId(0), MemSideCacheTiming::knl_cache_mode());
        m.os_reserved.insert(NodeId(0), 4 * GIB);
        m
    }

    /// The §VIII four-socket machine: 8 DRAM + 4 NVDIMM nodes.
    pub fn xeon_4s_snc() -> Self {
        let topo = platforms::xeon_4s_snc();
        let mut m = Machine::from_kinds("xeon-4s-snc2-1lm", topo, |k| match k {
            MemoryKind::Dram => {
                let mut t = NodeTiming::xeon_dram();
                t.peak_read_bw_mbps /= 2.0;
                t.peak_write_bw_mbps /= 2.0;
                t
            }
            MemoryKind::Nvdimm => NodeTiming::xeon_nvdimm(),
            other => unreachable!("no {other} on the 4-socket Xeon"),
        });
        for p in 0..4u32 {
            m.os_reserved.insert(NodeId(p * 3), 4 * GIB);
            m.os_reserved.insert(NodeId(p * 3 + 1), 4 * GIB);
        }
        m
    }

    /// The fictitious Fig. 3 platform with four kinds of memory.
    pub fn fictitious() -> Self {
        Machine::from_kinds("fictitious", platforms::fictitious(), |k| match k {
            MemoryKind::Dram => NodeTiming::xeon_dram(),
            MemoryKind::Hbm => NodeTiming::hbm2(),
            MemoryKind::Nvdimm => NodeTiming::xeon_nvdimm(),
            MemoryKind::NetworkAttached => NodeTiming::network_attached(),
            MemoryKind::GpuMemory => NodeTiming::gpu_over_nvlink(),
        })
    }

    /// A homogeneous NUMA machine (remote nodes share the same device
    /// timing; remoteness shows up in HMAT entries, not in the device).
    pub fn homogeneous(packages: u32, cores: u32, mem: u64) -> Self {
        Machine::from_kinds("homogeneous", platforms::homogeneous(packages, cores, mem), |_| {
            NodeTiming::xeon_dram()
        })
    }

    /// POWER9-style machine with GPU memory as host NUMA nodes.
    pub fn power9_gpu() -> Self {
        Machine::from_kinds("power9-gpu", platforms::power9_gpu(), |k| match k {
            MemoryKind::Dram => NodeTiming::xeon_dram(),
            MemoryKind::GpuMemory => NodeTiming::gpu_over_nvlink(),
            other => unreachable!("no {other} on POWER9"),
        })
    }

    /// A64FX/Fugaku-style HBM-only node.
    pub fn fugaku_like() -> Self {
        Machine::from_kinds("fugaku-like", platforms::fugaku_like(), |k| match k {
            MemoryKind::Hbm => NodeTiming::hbm2(),
            other => unreachable!("no {other} on A64FX"),
        })
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structural topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Timing of one node.
    pub fn timing(&self, node: NodeId) -> &NodeTiming {
        &self.timings[&node]
    }

    /// Memory-side cache fronting `node`, if any.
    pub fn cache_timing(&self, node: NodeId) -> Option<&MemSideCacheTiming> {
        self.cache_timings.get(&node)
    }

    /// Bytes reserved by OS/runtime on `node`.
    pub fn os_reserved(&self, node: NodeId) -> u64 {
        self.os_reserved.get(&node).copied().unwrap_or(0)
    }

    /// Capacity available to applications on `node`.
    pub fn usable_capacity(&self, node: NodeId) -> u64 {
        let total = self.topology.node_capacity(node).unwrap_or(0);
        total.saturating_sub(self.os_reserved(node))
    }

    /// Last-level CPU cache capacity covering an initiator cpuset: sums
    /// the deepest cache level present (L3 if any, else L2), scaled by
    /// the fraction of each cache's PUs that the initiator covers.
    pub fn llc_bytes(&self, initiator: &Bitmap) -> u64 {
        let level = if self.topology.count(ObjectType::L3Cache) > 0 {
            ObjectType::L3Cache
        } else {
            ObjectType::L2Cache
        };
        let mut total = 0.0f64;
        for cache in self.topology.objects_of_type(level) {
            if !cache.cpuset.intersects(initiator) {
                continue;
            }
            let covered = cache.cpuset.and(initiator).weight().unwrap_or(0) as f64;
            let all = cache.cpuset.weight().unwrap_or(1).max(1) as f64;
            let size = cache.attrs.as_cache().map_or(0, |c| c.size) as f64;
            total += size * covered / all;
        }
        total as u64
    }

    /// How an access from `initiator` to `node` deviates from the
    /// node's local timing.
    ///
    /// * local (the node's locality covers, or overlaps, the
    ///   initiator): no adjustment;
    /// * intra-package remote (another SNC cluster of the same
    ///   package): small mesh penalty;
    /// * cross-package remote: UPI/XGMI-style penalty — latency up,
    ///   bandwidth capped by the link.
    ///
    /// This is what lets benchmarks measure the *full*
    /// initiator×target matrix that the paper notes Linux cannot
    /// expose (§VIII: "hwloc is still able to expose them thanks to
    /// benchmarking").
    pub fn access_adjust(&self, initiator: &Bitmap, node: NodeId) -> AccessAdjust {
        let Some(obj) = self.topology.numa_by_os_index(node) else {
            return AccessAdjust::LOCAL;
        };
        if obj.cpuset.intersects(initiator)
            || obj.cpuset.includes(initiator)
            || obj.cpuset.is_zero()
        {
            return AccessAdjust::LOCAL;
        }
        // Machine-attached memory (e.g. NAM) has the whole machine as
        // locality and is caught above. Here the node belongs to some
        // package/cluster the initiator is not in.
        let node_pkg =
            self.topology.ancestor_of_type(obj.id, ObjectType::Package).map(|p| p.cpuset.clone());
        match node_pkg {
            Some(pkg) if pkg.intersects(initiator) => {
                AccessAdjust { extra_lat_ns: 20.0, bw_factor: 0.85 }
            }
            _ => AccessAdjust { extra_lat_ns: 70.0, bw_factor: 0.45 },
        }
    }

    /// Initiator proximity domains: one per distinct locality cpuset
    /// that contains processors, identified by the lowest-index NUMA
    /// node having exactly that locality.
    fn initiator_pds(&self) -> Vec<(u32, Bitmap)> {
        let mut pds: Vec<(u32, Bitmap)> = Vec::new();
        for node in self.topology.node_ids() {
            let obj = self.topology.numa_by_os_index(node).expect("node exists");
            if obj.cpuset.is_zero() {
                continue;
            }
            if !pds.iter().any(|(_, cs)| cs == &obj.cpuset) {
                pds.push((node.0, obj.cpuset.clone()));
            }
        }
        pds
    }

    /// Generates a classic ACPI SLIT-style distances matrix (10 =
    /// local), derived from the access-adjustment model plus a device
    /// class offset for slow memory. This is what pre-HMAT systems
    /// exposed — and why it is insufficient: a single scalar cannot
    /// carry both bandwidth and latency (the motivation for the
    /// attributes API).
    pub fn slit(&self) -> hetmem_topology::DistancesMatrix {
        let nodes = self.topology.node_ids();
        let one_way = |from: NodeId, to: NodeId| -> u64 {
            let src_cpus =
                self.topology.numa_by_os_index(from).map(|o| o.cpuset.clone()).unwrap_or_default();
            let adjust = self.access_adjust(&src_cpus, to);
            let device = match self.topology.node_kind(to) {
                Some(MemoryKind::Nvdimm) => 7,
                Some(MemoryKind::NetworkAttached) => 21,
                Some(MemoryKind::GpuMemory) => 12,
                _ => 0,
            };
            let hop = if adjust == AccessAdjust::LOCAL {
                0
            } else if adjust.extra_lat_ns < 40.0 {
                2
            } else {
                11
            };
            10 + device + hop
        };
        hetmem_topology::DistancesMatrix::from_fn(
            hetmem_topology::distance_kind_latency(),
            nodes,
            // SLIT matrices are symmetric by convention; a slow device
            // dominates the pair in either direction, except the
            // self-distance which is always 10.
            |from, to| {
                if from == to {
                    10
                } else {
                    one_way(from, to).max(one_way(to, from))
                }
            },
        )
    }

    /// Generates the firmware SRAT for this machine.
    pub fn srat(&self) -> Srat {
        let mut processors = Vec::new();
        let mut memory = Vec::new();
        let pds = self.initiator_pds();
        for node in self.topology.node_ids() {
            let obj = self.topology.numa_by_os_index(node).expect("node exists");
            memory.push(SratMemoryAffinity {
                pd: node.0,
                bytes: obj.local_memory(),
                hotplug: self.topology.node_kind(node) == Some(MemoryKind::Nvdimm),
            });
        }
        // Assign each CPU to the smallest-locality initiator PD that
        // contains it (its nearest NUMA node's PD).
        let machine_cpus: Vec<usize> = self.topology.machine_cpuset().iter().collect();
        for cpu in machine_cpus {
            let best = pds
                .iter()
                .filter(|(_, cs)| cs.is_set(cpu))
                .min_by_key(|(_, cs)| cs.weight().unwrap_or(usize::MAX));
            if let Some((pd, _)) = best {
                processors.push(SratProcessorAffinity { pd: *pd, cpu: cpu as u32 });
            }
        }
        Srat { processors, memory }
    }

    /// Generates the firmware HMAT from the datasheet values.
    ///
    /// `local_only` mirrors today's platforms (and the paper's Fig. 5):
    /// only entries where the initiator lies within the target's
    /// locality are provided. With `local_only = false` the full matrix
    /// is emitted, with remote penalties applied — the "future
    /// platforms" the paper anticipates.
    pub fn hmat(&self, local_only: bool) -> Hmat {
        self.hmat_with_options(local_only, false)
    }

    /// [`Self::hmat`] plus optional separate Read/Write matrices — the
    /// "on some platforms" row of the paper's Table I ("Latencies and
    /// bandwidths may optionally be specified independently for read
    /// and write accesses but current platforms rarely expose these
    /// yet", SIV-A1). Datasheet R/W values derive from the device's
    /// behavioural asymmetry.
    pub fn hmat_with_options(&self, local_only: bool, rw_variants: bool) -> Hmat {
        let pds = self.initiator_pds();
        let initiators: Vec<u32> = pds.iter().map(|(pd, _)| *pd).collect();
        let targets: Vec<u32> = self.topology.node_ids().iter().map(|n| n.0).collect();
        let mut lat = SystemLocalityLatencyBandwidth::new(
            DataType::AccessLatency,
            initiators.clone(),
            targets.clone(),
        );
        let mut bw = SystemLocalityLatencyBandwidth::new(
            DataType::AccessBandwidth,
            initiators.clone(),
            targets.clone(),
        );
        let mut extra: Vec<SystemLocalityLatencyBandwidth> = if rw_variants {
            [
                DataType::ReadLatency,
                DataType::WriteLatency,
                DataType::ReadBandwidth,
                DataType::WriteBandwidth,
            ]
            .into_iter()
            .map(|dt| SystemLocalityLatencyBandwidth::new(dt, initiators.clone(), targets.clone()))
            .collect()
        } else {
            Vec::new()
        };
        let mut proximity = Vec::new();
        for node in self.topology.node_ids() {
            let obj = self.topology.numa_by_os_index(node).expect("node exists");
            let timing = self.timing(node);
            let mut attached = None;
            for (pd, cs) in &pds {
                let local = obj.cpuset.includes(cs) && !obj.cpuset.is_zero();
                let (lat_v, bw_v) = if local {
                    (timing.hmat_latency_ns, timing.hmat_bandwidth_mbps)
                } else if !local_only {
                    // Remote access: +1 hop worth of latency, reduced BW.
                    (timing.hmat_latency_ns + 50, (timing.hmat_bandwidth_mbps as f64 * 0.4) as u32)
                } else {
                    continue;
                };
                lat.set(*pd, node.0, lat_v);
                bw.set(*pd, node.0, bw_v);
                if local && attached.is_none() {
                    attached = Some(*pd);
                }
                if rw_variants {
                    // Derive datasheet R/W from the device's measured
                    // asymmetry (write bandwidth share, write latency
                    // ratio).
                    let w_bw_frac = timing.peak_write_bw_mbps / timing.peak_read_bw_mbps;
                    let w_lat_frac = timing.idle_write_lat_ns / timing.idle_read_lat_ns;
                    extra[0].set(*pd, node.0, lat_v); // read latency
                    extra[1].set(*pd, node.0, (lat_v as f64 * w_lat_frac).round() as u32);
                    extra[2].set(*pd, node.0, bw_v); // read bandwidth
                    extra[3].set(*pd, node.0, (bw_v as f64 * w_bw_frac) as u32);
                }
            }
            proximity.push(MemProximityAttrs { initiator_pd: attached, memory_pd: node.0 });
        }
        let mut localities = vec![lat, bw];
        localities.extend(extra);
        let caches = self
            .cache_timings
            .iter()
            .map(|(node, ct)| MemorySideCacheInfo {
                memory_pd: node.0,
                size: ct.capacity,
                line_size: 64,
                level: 1,
            })
            .collect();
        Hmat { proximity, localities, caches }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_machines_build() {
        for m in [
            Machine::xeon_1lm_no_snc(),
            Machine::xeon_1lm_snc(),
            Machine::xeon_2lm(),
            Machine::knl_snc4_flat(),
            Machine::knl_quadrant_cache(),
            Machine::fictitious(),
            Machine::homogeneous(2, 8, 32 * GIB),
            Machine::power9_gpu(),
            Machine::fugaku_like(),
        ] {
            for node in m.topology().node_ids() {
                // Every node has a timing, and usable ≤ total capacity.
                let _ = m.timing(node);
                assert!(m.usable_capacity(node) <= m.topology().node_capacity(node).unwrap());
            }
        }
    }

    #[test]
    fn knl_dram_reserve_blocks_17_9_gib() {
        let m = Machine::knl_snc4_flat();
        let usable = m.usable_capacity(NodeId(0));
        let stream_17_9 = (17.9 * GIB as f64) as u64;
        assert!(usable < stream_17_9, "17.9GiB must not fit ({usable} available)");
        let stream_3_4 = (3.4 * GIB as f64) as u64;
        assert!(usable > stream_3_4);
        // MCDRAM can hold ~3.8 GiB.
        assert!(m.usable_capacity(NodeId(4)) > 3 * GIB);
    }

    #[test]
    fn xeon_dram_reserve_blocks_223_gib() {
        let m = Machine::xeon_1lm_no_snc();
        let usable = m.usable_capacity(NodeId(0));
        assert!(usable < (223.5 * GIB as f64) as u64);
        assert!(usable > (89.4 * GIB as f64) as u64);
        // NVDIMM holds all three sizes.
        assert!(m.usable_capacity(NodeId(2)) > (223.5 * GIB as f64) as u64);
    }

    #[test]
    fn llc_scales_with_initiator() {
        let m = Machine::xeon_1lm_no_snc();
        let all20: Bitmap = "0-19".parse().unwrap();
        let ten: Bitmap = "0-9".parse().unwrap();
        let full = m.llc_bytes(&all20);
        let half = m.llc_bytes(&ten);
        assert_eq!(full, 27904 * 1024);
        assert_eq!(half, full / 2);
    }

    #[test]
    fn knl_llc_is_l2_aggregate() {
        let m = Machine::knl_snc4_flat();
        let cluster: Bitmap = "0-15".parse().unwrap();
        // 8 tiles × 1 MiB.
        assert_eq!(m.llc_bytes(&cluster), 8 * 1024 * 1024);
    }

    #[test]
    fn srat_covers_all_cpus_and_nodes() {
        let m = Machine::xeon_1lm_snc();
        let srat = m.srat();
        assert_eq!(srat.processors.len(), 40);
        assert_eq!(srat.memory.len(), 6);
        // CPUs land in the SNC-group DRAM PDs (0,1,3,4), not NVDIMM PDs.
        assert_eq!(srat.initiator_domains(), vec![0, 1, 3, 4]);
        // NVDIMM nodes are hotplug (DAX-kmem).
        assert!(srat.memory.iter().any(|e| e.pd == 2 && e.hotplug));
    }

    #[test]
    fn hmat_local_only_matches_fig5() {
        let m = Machine::xeon_1lm_snc();
        let hmat = m.hmat(true);
        // DRAM node 0 from its own group: 131072/2 (SNC halves BW
        // datasheet? no — datasheet stays the Fig. 5 value).
        let bw = hmat.value(DataType::AccessBandwidth, 0, 0).unwrap();
        assert_eq!(bw, 131_072);
        let lat = hmat.value(DataType::AccessLatency, 0, 0).unwrap();
        assert_eq!(lat, 26);
        // NVDIMM node 2 is local to both groups of package 0.
        assert_eq!(hmat.value(DataType::AccessBandwidth, 0, 2), Some(78_644));
        assert_eq!(hmat.value(DataType::AccessBandwidth, 1, 2), Some(78_644));
        assert_eq!(hmat.value(DataType::AccessLatency, 0, 2), Some(77));
        // No cross-package entries in local-only mode (the paper's
        // "impossible to compare local DRAM with remote HBM").
        assert_eq!(hmat.value(DataType::AccessBandwidth, 0, 3), None);
        assert_eq!(hmat.value(DataType::AccessLatency, 3, 2), None);
    }

    #[test]
    fn hmat_full_matrix_has_remote_penalties() {
        let m = Machine::xeon_1lm_snc();
        let hmat = m.hmat(false);
        let local = hmat.value(DataType::AccessLatency, 0, 0).unwrap();
        let remote = hmat.value(DataType::AccessLatency, 3, 0).unwrap();
        assert!(remote > local);
        let local_bw = hmat.value(DataType::AccessBandwidth, 0, 0).unwrap();
        let remote_bw = hmat.value(DataType::AccessBandwidth, 3, 0).unwrap();
        assert!(remote_bw < local_bw);
    }

    #[test]
    fn hmat_rw_variants_follow_device_asymmetry() {
        let m = Machine::xeon_1lm_no_snc();
        let hmat = m.hmat_with_options(true, true);
        // NVDIMM node 2: write bandwidth well below read bandwidth.
        let r = hmat.value(DataType::ReadBandwidth, 0, 2).unwrap();
        let w = hmat.value(DataType::WriteBandwidth, 0, 2).unwrap();
        assert!(w < r / 2 + 1, "write {w} vs read {r}");
        // DRAM write latency slightly above read latency.
        let rl = hmat.value(DataType::ReadLatency, 0, 0).unwrap();
        let wl = hmat.value(DataType::WriteLatency, 0, 0).unwrap();
        assert!(wl >= rl);
        // Default generation omits them.
        assert!(m.hmat(true).locality(DataType::ReadBandwidth).is_none());
    }

    #[test]
    fn hmat_encodes_memory_side_caches() {
        let m = Machine::xeon_2lm();
        let hmat = m.hmat(true);
        assert_eq!(hmat.caches.len(), 2);
        assert_eq!(hmat.cache_of(0).unwrap().size, 192 * GIB);
    }

    #[test]
    fn hmat_binary_roundtrip_through_firmware_path() {
        let m = Machine::knl_snc4_flat();
        let hmat = m.hmat(true);
        let bin = hetmem_hmat::encode_hmat(&hmat);
        assert_eq!(hetmem_hmat::decode_hmat(&bin).unwrap(), hmat);
        let srat = m.srat();
        let bin = hetmem_hmat::encode_srat(&srat);
        assert_eq!(hetmem_hmat::decode_srat(&bin).unwrap(), srat);
    }

    #[test]
    fn remote_access_adjustments() {
        let m = Machine::xeon_1lm_snc();
        let g0: Bitmap = "0-9".parse().unwrap();
        // Local DRAM: no penalty.
        assert_eq!(m.access_adjust(&g0, NodeId(0)), AccessAdjust::LOCAL);
        // Package-local NVDIMM (locality covers the group): no penalty.
        assert_eq!(m.access_adjust(&g0, NodeId(2)), AccessAdjust::LOCAL);
        // Sibling SNC group's DRAM: mesh penalty.
        let sibling = m.access_adjust(&g0, NodeId(1));
        assert!(sibling.extra_lat_ns > 0.0 && sibling.extra_lat_ns < 50.0);
        // Other package's DRAM: UPI penalty, bigger.
        let cross = m.access_adjust(&g0, NodeId(3));
        assert!(cross.extra_lat_ns > sibling.extra_lat_ns);
        assert!(cross.bw_factor < sibling.bw_factor);
    }

    #[test]
    fn machine_attached_memory_is_local_to_everyone() {
        let m = Machine::fictitious();
        let g0: Bitmap = "0-3".parse().unwrap();
        // NAM (node 8) hangs off the machine root.
        assert_eq!(m.access_adjust(&g0, NodeId(8)), AccessAdjust::LOCAL);
    }

    #[test]
    fn slit_matches_classic_shape() {
        let m = Machine::xeon_1lm_no_snc();
        let d = m.slit();
        assert!(d.is_symmetric());
        // Local DRAM = 10; local NVDIMM = 17 (as real Optane systems
        // expose); cross-socket DRAM = 21.
        assert_eq!(d.value(NodeId(0), NodeId(0)), Some(10));
        assert_eq!(d.value(NodeId(0), NodeId(2)), Some(17));
        assert_eq!(d.value(NodeId(0), NodeId(1)), Some(21));
        assert_eq!(d.value(NodeId(0), NodeId(3)), Some(28));
        // Nearest other node from node 0 is... its local NVDIMM — a
        // scalar distance cannot say that NVDIMM is *slower per access*
        // but *closer per hop*, which is the paper's point.
        assert_eq!(d.nearest(NodeId(0)), Some(NodeId(2)));
    }

    #[test]
    fn missing_timing_rejected() {
        let topo = platforms::homogeneous(1, 2, GIB);
        let err = Machine::new("x", topo, BTreeMap::new(), BTreeMap::new(), BTreeMap::new());
        assert!(err.is_err());
    }
}
