//! Capacity accounting, NUMA allocation policies and migration.
//!
//! Models the OS view of memory: every allocation becomes a *region*
//! placed on one or more NUMA nodes at page granularity, under a policy
//! mirroring Linux `set_mempolicy`/`mbind` semantics — including the
//! quirk from the paper's footnote 21: the kernel's *preferred* policy
//! only spills to nodes with a **higher index** than the preferred one,
//! which is why "prefer MCDRAM, fall back to DRAM" is impossible on KNL
//! (MCDRAM nodes are numbered last) and why the paper's allocator does
//! its own explicit fallback instead.

use crate::machine::Machine;
use crate::PAGE_SIZE;
use hetmem_telemetry as telemetry;
use hetmem_telemetry::TelemetrySink;
use hetmem_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Handle to an allocated region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Allocation policies, mirroring Linux NUMA memory policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Strict binding: fail if the node cannot hold the whole region.
    Bind(NodeId),
    /// Linux `MPOL_PREFERRED`: fill the node, spill the rest — but only
    /// onto nodes with a **higher OS index** (footnote 21 quirk).
    Preferred(NodeId),
    /// Explicit ordered fallback with partial spill, at page
    /// granularity. This is the mechanism the paper's heterogeneous
    /// allocator builds on top of the ranking.
    PreferredMany(Vec<NodeId>),
    /// Round-robin page interleave across the given nodes; nodes that
    /// fill up drop out of the rotation.
    Interleave(Vec<NodeId>),
    /// An exact, externally decided split: place precisely these
    /// `(node, bytes)` chunks, each rounded up to whole pages, in
    /// order. This is how an arbiter (e.g. the multi-tenant broker)
    /// commits a placement it already admitted — no kernel-side
    /// spilling may second-guess it.
    Exact(Vec<(NodeId, u64)>),
}

/// Why an allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Strict bind: the node lacks capacity.
    InsufficientCapacity {
        /// The node that could not hold the region.
        node: NodeId,
        /// Bytes requested.
        requested: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// No combination of permitted nodes can hold the region.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available across all permitted nodes.
        available: u64,
    },
    /// A policy referenced a node that does not exist.
    InvalidNode(NodeId),
    /// A policy carried an empty node list.
    EmptyNodeList,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::InsufficientCapacity { node, requested, available } => {
                write!(f, "cannot bind {requested} bytes to {node}: only {available} available")
            }
            AllocError::OutOfMemory { requested, available } => {
                write!(f, "out of memory: {requested} requested, {available} available")
            }
            AllocError::InvalidNode(n) => write!(f, "unknown NUMA node {n}"),
            AllocError::EmptyNodeList => write!(f, "policy with empty node list"),
        }
    }
}

impl std::error::Error for AllocError {}

/// An allocated region: ordered per-node chunks covering `size` bytes.
#[derive(Debug, Clone)]
pub struct Region {
    /// The region handle.
    pub id: RegionId,
    /// Requested size in bytes.
    pub size: u64,
    /// Ordered placement: virtual-address-ordered chunks and the node
    /// backing each.
    pub placement: Vec<(NodeId, u64)>,
    /// The policy the region was allocated under.
    pub policy: AllocPolicy,
}

impl Region {
    /// Bytes of this region on `node`.
    pub fn bytes_on(&self, node: NodeId) -> u64 {
        self.placement.iter().filter(|(n, _)| *n == node).map(|(_, b)| b).sum()
    }

    /// True when the whole region lives on a single node.
    pub fn single_node(&self) -> Option<NodeId> {
        match self.placement.as_slice() {
            [(n, _)] => Some(*n),
            _ => None,
        }
    }
}

/// Plain-data image of one live [`Region`], as captured by
/// [`MemoryManager::capture`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionState {
    /// The region id.
    pub id: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Ordered per-node placement chunks.
    pub placement: Vec<(NodeId, u64)>,
    /// The policy the region was allocated under.
    pub policy: AllocPolicy,
}

/// Plain-data image of a whole [`MemoryManager`] at one instant:
/// every live region, the id counter, and the per-node high-water
/// marks. Free capacity is *derived* on restore (usable capacity minus
/// the placements), so a state that oversubscribes a node cannot be
/// reinstated silently. The `hetmem-snapshot` crate serializes this
/// struct into its checkpoint files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ManagerState {
    /// Live regions in id order.
    pub regions: Vec<RegionState>,
    /// The next region id to hand out.
    pub next_id: u64,
    /// Per-node high-water marks, in node order.
    pub high_water: Vec<(NodeId, u64)>,
}

/// Why a captured [`ManagerState`] could not be reinstated onto a
/// machine (see [`MemoryManager::restore`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError(String);

impl RestoreError {
    fn new(msg: impl Into<String>) -> RestoreError {
        RestoreError(msg.into())
    }
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manager restore: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// Outcome of a migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// Bytes actually moved (bytes already on the target don't move).
    pub bytes_moved: u64,
    /// Modelled cost: per-page kernel overhead plus copy time.
    pub cost_ns: f64,
}

/// The simulated OS memory manager for one machine.
#[derive(Clone)]
pub struct MemoryManager {
    machine: Arc<Machine>,
    free: BTreeMap<NodeId, u64>,
    regions: BTreeMap<RegionId, Region>,
    next_id: u64,
    high_water: BTreeMap<NodeId, u64>,
    sink: TelemetrySink,
}

impl std::fmt::Debug for MemoryManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryManager")
            .field("free", &self.free)
            .field("regions", &self.regions.len())
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

/// Per-page kernel overhead for `move_pages` (the paper cites [23]:
/// migration "is quite expensive in operating systems").
const MIGRATE_PAGE_OVERHEAD_NS: f64 = 1_200.0;

impl MemoryManager {
    /// Creates a manager with every node's usable capacity free.
    pub fn new(machine: Arc<Machine>) -> Self {
        let free = machine
            .topology()
            .node_ids()
            .into_iter()
            .map(|n| (n, machine.usable_capacity(n)))
            .collect();
        MemoryManager {
            machine,
            free,
            regions: BTreeMap::new(),
            next_id: 0,
            high_water: BTreeMap::new(),
            sink: TelemetrySink::disabled(),
        }
    }

    /// The machine this manager operates on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Routes capacity events (occupancy gauges, migrations, frees)
    /// into `sink`. The default is a disabled sink.
    pub fn set_sink(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// The sink capacity events go to.
    pub fn sink(&self) -> &TelemetrySink {
        &self.sink
    }

    /// Highest used-bytes watermark seen on `node` since creation.
    pub fn high_water(&self, node: NodeId) -> u64 {
        self.high_water.get(&node).copied().unwrap_or(0)
    }

    /// Updates watermarks and emits an occupancy gauge for each node
    /// whose allocation changed.
    fn gauge(&mut self, touched: impl IntoIterator<Item = NodeId>) {
        let mut nodes: Vec<NodeId> = touched.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        for node in nodes {
            let used = self.used(node);
            let hw = self.high_water.entry(node).or_insert(0);
            *hw = (*hw).max(used);
            let hw = *hw;
            if self.sink.enabled() {
                self.sink.emit(telemetry::Event::OccupancyGauge(telemetry::OccupancyGauge {
                    node,
                    used,
                    high_water: hw,
                    total: self.machine.usable_capacity(node),
                }));
            }
        }
    }

    /// Free bytes on `node`.
    pub fn available(&self, node: NodeId) -> u64 {
        self.free.get(&node).copied().unwrap_or(0)
    }

    /// Used bytes on `node` (excluding the OS reservation).
    pub fn used(&self, node: NodeId) -> u64 {
        self.machine.usable_capacity(node) - self.available(node)
    }

    /// Looks up a live region.
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.get(&id)
    }

    /// All live regions.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }

    /// Validates a policy node list and deduplicates it, preserving
    /// order — Linux nodemasks are sets, and a repeated node must not
    /// double-count its capacity.
    fn check_nodes(&self, nodes: &[NodeId]) -> Result<Vec<NodeId>, AllocError> {
        if nodes.is_empty() {
            return Err(AllocError::EmptyNodeList);
        }
        let mut deduped = Vec::with_capacity(nodes.len());
        for &n in nodes {
            if !self.free.contains_key(&n) {
                return Err(AllocError::InvalidNode(n));
            }
            if !deduped.contains(&n) {
                deduped.push(n);
            }
        }
        Ok(deduped)
    }

    /// Allocates `size` bytes under `policy`. Sizes are rounded up to
    /// whole pages, like a real kernel.
    pub fn alloc(&mut self, size: u64, policy: AllocPolicy) -> Result<RegionId, AllocError> {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let placement = match &policy {
            AllocPolicy::Bind(node) => {
                let _ = self.check_nodes(std::slice::from_ref(node))?;
                let avail = self.available(*node);
                if avail < size {
                    return Err(AllocError::InsufficientCapacity {
                        node: *node,
                        requested: size,
                        available: avail,
                    });
                }
                vec![(*node, size)]
            }
            AllocPolicy::Preferred(node) => {
                let _ = self.check_nodes(std::slice::from_ref(node))?;
                // Linux quirk: spill only to higher-index nodes.
                let mut order = vec![*node];
                order.extend(self.free.keys().copied().filter(|n| n.0 > node.0));
                self.fill_in_order(size, &order)?
            }
            AllocPolicy::PreferredMany(order) => {
                let order = self.check_nodes(order)?;
                self.fill_in_order(size, &order)?
            }
            AllocPolicy::Interleave(nodes) => {
                let nodes = self.check_nodes(nodes)?;
                self.interleave(size, &nodes)?
            }
            AllocPolicy::Exact(chunks) => {
                let nodes: Vec<NodeId> = chunks.iter().map(|&(n, _)| n).collect();
                let _ = self.check_nodes(&nodes)?;
                let mut need: BTreeMap<NodeId, u64> = BTreeMap::new();
                let mut placement = Vec::new();
                for &(node, bytes) in chunks {
                    let bytes = bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE;
                    if bytes == 0 {
                        continue;
                    }
                    *need.entry(node).or_insert(0) += bytes;
                    placement.push((node, bytes));
                }
                for (&node, &bytes) in &need {
                    let avail = self.available(node);
                    if avail < bytes {
                        return Err(AllocError::InsufficientCapacity {
                            node,
                            requested: bytes,
                            available: avail,
                        });
                    }
                }
                placement
            }
        };
        // Exact splits define their own total (chunk-wise rounding).
        let size = if matches!(policy, AllocPolicy::Exact(_)) {
            placement.iter().map(|&(_, b)| b).sum()
        } else {
            size
        };
        for (node, bytes) in &placement {
            *self.free.get_mut(node).expect("validated node") -= bytes;
        }
        let id = RegionId(self.next_id);
        self.next_id += 1;
        let touched: Vec<NodeId> = placement.iter().map(|&(n, _)| n).collect();
        self.regions.insert(id, Region { id, size, placement, policy });
        self.gauge(touched);
        Ok(id)
    }

    fn fill_in_order(&self, size: u64, order: &[NodeId]) -> Result<Vec<(NodeId, u64)>, AllocError> {
        let mut remaining = size;
        let mut placement = Vec::new();
        for &node in order {
            if remaining == 0 {
                break;
            }
            let take = self.available(node).min(remaining) / PAGE_SIZE * PAGE_SIZE;
            if take > 0 {
                placement.push((node, take));
                remaining -= take;
            }
        }
        if remaining > 0 {
            let available: u64 = order.iter().map(|&n| self.available(n)).sum();
            return Err(AllocError::OutOfMemory { requested: size, available });
        }
        Ok(placement)
    }

    fn interleave(&self, size: u64, nodes: &[NodeId]) -> Result<Vec<(NodeId, u64)>, AllocError> {
        let pages = size / PAGE_SIZE;
        let mut left: Vec<(NodeId, u64)> =
            nodes.iter().map(|&n| (n, self.available(n) / PAGE_SIZE)).collect();
        let mut counts: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut placed = 0;
        // Round-robin whole rounds at a time for efficiency.
        while placed < pages {
            left.retain(|(_, cap)| *cap > 0);
            if left.is_empty() {
                let available: u64 = nodes.iter().map(|&n| self.available(n)).sum();
                return Err(AllocError::OutOfMemory { requested: size, available });
            }
            let min_cap = left.iter().map(|(_, c)| *c).min().expect("non-empty");
            let per_node = ((pages - placed) / left.len() as u64).max(1).min(min_cap);
            for (node, cap) in &mut left {
                let take = per_node.min(pages - placed);
                if take == 0 {
                    break;
                }
                *counts.entry(*node).or_insert(0) += take;
                *cap -= take;
                placed += take;
            }
        }
        Ok(counts.into_iter().map(|(n, p)| (n, p * PAGE_SIZE)).collect())
    }

    /// Frees a region, returning its capacity to the nodes.
    pub fn free(&mut self, id: RegionId) -> bool {
        match self.regions.remove(&id) {
            Some(region) => {
                for &(node, bytes) in &region.placement {
                    *self.free.get_mut(&node).expect("placement node exists") += bytes;
                }
                if self.sink.enabled() {
                    self.sink.emit(telemetry::Event::Free(telemetry::FreeEvent {
                        region: id.0,
                        placement: region.placement.clone(),
                    }));
                }
                self.gauge(region.placement.iter().map(|&(n, _)| n));
                true
            }
            None => false,
        }
    }

    /// Migrates a region so it is entirely on `target` (strict), like
    /// `migrate_pages`. Returns the modelled cost; fails without side
    /// effects if the target can't take the extra bytes.
    pub fn migrate(&mut self, id: RegionId, target: NodeId) -> Result<MigrationReport, AllocError> {
        if !self.free.contains_key(&target) {
            return Err(AllocError::InvalidNode(target));
        }
        let region = self.regions.get(&id).ok_or(AllocError::InvalidNode(target))?;
        let already = region.bytes_on(target);
        let to_move = region.size - already;
        let avail = self.available(target);
        if avail < to_move {
            return Err(AllocError::InsufficientCapacity {
                node: target,
                requested: to_move,
                available: avail,
            });
        }
        // Cost: per-page kernel work plus the copy, limited by the
        // slower of source-read and target-write bandwidth.
        let mut cost_ns = 0.0;
        let old_placement = region.placement.clone();
        for (src, bytes) in &old_placement {
            if *src == target {
                continue;
            }
            let pages = bytes / PAGE_SIZE;
            let src_bw = self.machine.timing(*src).peak_read_bw_mbps;
            let dst_bw = self.machine.timing(target).peak_write_bw_mbps;
            let copy_bw = src_bw.min(dst_bw);
            cost_ns += pages as f64 * MIGRATE_PAGE_OVERHEAD_NS
                + crate::ns_for_bytes(*bytes as f64, copy_bw);
        }
        // Apply: return old chunks, take from target.
        for (src, bytes) in &old_placement {
            *self.free.get_mut(src).expect("placement node") += bytes;
        }
        *self.free.get_mut(&target).expect("validated") -= region.size;
        let region = self.regions.get_mut(&id).expect("checked above");
        region.placement = vec![(target, region.size)];
        if self.sink.enabled() {
            self.sink.emit(telemetry::Event::Migration(telemetry::Migration {
                region: id.0,
                from: old_placement.clone(),
                to: target,
                bytes_moved: to_move,
                cost_ns,
            }));
        }
        let mut touched: Vec<NodeId> = old_placement.iter().map(|&(n, _)| n).collect();
        touched.push(target);
        self.gauge(touched);
        Ok(MigrationReport { bytes_moved: to_move, cost_ns })
    }

    /// Sum of free bytes across all nodes.
    pub fn total_available(&self) -> u64 {
        self.free.values().sum()
    }

    /// Captures the manager's full mutable state as plain data. The
    /// telemetry sink is *not* part of the state — a restored manager
    /// starts with a disabled sink.
    pub fn capture(&self) -> ManagerState {
        ManagerState {
            regions: self
                .regions
                .values()
                .map(|r| RegionState {
                    id: r.id.0,
                    size: r.size,
                    placement: r.placement.clone(),
                    policy: r.policy.clone(),
                })
                .collect(),
            next_id: self.next_id,
            high_water: self.high_water.iter().map(|(&n, &hw)| (n, hw)).collect(),
        }
    }

    /// Reinstates a captured state onto `machine`. Free capacity is
    /// recomputed from the placements; a state whose regions reference
    /// unknown nodes, oversubscribe a node, reuse a region id, or use
    /// an id at or past `next_id` is rejected with a typed error and
    /// no manager is built.
    pub fn restore(machine: Arc<Machine>, state: &ManagerState) -> Result<Self, RestoreError> {
        let mut mm = MemoryManager::new(machine);
        for r in &state.regions {
            if r.id >= state.next_id {
                return Err(RestoreError::new(format!(
                    "region #{} is at or past next_id {}",
                    r.id, state.next_id
                )));
            }
            for &(node, bytes) in &r.placement {
                let free = mm.free.get_mut(&node).ok_or_else(|| {
                    RestoreError::new(format!("region #{} references unknown {node}", r.id))
                })?;
                *free = free.checked_sub(bytes).ok_or_else(|| {
                    RestoreError::new(format!("region #{} oversubscribes {node}", r.id))
                })?;
            }
            let id = RegionId(r.id);
            let region = Region {
                id,
                size: r.size,
                placement: r.placement.clone(),
                policy: r.policy.clone(),
            };
            if mm.regions.insert(id, region).is_some() {
                return Err(RestoreError::new(format!("duplicate region #{}", r.id)));
            }
        }
        mm.next_id = state.next_id;
        for &(node, hw) in &state.high_water {
            if !mm.free.contains_key(&node) {
                return Err(RestoreError::new(format!("high-water mark for unknown {node}")));
            }
            mm.high_water.insert(node, hw);
        }
        Ok(mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_topology::GIB;

    fn manager() -> MemoryManager {
        MemoryManager::new(Arc::new(Machine::knl_snc4_flat()))
    }

    #[test]
    fn exact_places_the_given_split() {
        let mut mm = manager();
        let split = vec![(NodeId(4), GIB), (NodeId(0), 2 * GIB + 1)];
        let id = mm.alloc(3 * GIB + 1, AllocPolicy::Exact(split)).unwrap();
        let region = mm.region(id).unwrap();
        assert_eq!(region.bytes_on(NodeId(4)), GIB);
        // The odd chunk rounds up to a whole page.
        assert_eq!(region.bytes_on(NodeId(0)), 2 * GIB + PAGE_SIZE);
        assert_eq!(region.size, 3 * GIB + PAGE_SIZE);

        // Over-capacity chunks are rejected before any mutation.
        let before = mm.available(NodeId(4));
        let err = mm.alloc(64 * GIB, AllocPolicy::Exact(vec![(NodeId(4), 64 * GIB)])).unwrap_err();
        assert!(matches!(err, AllocError::InsufficientCapacity { node: NodeId(4), .. }));
        assert_eq!(mm.available(NodeId(4)), before);
        assert!(matches!(
            mm.alloc(0, AllocPolicy::Exact(vec![])).unwrap_err(),
            AllocError::EmptyNodeList
        ));
    }

    #[test]
    fn bind_respects_capacity() {
        let mut mm = manager();
        // MCDRAM node 4 has ~3.8 GiB usable.
        let id = mm.alloc(3 * GIB, AllocPolicy::Bind(NodeId(4))).unwrap();
        assert_eq!(mm.region(id).unwrap().single_node(), Some(NodeId(4)));
        let err = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(4))).unwrap_err();
        assert!(matches!(err, AllocError::InsufficientCapacity { node: NodeId(4), .. }));
        // Free and retry.
        assert!(mm.free(id));
        assert!(mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(4))).is_ok());
    }

    #[test]
    fn size_rounds_to_pages() {
        let mut mm = manager();
        let before = mm.available(NodeId(0));
        let id = mm.alloc(1, AllocPolicy::Bind(NodeId(0))).unwrap();
        assert_eq!(before - mm.available(NodeId(0)), PAGE_SIZE);
        assert_eq!(mm.region(id).unwrap().size, PAGE_SIZE);
    }

    #[test]
    fn preferred_spills_only_to_higher_indexes() {
        let mut mm = manager();
        // Fill DRAM node 0 almost completely.
        let avail0 = mm.available(NodeId(0));
        mm.alloc(avail0 - GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        // Preferred(0) for 3 GiB: 1 GiB on node 0, spill to node 1.
        let id = mm.alloc(3 * GIB, AllocPolicy::Preferred(NodeId(0))).unwrap();
        let r = mm.region(id).unwrap();
        assert_eq!(r.bytes_on(NodeId(0)), GIB);
        assert_eq!(r.bytes_on(NodeId(1)), 2 * GIB);
    }

    #[test]
    fn preferred_mcdram_cannot_fall_back_to_dram() {
        // Footnote 21: MCDRAM is node 7 (highest index), so Preferred
        // can only spill to... nothing on this machine.
        let mut mm = manager();
        let avail = mm.available(NodeId(7));
        let err = mm.alloc(avail + GIB, AllocPolicy::Preferred(NodeId(7))).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        // Whereas the explicit ordered fallback handles it fine.
        let id =
            mm.alloc(avail + GIB, AllocPolicy::PreferredMany(vec![NodeId(7), NodeId(3)])).unwrap();
        let r = mm.region(id).unwrap();
        assert_eq!(r.bytes_on(NodeId(7)), avail);
        assert_eq!(r.bytes_on(NodeId(3)), GIB);
    }

    #[test]
    fn interleave_spreads_pages() {
        let mut mm = manager();
        let nodes = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let id = mm.alloc(4 * GIB, AllocPolicy::Interleave(nodes.clone())).unwrap();
        let r = mm.region(id).unwrap();
        for n in nodes {
            assert_eq!(r.bytes_on(n), GIB);
        }
    }

    #[test]
    fn interleave_drops_full_nodes() {
        let mut mm = manager();
        // Nearly fill MCDRAM node 4.
        let avail4 = mm.available(NodeId(4));
        mm.alloc(avail4 - GIB, AllocPolicy::Bind(NodeId(4))).unwrap();
        let id = mm.alloc(6 * GIB, AllocPolicy::Interleave(vec![NodeId(4), NodeId(0)])).unwrap();
        let r = mm.region(id).unwrap();
        assert_eq!(r.bytes_on(NodeId(4)), GIB);
        assert_eq!(r.bytes_on(NodeId(0)), 5 * GIB);
    }

    #[test]
    fn interleave_oom_when_all_full() {
        let mut mm = manager();
        let a4 = mm.available(NodeId(4));
        let a5 = mm.available(NodeId(5));
        let err = mm
            .alloc(a4 + a5 + GIB, AllocPolicy::Interleave(vec![NodeId(4), NodeId(5)]))
            .unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }

    #[test]
    fn failed_alloc_has_no_side_effects() {
        let mut mm = manager();
        let snapshot: Vec<u64> =
            mm.machine.topology().node_ids().iter().map(|&n| mm.available(n)).collect();
        let _ = mm.alloc(10_000 * GIB, AllocPolicy::PreferredMany(vec![NodeId(0)])).unwrap_err();
        let after: Vec<u64> =
            mm.machine.topology().node_ids().iter().map(|&n| mm.available(n)).collect();
        assert_eq!(snapshot, after);
    }

    #[test]
    fn migration_moves_and_costs() {
        let mut mm = manager();
        let id = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let before0 = mm.available(NodeId(0));
        let report = mm.migrate(id, NodeId(4)).unwrap();
        assert_eq!(report.bytes_moved, 2 * GIB);
        assert!(report.cost_ns > 0.0);
        assert_eq!(mm.available(NodeId(0)), before0 + 2 * GIB);
        assert_eq!(mm.region(id).unwrap().single_node(), Some(NodeId(4)));
        // Page overhead dominates: ≥ pages × overhead.
        let pages = (2 * GIB / PAGE_SIZE) as f64;
        assert!(report.cost_ns >= pages * 1_200.0);
    }

    #[test]
    fn migration_to_full_node_fails_cleanly() {
        let mut mm = manager();
        let big = mm.alloc(10 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let err = mm.migrate(big, NodeId(4)).unwrap_err();
        assert!(matches!(err, AllocError::InsufficientCapacity { node: NodeId(4), .. }));
        // Region untouched.
        assert_eq!(mm.region(big).unwrap().single_node(), Some(NodeId(0)));
    }

    #[test]
    fn migrate_noop_when_already_there() {
        let mut mm = manager();
        let id = mm.alloc(GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        let report = mm.migrate(id, NodeId(0)).unwrap();
        assert_eq!(report.bytes_moved, 0);
    }

    #[test]
    fn double_free_returns_false() {
        let mut mm = manager();
        let id = mm.alloc(GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        assert!(mm.free(id));
        assert!(!mm.free(id));
    }

    #[test]
    fn duplicate_nodes_in_policy_count_once() {
        // Regression: PreferredMany(vec![n, n]) must not double-count
        // the node's capacity (caught by the workspace proptests).
        let mut mm = manager();
        let avail = mm.available(NodeId(4));
        let err = mm
            .alloc(avail * 2, AllocPolicy::PreferredMany(vec![NodeId(4), NodeId(4)]))
            .unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        let id = mm.alloc(avail, AllocPolicy::PreferredMany(vec![NodeId(4), NodeId(4)])).unwrap();
        assert_eq!(mm.region(id).unwrap().bytes_on(NodeId(4)), avail);
        assert_eq!(mm.available(NodeId(4)), 0);
        // Interleave with duplicates likewise counts once.
        mm.free(id);
        let id =
            mm.alloc(GIB, AllocPolicy::Interleave(vec![NodeId(0), NodeId(0), NodeId(1)])).unwrap();
        let r = mm.region(id).unwrap();
        assert_eq!(r.bytes_on(NodeId(0)), GIB / 2);
        assert_eq!(r.bytes_on(NodeId(1)), GIB / 2);
    }

    #[test]
    fn telemetry_tracks_capacity_lifecycle() {
        use hetmem_telemetry::Event;
        let mut mm = manager();
        let sink = TelemetrySink::new();
        mm.set_sink(sink.clone());
        let id = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        mm.migrate(id, NodeId(4)).unwrap();
        mm.free(id);
        let events: Vec<Event> =
            sink.collector().drain_sorted().into_iter().map(|e| e.event).collect();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Migration(m) if m.region == id.0 && m.to == NodeId(4) && m.bytes_moved == 2 * GIB
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Free(f) if f.region == id.0 && f.placement == vec![(NodeId(4), 2 * GIB)]
        )));
        // Gauges: node 0 rose to 2 GiB then drained; high water sticks.
        assert_eq!(mm.used(NodeId(0)), 0);
        assert_eq!(mm.high_water(NodeId(0)), 2 * GIB);
        assert_eq!(mm.high_water(NodeId(4)), 2 * GIB);
        let last_gauge0 = events
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::OccupancyGauge(g) if g.node == NodeId(0) => Some(*g),
                _ => None,
            })
            .expect("node 0 gauges");
        assert_eq!(last_gauge0.used, 0);
        assert_eq!(last_gauge0.high_water, 2 * GIB);
    }

    #[test]
    fn capture_restore_roundtrips_and_validates() {
        let mut mm = manager();
        let a = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(4))).unwrap();
        let b = mm.alloc(3 * GIB, AllocPolicy::PreferredMany(vec![NodeId(0), NodeId(1)])).unwrap();
        mm.free(a);
        let state = mm.capture();
        let back = MemoryManager::restore(mm.machine().clone(), &state).expect("restores");
        assert_eq!(back.capture(), state, "capture/restore round-trips");
        for &n in &mm.machine().topology().node_ids() {
            assert_eq!(back.available(n), mm.available(n), "free bytes agree on {n}");
            assert_eq!(back.high_water(n), mm.high_water(n), "high water agrees on {n}");
        }
        // The restored manager keeps allocating where the original
        // left off: region ids never collide with live ones.
        let mut back = back;
        let c = back.alloc(GIB, AllocPolicy::Bind(NodeId(0))).unwrap();
        assert!(c > b, "fresh ids continue past the restored counter");

        // Corrupted states are rejected, not applied.
        let mut bad = state.clone();
        bad.regions[0].placement = vec![(NodeId(99), GIB)];
        let err = MemoryManager::restore(mm.machine().clone(), &bad).unwrap_err();
        assert!(err.to_string().contains("unknown"), "{err}");
        let mut bad = state.clone();
        bad.regions[0].placement = vec![(NodeId(4), 1 << 50)];
        let err = MemoryManager::restore(mm.machine().clone(), &bad).unwrap_err();
        assert!(err.to_string().contains("oversubscribes"), "{err}");
        let mut bad = state.clone();
        bad.next_id = 0;
        assert!(MemoryManager::restore(mm.machine().clone(), &bad).is_err());
        let mut bad = state.clone();
        let dup = bad.regions[0].clone();
        bad.regions.push(dup);
        let err = MemoryManager::restore(mm.machine().clone(), &bad).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn invalid_node_rejected() {
        let mut mm = manager();
        assert!(matches!(
            mm.alloc(GIB, AllocPolicy::Bind(NodeId(99))),
            Err(AllocError::InvalidNode(NodeId(99)))
        ));
        assert!(matches!(
            mm.alloc(GIB, AllocPolicy::PreferredMany(vec![])),
            Err(AllocError::EmptyNodeList)
        ));
    }
}
