//! Property tests for the simulator: engine monotonicity laws, cache
//! and AIT model sanity, migration conservation.

use hetmem_memsim::{
    AccessEngine, AccessPattern, AllocPolicy, BufferAccess, Machine, MemoryManager, NodeTiming,
    Phase,
};
use hetmem_topology::NodeId;
use proptest::prelude::*;
use std::sync::Arc;

const GIB: u64 = 1 << 30;

fn xeon() -> (AccessEngine, MemoryManager) {
    let machine = Arc::new(Machine::xeon_1lm_no_snc());
    (AccessEngine::new(machine.clone()), MemoryManager::new(machine))
}

fn pattern(sel: u8) -> AccessPattern {
    match sel % 4 {
        0 => AccessPattern::Sequential,
        1 => AccessPattern::Strided,
        2 => AccessPattern::Random,
        _ => AccessPattern::PointerChase,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// More threads never slow a phase down (bandwidth caps lift,
    /// latency chains divide).
    #[test]
    fn more_threads_never_slower(mib in 64u64..2048, sel in 0u8..4, t1 in 1usize..19) {
        let (engine, mut mm) = xeon();
        let r = mm.alloc(4 * GIB, AllocPolicy::Bind(NodeId(0))).expect("fits");
        let mk = |threads| Phase {
            name: "p".into(),
            accesses: vec![BufferAccess::new(r, mib << 20, 0, pattern(sel))],
            threads,
            initiator: "0-19".parse().expect("cpuset"),
            compute_ns: 0.0,
        };
        let slow = engine.run_phase(&mm, &mk(t1)).time_ns;
        let fast = engine.run_phase(&mm, &mk(t1 + 1)).time_ns;
        prop_assert!(fast <= slow * 1.0001, "t={t1}: {slow} -> t={}: {fast}", t1 + 1);
    }

    /// Miss ratios are probabilities and monotone in working-set size.
    #[test]
    fn miss_ratio_laws(ws1 in 1u64..1 << 40, ws2 in 1u64..1 << 40, llc in 1u64..1 << 30, sel in 0u8..4) {
        let p = pattern(sel);
        let m1 = p.llc_miss_ratio(ws1, llc);
        let m2 = p.llc_miss_ratio(ws2, llc);
        prop_assert!((0.0..=1.0).contains(&m1));
        prop_assert!((0.0..=1.0).contains(&m2));
        if ws1 <= ws2 {
            prop_assert!(m1 <= m2 + 1e-12, "miss ratio not monotone: ws {ws1}->{ws2}: {m1}->{m2}");
        }
    }

    /// Effective bandwidth is monotone in thread count, bounded by the
    /// peak, and AIT degradation never increases it.
    #[test]
    fn effective_bw_laws(threads in 1usize..64, fp1 in 0u64..1 << 41, fp2 in 0u64..1 << 41) {
        let t = NodeTiming::xeon_nvdimm();
        let b1 = t.effective_read_bw(threads, fp1);
        let b2 = t.effective_read_bw(threads + 1, fp1);
        prop_assert!(b2 >= b1);
        prop_assert!(b1 <= t.peak_read_bw_mbps);
        if fp1 <= fp2 {
            prop_assert!(
                t.effective_read_bw(threads, fp2) <= t.effective_read_bw(threads, fp1) + 1e-9
            );
        }
        // Latency penalty likewise monotone and bounded.
        let l1 = t.ait_latency_penalty(fp1);
        prop_assert!((0.0..=t.ait_extra_lat_ns).contains(&l1));
        if fp1 <= fp2 {
            prop_assert!(t.ait_latency_penalty(fp2) >= l1);
        }
    }

    /// Loaded latency interpolates monotonically with utilization.
    #[test]
    fn loaded_latency_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let t = NodeTiming::xeon_dram();
        if u1 <= u2 {
            prop_assert!(t.read_latency_at(u1) <= t.read_latency_at(u2));
        }
        prop_assert!(t.read_latency_at(u1) >= t.idle_read_lat_ns);
    }

    /// Migration conserves bytes: after migrate, the region is whole
    /// on the target and every pool balances.
    #[test]
    fn migration_conserves(mib in 1u64..4096, to_sel in 0u8..4) {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let mut mm = MemoryManager::new(machine.clone());
        let initial: Vec<u64> =
            machine.topology().node_ids().iter().map(|&n| mm.available(n)).collect();
        let id = mm.alloc(mib << 20, AllocPolicy::Bind(NodeId(0))).expect("fits");
        let target = NodeId([0u32, 1, 2, 4][to_sel as usize % 4]);
        if let Ok(report) = mm.migrate(id, target) {
            let r = mm.region(id).expect("live");
            prop_assert_eq!(r.single_node(), Some(target));
            prop_assert!(report.bytes_moved <= r.size);
        }
        mm.free(id);
        let after: Vec<u64> =
            machine.topology().node_ids().iter().map(|&n| mm.available(n)).collect();
        prop_assert_eq!(initial, after);
    }

    /// Phase reports are internally consistent: per-node bytes sum to
    /// the post-LLC traffic, utilization ≤ 1, achieved bw ≥ 0.
    #[test]
    fn phase_report_consistency(
        mib_r in 1u64..4096,
        mib_w in 0u64..4096,
        sel in 0u8..4,
        threads in 1usize..20,
    ) {
        let (engine, mut mm) = xeon();
        let r = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(2))).expect("fits");
        let phase = Phase {
            name: "p".into(),
            accesses: vec![BufferAccess::new(r, mib_r << 20, mib_w << 20, pattern(sel))],
            threads,
            initiator: "0-19".parse().expect("cpuset"),
            compute_ns: 0.0,
        };
        let rep = engine.run_phase(&mm, &phase);
        prop_assert!(rep.time_ns.is_finite() && rep.time_ns > 0.0);
        for traffic in rep.per_node.values() {
            prop_assert!((0.0..=1.0).contains(&traffic.utilization));
            prop_assert!(traffic.achieved_bw_mbps >= 0.0);
            prop_assert!(traffic.busy_ns >= 0.0);
        }
        let b = &rep.buffers[0];
        prop_assert!(b.llc_misses <= b.loads);
        prop_assert!((0.0..=1.0).contains(&b.llc_miss_ratio));
        prop_assert!(b.stall_ns >= 0.0);
    }

    /// Interleave splits pages near-evenly when nodes have room.
    #[test]
    fn interleave_is_even(mib in 2u64..2048) {
        let machine = Arc::new(Machine::knl_snc4_flat());
        let mut mm = MemoryManager::new(machine);
        let nodes = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let id = mm.alloc(mib << 20, AllocPolicy::Interleave(nodes.clone())).expect("fits");
        let r = mm.region(id).expect("live");
        let per: Vec<u64> = nodes.iter().map(|&n| r.bytes_on(n)).collect();
        let max = *per.iter().max().expect("nonempty");
        let min = *per.iter().min().expect("nonempty");
        // Within one round-robin stripe of each other.
        prop_assert!(max - min <= hetmem_memsim::PAGE_SIZE * (mib / 4 + 1),
            "uneven interleave: {per:?}");
        prop_assert_eq!(per.iter().sum::<u64>(), r.size);
    }
}
