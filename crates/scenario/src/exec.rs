//! Executes a parsed scenario against the simulator.

use crate::parse::{Command, Discovery, Scenario};
use hetmem_alloc::{AllocRequest, HetAllocator};
use hetmem_bitmap::Bitmap;
use hetmem_core::MemAttrs;
use hetmem_federation::{FederatedLease, Federation, FederationConfig};
use hetmem_guidance::{GuidanceEngine, GuidancePolicy, GuidanceStats, SamplerConfig};
use hetmem_memsim::{AccessEngine, BufferAccess, MemoryManager, Phase, RegionId};
use hetmem_profile::Profiler;
use hetmem_service::wire::Request;
use hetmem_service::{Broker, LeaseId, RobustnessStats, TenantId, TenantSpec, TenantStats};
use hetmem_snapshot::{FederatedSnapshot, Snapshot, WireFrame, WireLog};
use hetmem_telemetry::{Summary, TelemetrySink};
use hetmem_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Execution failure. Statement-level failures carry the 1-based
/// source line of the statement that caused them and the buffer name
/// involved, so `hetmem-run` can point at the scenario file.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The `machine` statement named an unknown platform.
    UnknownMachine(String),
    /// The initiator cpuset failed to parse.
    BadInitiator(String),
    /// Attribute discovery failed.
    Discovery(String),
    /// An allocation (or an operation reported through one, like a
    /// failed rebalance) failed.
    Alloc {
        /// Buffer name.
        name: String,
        /// Source line of the failing statement.
        line: usize,
        /// The underlying failure.
        message: String,
    },
    /// An explicit `migrate` failed.
    Migrate {
        /// Buffer name.
        name: String,
        /// Source line of the failing statement.
        line: usize,
        /// The underlying failure.
        message: String,
    },
    /// A statement referenced an unknown buffer.
    UnknownBuffer {
        /// The name that did not resolve.
        name: String,
        /// Source line of the failing statement.
        line: usize,
    },
    /// A `serve`/`tenant` statement was misused, or the broker refused
    /// an operation in served mode.
    Service {
        /// The tenant, buffer, or statement name involved.
        name: String,
        /// Source line of the failing statement.
        line: usize,
        /// The underlying failure.
        message: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownMachine(m) => {
                write!(f, "unknown machine {m:?} (known: {})", crate::PLATFORM_NAMES.join(", "))
            }
            ExecError::BadInitiator(e) => write!(f, "bad initiator cpuset: {e}"),
            ExecError::Discovery(e) => write!(f, "discovery failed: {e}"),
            ExecError::Alloc { name, line, message } => {
                write!(f, "line {line}: alloc {name:?} failed: {message}")
            }
            ExecError::Migrate { name, line, message } => {
                write!(f, "line {line}: migrate {name:?} failed: {message}")
            }
            ExecError::UnknownBuffer { name, line } => {
                write!(f, "line {line}: unknown buffer {name:?}")
            }
            ExecError::Service { name, line, message } => {
                write!(f, "line {line}: service {name:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// One executed phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase name.
    pub name: String,
    /// Time, ns. For guided phases this includes sampling overhead
    /// and mid-phase migration costs.
    pub time_ns: f64,
    /// Aggregate achieved bandwidth, MiB/s.
    pub bw_mbps: f64,
}

/// Knobs for [`execute_with_options`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Enable online guidance for every phase, as if the scenario
    /// started with `guidance <period> <criterion>`. A `guidance`
    /// statement inside the scenario replaces these settings.
    pub guidance: Option<(u64, hetmem_core::AttrId)>,
    /// Record the served request stream as a `hetmem-snapshot` wire
    /// log (the `--record` backend of `hetmem-run`). The scenario must
    /// run in served mode with the full-machine initiator, and may not
    /// contain phases or `global` allocations — only state transitions
    /// expressible over the wire protocol replay byte-for-byte. With a
    /// `snapshot` stanza, recording starts at the checkpoint so the
    /// log continues exactly where the snapshot leaves off; without
    /// one it starts at `serve`. The finished log (trailer included)
    /// is returned in [`ScenarioReport::wire_log`].
    pub record: bool,
}

/// The full scenario outcome.
pub struct ScenarioReport {
    /// Per-phase results, in execution order.
    pub phases: Vec<PhaseOutcome>,
    /// Migration costs paid, ns, in order (explicit `migrate` and
    /// daemon rebalances combined; guided mid-phase migrations are
    /// inside their phase's time instead).
    pub migrations_ns: Vec<f64>,
    /// Actions the tiering daemon took across `rebalance` statements.
    pub tiering_actions: Vec<hetmem_alloc::tiering::TieringAction>,
    /// Lifetime counters of the guidance engine, when one ran.
    pub guidance: Option<GuidanceStats>,
    /// Final placement of each live buffer.
    pub final_placements: Vec<(String, Vec<(NodeId, u64)>)>,
    /// The profiler, loaded with every phase (for summaries/objects).
    pub profiler: Profiler,
    /// Total simulated time (phases + migrations), ns.
    pub total_ns: f64,
    /// Per-tenant standing when the scenario ran in served mode
    /// (`serve` statement); empty otherwise.
    pub tenants: Vec<TenantStats>,
    /// Lease-lifecycle counters (expirations, revocations, reclaimed
    /// bytes) when the scenario ran in served mode; `None` otherwise.
    pub robustness: Option<RobustnessStats>,
    /// The recorded wire log when [`ExecOptions::record`] was set,
    /// ending in a trailer with the final broker state and the
    /// telemetry summary of the recorded segment; `None` otherwise.
    pub wire_log: Option<WireLog>,
    /// Federation counters when the scenario ran under a `federate`
    /// statement; `None` otherwise.
    pub federation: Option<FederationSummary>,
}

/// What a federated scenario run did, beyond the per-buffer results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederationSummary {
    /// Member broker count.
    pub members: u32,
    /// Leases that committed at least one remote part.
    pub spilled_leases: u64,
    /// Digest merges applied across all gossip rounds.
    pub digest_merges: u64,
    /// Fast-tier bytes across every granted lease part.
    pub fast_bytes: u64,
    /// Total bytes granted across every lease part.
    pub granted_bytes: u64,
}

/// Runs a scenario; deterministic like everything else.
pub fn execute(scenario: &Scenario) -> Result<ScenarioReport, ExecError> {
    execute_with_sink(scenario, TelemetrySink::disabled())
}

/// [`execute`] with every allocation decision, migration, phase span
/// and occupancy change streamed into `sink` (the `--trace` backend
/// of `hetmem-run`).
pub fn execute_with_sink(
    scenario: &Scenario,
    sink: TelemetrySink,
) -> Result<ScenarioReport, ExecError> {
    execute_with_options(scenario, sink, ExecOptions::default())
}

/// [`execute_with_sink`] with extra execution options (the
/// `--guidance` backend of `hetmem-run`).
pub fn execute_with_options(
    scenario: &Scenario,
    sink: TelemetrySink,
    options: ExecOptions,
) -> Result<ScenarioReport, ExecError> {
    let machine = crate::machine_by_name(&scenario.machine)
        .ok_or_else(|| ExecError::UnknownMachine(scenario.machine.clone()))?;
    let machine = Arc::new(machine);
    let mut initiator: Bitmap = scenario
        .initiator
        .parse()
        .map_err(|e: hetmem_bitmap::ParseBitmapError| ExecError::BadInitiator(e.to_string()))?;
    // Clamp an unbounded initiator to the machine's PUs.
    initiator.and_assign(machine.topology().machine_cpuset());

    let attrs: Arc<MemAttrs> = match scenario.discovery {
        Discovery::Firmware => Arc::new(
            hetmem_core::discovery::from_firmware(&machine, true)
                .map_err(|e| ExecError::Discovery(e.to_string()))?,
        ),
        Discovery::Benchmarks => Arc::new(
            hetmem_membench::feed_attrs(
                &machine,
                &hetmem_membench::BenchOptions { include_remote: true, ..Default::default() },
            )
            .map_err(|e| ExecError::Discovery(e.to_string()))?,
        ),
    };
    let mut engine = AccessEngine::new(machine.clone());
    engine.set_sink(sink.clone());
    let mut allocator = HetAllocator::new(attrs.clone(), MemoryManager::new(machine.clone()));
    allocator.set_sink(sink.clone());
    let mut profiler = Profiler::new(machine.clone());

    let make_guidance = |period: u64, criterion: hetmem_core::AttrId| {
        let mut g = GuidanceEngine::new(
            attrs.clone(),
            GuidancePolicy { criterion, ..Default::default() },
            SamplerConfig { period, ..Default::default() },
        );
        g.set_sink(sink.clone());
        g
    };
    let mut guidance: Option<GuidanceEngine> =
        options.guidance.map(|(period, criterion)| make_guidance(period, criterion));

    // Served mode (`serve` statement): allocations and phases go
    // through the multi-tenant broker instead of the single-tenant
    // allocator. One scenario is one service tick — phases stay in
    // one contention epoch, so tenants touching the same node charge
    // each other stalls.
    let mut broker: Option<Broker> = None;
    // Federated mode (`federate` statement): N shard brokers instead
    // of one. Tenants home round-robin in registration order; leases
    // may span brokers.
    let mut federation: Option<Federation> = None;
    let mut fed_homes: BTreeMap<String, u32> = BTreeMap::new();
    let mut fed_leases: BTreeMap<String, FederatedLease> = BTreeMap::new();
    let mut current_home: Option<(String, u32)> = None;
    let mut fed_spilled = 0u64;
    let mut fed_merges = 0u64;
    let mut fed_granted = 0u64;
    let mut fed_fast = 0u64;
    let mut tenant_ids: BTreeMap<String, TenantId> = BTreeMap::new();
    let mut current_tenant: Option<(String, TenantId)> = None;
    let mut lease_ids: BTreeMap<String, LeaseId> = BTreeMap::new();
    // Which tenant owns each served buffer, for synthesizing `free`
    // frames in record mode.
    let mut lease_owners: BTreeMap<String, String> = BTreeMap::new();

    // Record mode (`--record`): frames accumulate here and the
    // telemetry collector captures exactly the recorded segment's
    // events for the trailer summary. With a `snapshot` stanza,
    // `recording` flips on at the checkpoint.
    let has_snapshot_stanza =
        scenario.commands.iter().any(|s| matches!(s.cmd, Command::Snapshot { .. }));
    let mut wire_log: Option<WireLog> = None;
    let mut rec_collector = if options.record { Some(sink.collector()) } else { None };
    let mut recording = false;

    let mut buffers: BTreeMap<String, RegionId> = BTreeMap::new();
    let mut phases = Vec::new();
    let mut migrations_ns = Vec::new();
    let mut tiering_actions = Vec::new();
    let mut daemon =
        hetmem_alloc::tiering::TieringDaemon::new(hetmem_alloc::tiering::TieringPolicy::default());

    for stmt in &scenario.commands {
        let line = stmt.line;
        match &stmt.cmd {
            Command::Serve { policy, shards, guided, budget_ms } => {
                let misuse = |message: &str| ExecError::Service {
                    name: "serve".into(),
                    line,
                    message: message.into(),
                };
                if broker.is_some() {
                    return Err(misuse("serve given twice"));
                }
                if federation.is_some() {
                    return Err(misuse("serve and federate are mutually exclusive"));
                }
                if !buffers.is_empty() {
                    return Err(misuse("serve must come before the first alloc"));
                }
                if guidance.is_some() {
                    return Err(misuse("guidance and served mode are mutually exclusive"));
                }
                if options.record && *shards > 1 {
                    return Err(misuse(
                        "recording requires the single-dispatcher plane (shards=1): \
                         wire-log replay is serial",
                    ));
                }
                if options.record && initiator != *machine.topology().machine_cpuset() {
                    return Err(misuse(
                        "record mode needs the full-machine initiator (replayed requests \
                         place against the whole machine)",
                    ));
                }
                if options.record && *guided {
                    return Err(misuse(
                        "recording cannot capture guided service (guided=on): the \
                         guidance plane is an online estimator, not replayable history",
                    ));
                }
                let mut b = Broker::new(machine.clone(), attrs.clone(), *policy);
                b.set_sink(sink.clone());
                // Model the dispatch plane width the way the sharded
                // server does: the broker folds `shards` ticks into
                // each contention epoch.
                b.set_dispatch_planes(*shards);
                if *guided {
                    let mut cfg = hetmem_service::GuidedConfig::default();
                    if let Some(ms) = budget_ms {
                        cfg.budget_ns = *ms as f64 * 1.0e6;
                    }
                    b.enable_guidance(cfg);
                }
                broker = Some(b);
                if options.record {
                    wire_log = Some(WireLog::new(machine.name(), *policy));
                    recording = !has_snapshot_stanza;
                }
            }
            Command::Federate { members, spill, policy } => {
                let misuse = |message: &str| ExecError::Service {
                    name: "federate".into(),
                    line,
                    message: message.into(),
                };
                if federation.is_some() {
                    return Err(misuse("federate given twice"));
                }
                if broker.is_some() {
                    return Err(misuse("serve and federate are mutually exclusive"));
                }
                if !buffers.is_empty() {
                    return Err(misuse("federate must come before the first alloc"));
                }
                if guidance.is_some() {
                    return Err(misuse("guidance and federated mode are mutually exclusive"));
                }
                if options.record {
                    return Err(misuse(
                        "federated scenarios cannot be recorded by hetmem-run (--record \
                         drives one wire log; the federation harness records per-broker \
                         logs instead)",
                    ));
                }
                let mut fed = Federation::new(
                    machine.clone(),
                    attrs.clone(),
                    &FederationConfig {
                        members: *members,
                        policy: *policy,
                        spill: *spill,
                        record: false,
                    },
                );
                fed.set_federation_sink(sink.clone());
                federation = Some(fed);
            }
            Command::Tenant { name, priority } => {
                if let Some(fed) = federation.as_ref() {
                    let home = match fed_homes.get(name) {
                        Some(&home) => home,
                        None => {
                            let home = fed_homes.len() as u32 % fed.members();
                            fed.register(name, *priority).map_err(|e| ExecError::Service {
                                name: name.clone(),
                                line,
                                message: e.to_string(),
                            })?;
                            fed_homes.insert(name.clone(), home);
                            home
                        }
                    };
                    current_home = Some((name.clone(), home));
                    continue;
                }
                let Some(broker) = broker.as_ref() else {
                    return Err(ExecError::Service {
                        name: name.clone(),
                        line,
                        message: "tenant needs served mode (put `serve` first)".into(),
                    });
                };
                let id = match tenant_ids.get(name) {
                    Some(&id) => id,
                    None => {
                        let id = broker
                            .register(TenantSpec::new(name.clone()).priority(*priority))
                            .map_err(|e| ExecError::Service {
                                name: name.clone(),
                                line,
                                message: e.to_string(),
                            })?;
                        tenant_ids.insert(name.clone(), id);
                        if recording {
                            if let Some(log) = wire_log.as_mut() {
                                log.frames.push(WireFrame::Request {
                                    epoch: broker.epoch(),
                                    json: Request::Register {
                                        tenant: name.clone(),
                                        priority: *priority,
                                        quota: Vec::new(),
                                        reserve: Vec::new(),
                                    }
                                    .to_json(),
                                });
                            }
                        }
                        id
                    }
                };
                current_tenant = Some((name.clone(), id));
            }
            Command::Alloc { name, size, criterion, fallback, global, ttl } => {
                let mut req = AllocRequest::new(*size)
                    .criterion(*criterion)
                    .initiator(&initiator)
                    .fallback(*fallback)
                    .label(name.clone());
                if *global {
                    req = req.any_locality();
                }
                if let Some(fed) = federation.as_ref() {
                    let Some((tenant_name, home)) = current_home.as_ref() else {
                        return Err(ExecError::Service {
                            name: name.clone(),
                            line,
                            message: "no tenant selected (put a `tenant` statement first)".into(),
                        });
                    };
                    if *global {
                        return Err(ExecError::Service {
                            name: name.clone(),
                            line,
                            message: "global allocations are not federated (digest ranking \
                                      serves whole-machine locality only)"
                                .into(),
                        });
                    }
                    let lease = fed
                        .acquire(*home, tenant_name, *size, *criterion, *fallback, Some(name), *ttl)
                        .map_err(|e| ExecError::Service {
                            name: name.clone(),
                            line,
                            message: e.to_string(),
                        })?;
                    fed_spilled += lease.spilled(*home) as u64;
                    fed_granted += lease.size();
                    fed_fast += lease.fast_bytes();
                    fed_leases.insert(name.clone(), lease);
                    continue;
                }
                if let Some(broker) = broker.as_ref() {
                    let Some((tenant_name, tenant)) = current_tenant.as_ref() else {
                        return Err(ExecError::Service {
                            name: name.clone(),
                            line,
                            message: "no tenant selected (put a `tenant` statement first)".into(),
                        });
                    };
                    if recording && *global {
                        return Err(ExecError::Service {
                            name: name.clone(),
                            line,
                            message: "global allocations cannot be recorded (the wire \
                                      protocol serves whole-machine locality only)"
                                .into(),
                        });
                    }
                    let lease = broker.acquire_with_ttl(*tenant, &req, *ttl).map_err(|e| {
                        ExecError::Service { name: name.clone(), line, message: e.to_string() }
                    })?;
                    buffers.insert(name.clone(), lease.region());
                    lease_ids.insert(name.clone(), lease.id());
                    lease_owners.insert(name.clone(), tenant_name.clone());
                    if recording {
                        if let Some(log) = wire_log.as_mut() {
                            log.frames.push(WireFrame::Request {
                                epoch: broker.epoch(),
                                json: Request::Alloc {
                                    tenant: tenant_name.clone(),
                                    size: *size,
                                    criterion: *criterion,
                                    fallback: *fallback,
                                    label: Some(name.clone()),
                                    ttl: *ttl,
                                }
                                .to_json(),
                            });
                        }
                    }
                } else {
                    if ttl.is_some() {
                        return Err(ExecError::Service {
                            name: name.clone(),
                            line,
                            message: "ttl= needs served mode (put `serve` first)".into(),
                        });
                    }
                    let result = allocator.alloc(&req);
                    let id = result.map_err(|e| ExecError::Alloc {
                        name: name.clone(),
                        line,
                        message: e.to_string(),
                    })?;
                    profiler.track(allocator.memory(), id, name, *size);
                    buffers.insert(name.clone(), id);
                }
            }
            Command::Free(name) => {
                if let Some(fed) = federation.as_ref() {
                    let lease = fed_leases
                        .remove(name)
                        .ok_or_else(|| ExecError::UnknownBuffer { name: name.clone(), line })?;
                    fed.free(lease).map_err(|e| ExecError::Service {
                        name: name.clone(),
                        line,
                        message: e.to_string(),
                    })?;
                    continue;
                }
                if let Some(broker) = broker.as_ref() {
                    let lease = lease_ids
                        .remove(name)
                        .ok_or_else(|| ExecError::UnknownBuffer { name: name.clone(), line })?;
                    buffers.remove(name);
                    let owner = lease_owners.remove(name);
                    broker.release_by_id(lease).map_err(|e| ExecError::Service {
                        name: name.clone(),
                        line,
                        message: e.to_string(),
                    })?;
                    if recording {
                        if let (Some(log), Some(owner)) = (wire_log.as_mut(), owner) {
                            log.frames.push(WireFrame::Request {
                                epoch: broker.epoch(),
                                json: Request::Free { tenant: owner, lease: lease.0 }.to_json(),
                            });
                        }
                    }
                    continue;
                }
                let id = buffers
                    .remove(name)
                    .ok_or_else(|| ExecError::UnknownBuffer { name: name.clone(), line })?;
                allocator.free(id);
                daemon.forget(id);
                if let Some(g) = guidance.as_mut() {
                    g.forget(id);
                }
            }
            Command::Migrate { name, criterion } => {
                if federation.is_some() {
                    return Err(ExecError::Service {
                        name: name.clone(),
                        line,
                        message: "migrate is not available in federated mode (leases are \
                                  pinned)"
                            .into(),
                    });
                }
                if broker.is_some() {
                    return Err(ExecError::Service {
                        name: name.clone(),
                        line,
                        message: "migrate is not available in served mode (leases are pinned)"
                            .into(),
                    });
                }
                let id = *buffers
                    .get(name)
                    .ok_or_else(|| ExecError::UnknownBuffer { name: name.clone(), line })?;
                let (_, report) =
                    allocator.migrate_to_best(id, *criterion, &initiator).map_err(|e| {
                        ExecError::Migrate { name: name.clone(), line, message: e.to_string() }
                    })?;
                migrations_ns.push(report.cost_ns);
            }
            Command::Phase(spec) => {
                if federation.is_some() {
                    return Err(ExecError::Service {
                        name: spec.name.clone(),
                        line,
                        message: "phases are not federated (traffic charging spans one \
                                  broker; use served mode for phases)"
                            .into(),
                    });
                }
                let mut accesses = Vec::with_capacity(spec.accesses.len());
                for a in &spec.accesses {
                    let id = *buffers
                        .get(&a.buffer)
                        .ok_or_else(|| ExecError::UnknownBuffer { name: a.buffer.clone(), line })?;
                    accesses.push(BufferAccess {
                        region: id,
                        bytes_read: a.bytes_read,
                        bytes_written: a.bytes_written,
                        pattern: a.pattern,
                        hot_fraction: a.hot_fraction,
                    });
                }
                let phase = Phase {
                    name: spec.name.clone(),
                    accesses,
                    threads: scenario.threads,
                    initiator: initiator.clone(),
                    compute_ns: spec.compute_ns,
                };
                if let Some(broker) = broker.as_ref() {
                    if options.record {
                        return Err(ExecError::Service {
                            name: spec.name.clone(),
                            line,
                            message: "phases cannot be recorded (--record covers the \
                                      service plane only)"
                                .into(),
                        });
                    }
                    let Some((tenant_name, tenant)) = current_tenant.as_ref() else {
                        return Err(ExecError::Service {
                            name: spec.name.clone(),
                            line,
                            message: "no tenant selected (put a `tenant` statement first)".into(),
                        });
                    };
                    let served =
                        broker.run_phase(*tenant, &phase).map_err(|e| ExecError::Service {
                            name: tenant_name.clone(),
                            line,
                            message: e.to_string(),
                        })?;
                    let time_ns = served.time_ns();
                    let bytes: u64 = served
                        .report
                        .per_node
                        .values()
                        .map(|t| t.bytes_read + t.bytes_written)
                        .sum();
                    phases.push(PhaseOutcome {
                        name: spec.name.clone(),
                        time_ns,
                        bw_mbps: if time_ns > 0.0 {
                            bytes as f64 / (1 << 20) as f64 / (time_ns / 1e9)
                        } else {
                            0.0
                        },
                    });
                    profiler.record(served.report);
                    continue;
                }
                if let Some(g) = guidance.as_mut() {
                    let report = g.run_phase(&engine, allocator.memory_mut(), &phase);
                    let bytes: u64 = report.slices.iter().map(|s| s.total_bytes()).sum();
                    let time_ns = report.time_ns();
                    phases.push(PhaseOutcome {
                        name: spec.name.clone(),
                        time_ns,
                        bw_mbps: if time_ns > 0.0 {
                            bytes as f64 / (1 << 20) as f64 / (time_ns / 1e9)
                        } else {
                            0.0
                        },
                    });
                    for slice in report.slices {
                        daemon.observe(&slice);
                        profiler.record(slice);
                    }
                } else {
                    let report = engine.run_phase(allocator.memory(), &phase);
                    phases.push(PhaseOutcome {
                        name: spec.name.clone(),
                        time_ns: report.time_ns,
                        bw_mbps: report.total_bw_mbps(),
                    });
                    daemon.observe(&report);
                    profiler.record(report);
                }
            }
            Command::Rebalance { criterion } => {
                if federation.is_some() {
                    return Err(ExecError::Service {
                        name: "rebalance".into(),
                        line,
                        message: "rebalance is not available in federated mode".into(),
                    });
                }
                if broker.is_some() {
                    return Err(ExecError::Service {
                        name: "rebalance".into(),
                        line,
                        message: "rebalance is not available in served mode".into(),
                    });
                }
                let actions = daemon
                    .rebalance_with_criterion(&mut allocator, &initiator, *criterion)
                    .map_err(|e| ExecError::Alloc {
                        name: "rebalance".into(),
                        line,
                        message: e.to_string(),
                    })?;
                for a in &actions {
                    let cost = match a {
                        hetmem_alloc::tiering::TieringAction::Promoted { cost_ns, .. }
                        | hetmem_alloc::tiering::TieringAction::Demoted { cost_ns, .. } => *cost_ns,
                    };
                    migrations_ns.push(cost);
                }
                tiering_actions.extend(actions);
            }
            Command::Guidance { period, criterion } => {
                if federation.is_some() {
                    return Err(ExecError::Service {
                        name: "guidance".into(),
                        line,
                        message: "guidance and federated mode are mutually exclusive".into(),
                    });
                }
                if broker.is_some() {
                    return Err(ExecError::Service {
                        name: "guidance".into(),
                        line,
                        message: "guidance and served mode are mutually exclusive".into(),
                    });
                }
                guidance = Some(make_guidance(*period, *criterion));
            }
            Command::Fault { kind, degraded } => {
                if let Some(fed) = federation.as_ref() {
                    // A tier fault hits the machine, not one shard:
                    // every member degrades (or restores) its slice.
                    for member in fed.brokers() {
                        member.set_tier_degraded(*kind, *degraded);
                    }
                    continue;
                }
                let Some(broker) = broker.as_ref() else {
                    return Err(ExecError::Service {
                        name: "fault".into(),
                        line,
                        message: "fault needs served mode (put `serve` first)".into(),
                    });
                };
                broker.set_tier_degraded(*kind, *degraded);
                if recording {
                    if let Some(log) = wire_log.as_mut() {
                        log.frames.push(WireFrame::TierFault {
                            epoch: broker.epoch(),
                            kind: *kind,
                            degraded: *degraded,
                        });
                    }
                }
            }
            Command::Tick { epochs } => {
                if let Some(fed) = federation.as_ref() {
                    // Gossip once per epoch so digests stay at most
                    // one tick stale, then advance every member in
                    // lockstep (TTL sweeps included).
                    for _ in 0..*epochs {
                        fed_merges += fed.gossip();
                        fed.advance_epoch();
                    }
                    fed_leases.retain(|_, lease| {
                        lease
                            .parts
                            .iter()
                            .any(|p| fed.broker(p.broker).placement(LeaseId(p.lease)).is_some())
                    });
                    continue;
                }
                let Some(broker) = broker.as_ref() else {
                    return Err(ExecError::Service {
                        name: "tick".into(),
                        line,
                        message: "tick needs served mode (put `serve` first)".into(),
                    });
                };
                for _ in 0..*epochs {
                    broker.advance_epoch();
                }
                // Forget buffers whose lease the sweep reclaimed, so a
                // later phase reports "unknown buffer" instead of
                // touching a freed region.
                lease_ids.retain(|name, id| {
                    let live = broker.placement(*id).is_some();
                    if !live {
                        buffers.remove(name);
                        lease_owners.remove(name);
                    }
                    live
                });
            }
            Command::Snapshot { epoch, file } => {
                if let Some(fed) = federation.as_ref() {
                    let current = fed.epoch();
                    if *epoch < current {
                        return Err(ExecError::Service {
                            name: file.clone(),
                            line,
                            message: format!(
                                "snapshot epoch {epoch} is in the past (clock is at {current})"
                            ),
                        });
                    }
                    for _ in current..*epoch {
                        fed_merges += fed.gossip();
                        fed.advance_epoch();
                    }
                    fed_leases.retain(|_, lease| {
                        lease
                            .parts
                            .iter()
                            .any(|p| fed.broker(p.broker).placement(LeaseId(p.lease)).is_some())
                    });
                    let snap = FederatedSnapshot::capture(fed.brokers());
                    snap.write_file(std::path::Path::new(file)).map_err(|e| {
                        ExecError::Service { name: file.clone(), line, message: e.to_string() }
                    })?;
                    continue;
                }
                let Some(broker) = broker.as_ref() else {
                    return Err(ExecError::Service {
                        name: "snapshot".into(),
                        line,
                        message: "snapshot needs served mode (put `serve` first)".into(),
                    });
                };
                let current = broker.epoch();
                if *epoch < current {
                    return Err(ExecError::Service {
                        name: file.clone(),
                        line,
                        message: format!(
                            "snapshot epoch {epoch} is in the past (clock is at {current})"
                        ),
                    });
                }
                for _ in current..*epoch {
                    broker.advance_epoch();
                }
                lease_ids.retain(|name, id| {
                    let live = broker.placement(*id).is_some();
                    if !live {
                        buffers.remove(name);
                        lease_owners.remove(name);
                    }
                    live
                });
                if options.record {
                    // Recording (re)starts at the checkpoint: the log
                    // pairs with this snapshot, and the trailer summary
                    // covers exactly the events after this boundary.
                    if let Some(c) = rec_collector.as_mut() {
                        c.drain_sorted();
                    }
                    if let Some(log) = wire_log.as_mut() {
                        log.frames.clear();
                    }
                    recording = true;
                }
                let snap = Snapshot::capture(broker, None);
                snap.write_file(std::path::Path::new(file)).map_err(|e| ExecError::Service {
                    name: file.clone(),
                    line,
                    message: e.to_string(),
                })?;
            }
        }
    }

    if options.record && broker.is_none() {
        // Point at the first statement: recording covers the whole
        // run, so the `serve` belongs before everything else.
        let line = scenario.commands.first().map_or(0, |s| s.line);
        return Err(ExecError::Service {
            name: "record".into(),
            line,
            message: "--record needs a served scenario (add a `serve` statement)".into(),
        });
    }
    if let (Some(log), Some(broker), Some(collector)) =
        (wire_log.as_mut(), broker.as_ref(), rec_collector.as_mut())
    {
        let events: Vec<_> = collector.drain_sorted().into_iter().map(|e| e.event).collect();
        let summary = Summary::from_events(&events).render();
        let mut state = Vec::new();
        hetmem_snapshot::encode_state(&broker.snapshot_state(), &mut state);
        log.frames.push(WireFrame::Trailer { epoch: broker.epoch(), state, summary });
    }

    if let Some(fed) = federation.as_ref() {
        let final_placements = fed_leases
            .iter()
            .map(|(name, lease)| {
                let mut placement = Vec::new();
                for part in &lease.parts {
                    placement.extend(
                        fed.broker(part.broker).placement(LeaseId(part.lease)).unwrap_or_default(),
                    );
                }
                (name.clone(), placement)
            })
            .collect();
        let total_ns =
            phases.iter().map(|p| p.time_ns).sum::<f64>() + migrations_ns.iter().sum::<f64>();
        return Ok(ScenarioReport {
            phases,
            migrations_ns,
            final_placements,
            profiler,
            total_ns,
            tiering_actions,
            guidance: None,
            robustness: None,
            tenants: Vec::new(),
            wire_log: None,
            federation: Some(FederationSummary {
                members: fed.members(),
                spilled_leases: fed_spilled,
                digest_merges: fed_merges,
                fast_bytes: fed_fast,
                granted_bytes: fed_granted,
            }),
        });
    }
    let final_placements = match &broker {
        Some(broker) => lease_ids
            .iter()
            .map(|(name, &id)| (name.clone(), broker.placement(id).unwrap_or_default()))
            .collect(),
        None => buffers
            .iter()
            .map(|(name, &id)| {
                (
                    name.clone(),
                    allocator.memory().region(id).map(|r| r.placement.clone()).unwrap_or_default(),
                )
            })
            .collect(),
    };
    let total_ns =
        phases.iter().map(|p| p.time_ns).sum::<f64>() + migrations_ns.iter().sum::<f64>();
    Ok(ScenarioReport {
        phases,
        migrations_ns,
        final_placements,
        profiler,
        total_ns,
        tiering_actions,
        guidance: guidance.map(|g| *g.stats()),
        robustness: broker.as_ref().map(|b| b.robustness()),
        tenants: broker.map(|b| b.tenants()).unwrap_or_default(),
        wire_log,
        federation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const CONFLICT: &str = r#"
machine knl-flat
initiator 0-15
threads 16
alloc hot 3GiB bandwidth spill
alloc cold 3GiB bandwidth spill
phase p1
  read hot 12GiB seq
  write hot 6GiB seq
end
free cold
migrate hot bandwidth
phase p2
  read hot 12GiB seq
  write hot 6GiB seq
end
"#;

    #[test]
    fn conflict_scenario_runs_and_migration_helps() {
        let s = parse(CONFLICT).expect("valid");
        let r = execute(&s).expect("runs");
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.migrations_ns.len(), 1);
        // hot spilled in p1 (cold grabbed MCDRAM first? no — hot first).
        // hot got MCDRAM first, so p1 is already fast; cold spilled.
        // After free+migrate the second phase is at least as fast.
        assert!(r.phases[1].time_ns <= r.phases[0].time_ns * 1.01);
        assert_eq!(r.final_placements.len(), 1);
        assert_eq!(r.final_placements[0].0, "hot");
        assert!(r.guidance.is_none());
    }

    #[test]
    fn unknown_machine_and_buffer_errors() {
        let s = parse("machine nope\n").expect("parses");
        assert!(matches!(execute(&s), Err(ExecError::UnknownMachine(_))));

        let s = parse("machine knl-flat\nfree ghost\n").expect("parses");
        match execute(&s) {
            Err(ExecError::UnknownBuffer { name, line }) => {
                assert_eq!(name, "ghost");
                assert_eq!(line, 2);
            }
            other => panic!("expected unknown buffer, got {:?}", other.map(|_| ())),
        }

        let s = parse("machine knl-flat\nphase p\n  read ghost 1GiB seq\nend\n").expect("parses");
        match execute(&s) {
            // The phase statement starts on line 2.
            Err(ExecError::UnknownBuffer { name, line }) => {
                assert_eq!(name, "ghost");
                assert_eq!(line, 2);
            }
            other => panic!("expected unknown buffer, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn alloc_failure_is_reported() {
        let s = parse("machine knl-flat\ninitiator 0-15\nalloc big 100GiB latency strict\n")
            .expect("parses");
        match execute(&s) {
            Err(ExecError::Alloc { name, line, .. }) => {
                assert_eq!(name, "big");
                assert_eq!(line, 3);
            }
            other => panic!("expected alloc failure, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn error_display_points_at_source_line() {
        let s = parse("machine knl-flat\n\nfree ghost\n").expect("parses");
        let e = execute(&s).map(|_| ()).expect_err("unknown buffer");
        let text = e.to_string();
        assert!(text.contains("line 3"), "{text}");
        assert!(text.contains("ghost"), "{text}");
    }

    #[test]
    fn benchmark_discovery_scenario() {
        let s = parse(
            "machine xeon\ninitiator 0-19\nthreads 20\ndiscover benchmarks\n\
             alloc x 1GiB latency\nphase p\n  read x 4GiB random\nend\n",
        )
        .expect("parses");
        let r = execute(&s).expect("runs");
        assert_eq!(r.phases.len(), 1);
        assert!(r.total_ns > 0.0);
        // Latency criterion on the Xeon = DRAM node 0.
        assert_eq!(r.final_placements[0].1[0].0, NodeId(0));
    }

    #[test]
    fn profiler_is_populated() {
        let s = parse(
            "machine xeon\ninitiator 0-19\nthreads 20\nalloc a 8GiB capacity\n\
             phase chase\n  read a 8GiB chase\nend\n",
        )
        .expect("parses");
        let r = execute(&s).expect("runs");
        let summary = r.profiler.summary();
        assert_eq!(summary.sensitivity, hetmem_profile::Sensitivity::Latency);
        let objects = r.profiler.object_report();
        assert_eq!(objects.len(), 1);
        assert_eq!(objects[0].site, "a");
    }

    #[test]
    fn unbounded_initiator_is_clamped() {
        let s = parse("machine knl-flat\nalloc a 1GiB capacity\n").expect("parses");
        let r = execute(&s).expect("runs");
        assert_eq!(r.final_placements.len(), 1);
    }

    const SERVED: &str = r#"
machine knl-flat
initiator 0-15
threads 16
serve

tenant graph latency
alloc frontier 512MiB bandwidth spill
phase bfs
  read frontier 8GiB random
end

tenant stream batch
alloc vectors 14GiB bandwidth spill
phase triad
  read vectors 8GiB seq
  write vectors 4GiB seq
end

free vectors
free frontier
"#;

    #[test]
    fn served_scenario_arbitrates_between_tenants() {
        let s = parse(SERVED).expect("valid");
        let r = execute(&s).expect("runs");
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.tenants.len(), 2, "both tenants registered");
        let graph = r.tenants.iter().find(|t| t.name == "graph").expect("graph");
        let stream = r.tenants.iter().find(|t| t.name == "stream").expect("stream");
        assert_eq!(graph.admits, 1);
        assert_eq!(stream.admits, 1);
        // The batch tenant asked for nearly the whole HBM tier under
        // fair share with a latency tenant present: it got clamped.
        assert!(stream.clamps > 0, "{stream:?}");
        // Everything was freed; placements of freed leases are gone.
        assert!(r.final_placements.is_empty());
        assert!(r.total_ns > 0.0);
    }

    #[test]
    fn served_mode_misuse_errors_carry_line_and_name() {
        // serve after an alloc.
        let s = parse("machine knl-flat\nalloc a 1GiB capacity\nserve\n").expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, .. }) => {
                assert_eq!(name, "serve");
                assert_eq!(line, 3);
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // tenant without serve.
        let s = parse("machine knl-flat\ntenant graph\n").expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, message }) => {
                assert_eq!(name, "graph");
                assert_eq!(line, 2);
                assert!(message.contains("serve"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // alloc in served mode before any tenant.
        let s = parse("machine knl-flat\nserve\nalloc a 1GiB capacity\n").expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, .. }) => {
                assert_eq!(name, "a");
                assert_eq!(line, 3);
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // migrate is refused in served mode.
        let s = parse(
            "machine knl-flat\nserve\ntenant t\nalloc a 1GiB capacity\nmigrate a bandwidth\n",
        )
        .expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, .. }) => {
                assert_eq!(name, "a");
                assert_eq!(line, 5);
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // The display format points at the source line (PR 2 style).
        let e = execute(&parse("machine knl-flat\n\ntenant x\n").expect("parses"))
            .map(|_| ())
            .expect_err("needs serve");
        let text = e.to_string();
        assert!(text.contains("line 3"), "{text}");
        assert!(text.contains("\"x\""), "{text}");
    }

    const CHAOS: &str = r#"
machine knl-flat
initiator 0-15
threads 16
serve fair-share

tenant app latency
fault degrade hbm
alloc resilient 2GiB bandwidth spill ttl=4
phase degraded
  read resilient 4GiB seq
end

fault restore hbm
alloc fresh 2GiB bandwidth spill
phase recovered
  read fresh 8GiB seq
end

tick 4
free fresh
"#;

    #[test]
    fn chaos_scenario_degrades_expires_and_recovers() {
        let s = parse(CHAOS).expect("valid");
        let r = execute(&s).expect("runs");
        assert_eq!(r.phases.len(), 2);
        // The degraded tier was avoided: the first phase ran from DRAM
        // and the post-restore phase from MCDRAM, so it is faster per
        // byte moved (it moved 2x the bytes in less than 2x the time).
        assert!(
            r.phases[1].bw_mbps > r.phases[0].bw_mbps,
            "recovered {} <= degraded {}",
            r.phases[1].bw_mbps,
            r.phases[0].bw_mbps
        );
        // Four silent ticks outlived the ttl=4 lease: reclaimed.
        let rob = r.robustness.expect("served mode");
        assert_eq!(rob.expired, 1, "{rob:?}");
        assert!(rob.reclaimed_bytes >= 2 << 30, "{rob:?}");
        // `fresh` was freed explicitly and `resilient` expired, so no
        // live placements remain.
        assert!(r.final_placements.is_empty(), "{:?}", r.final_placements);
    }

    #[test]
    fn shipped_chaos_scenario_runs() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/chaos.txt"
        ))
        .expect("scenarios/chaos.txt");
        let r = execute(&parse(&text).expect("parses")).expect("runs");
        assert_eq!(r.phases.len(), 2);
        let rob = r.robustness.expect("served mode");
        assert_eq!(rob.expired, 1, "{rob:?}");
    }

    #[test]
    fn shipped_replay_chaos_scenario_records_and_replays_byte_for_byte() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/replay_chaos.txt"
        ))
        .expect("scenarios/replay_chaos.txt");
        let s = parse(&text).expect("parses");
        let sink = TelemetrySink::with_ring_words(1 << 18);
        let r = execute_with_options(&s, sink, ExecOptions { record: true, ..Default::default() })
            .expect("runs");
        let log = r.wire_log.expect("recorded");
        assert!(
            matches!(log.frames.last(), Some(WireFrame::Trailer { .. })),
            "log ends in a trailer"
        );
        // The shipped stanza checkpoints at epoch 6, mid-degradation.
        let snap =
            hetmem_snapshot::Snapshot::read_file(std::path::Path::new("/tmp/replay_chaos.snap"))
                .expect("snapshot written by the stanza");
        assert_eq!(snap.state.epoch, 6);
        assert!(
            snap.state.degraded.contains(&hetmem_topology::MemoryKind::Hbm),
            "checkpoint taken while HBM is degraded: {:?}",
            snap.state.degraded
        );
        assert!(!snap.state.leases.is_empty(), "leases in flight at the checkpoint");
        let machine = Arc::new(crate::machine_by_name("knl-flat").expect("machine"));
        let attrs = Arc::new(hetmem_core::discovery::from_firmware(&machine, true).expect("attrs"));
        let report = hetmem_snapshot::replay(&snap, &log, machine, attrs).expect("replays");
        assert!(report.requests > 0, "{report:?}");
        assert!(report.control_frames > 0, "{report:?}");
        assert_eq!(report.state_matched, Some(true), "{report:?}");
        assert_eq!(report.summary_matched, Some(true), "{report:?}");
    }

    #[test]
    fn snapshot_stanza_writes_a_restorable_checkpoint() {
        let path = std::env::temp_dir().join("hetmem_snapshot_stanza_test.snap");
        let s = parse(&format!(
            "machine knl-flat\nserve\ntenant t latency\nalloc a 1GiB bandwidth spill\n\
             snapshot epoch=3 file={}\ntick 2\n",
            path.display()
        ))
        .expect("parses");
        execute(&s).expect("runs");
        let snap = hetmem_snapshot::Snapshot::read_file(&path).expect("written");
        assert_eq!(snap.state.epoch, 3);
        assert_eq!(snap.state.tenants.len(), 1);
        assert_eq!(snap.state.leases.len(), 1);
        let machine = Arc::new(crate::machine_by_name("knl-flat").expect("machine"));
        let attrs = Arc::new(hetmem_core::discovery::from_firmware(&machine, true).expect("attrs"));
        let broker = snap.restore(machine, attrs).expect("restores");
        assert_eq!(broker.epoch(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_mode_refuses_unreplayable_statements() {
        let opts = ExecOptions { record: true, ..Default::default() };
        let sink = || TelemetrySink::with_ring_words(1 << 12);
        // Phases cannot be recorded.
        let s = parse(
            "machine knl-flat\nserve\ntenant t\nalloc a 1GiB capacity\n\
             phase p\n  read a 1GiB seq\nend\n",
        )
        .expect("parses");
        match execute_with_options(&s, sink(), opts) {
            Err(ExecError::Service { name, line, message }) => {
                assert_eq!(name, "p");
                assert_eq!(line, 5);
                assert!(message.contains("service plane"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // Global allocations cannot be recorded.
        let s = parse("machine knl-flat\nserve\ntenant t\nalloc a 1GiB latency next global\n")
            .expect("parses");
        match execute_with_options(&s, sink(), opts) {
            Err(ExecError::Service { name, message, .. }) => {
                assert_eq!(name, "a");
                assert!(message.contains("global"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // A restricted initiator is refused at `serve` (wire clients
        // always place against the whole machine).
        let s = parse("machine knl-flat\ninitiator 0-3\nserve\n").expect("parses");
        match execute_with_options(&s, sink(), opts) {
            Err(ExecError::Service { name, message, .. }) => {
                assert_eq!(name, "serve");
                assert!(message.contains("initiator"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // Recording needs a served scenario at all.
        let s = parse("machine knl-flat\nalloc a 1GiB capacity\n").expect("parses");
        match execute_with_options(&s, sink(), opts) {
            Err(ExecError::Service { name, message, .. }) => {
                assert_eq!(name, "record");
                assert!(message.contains("serve"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // A sharded dispatch plane cannot be recorded (replay is
        // serial).
        let s = parse("machine knl-flat\nserve shards=4\n").expect("parses");
        match execute_with_options(&s, sink(), opts) {
            Err(ExecError::Service { name, message, .. }) => {
                assert_eq!(name, "serve");
                assert!(message.contains("single-dispatcher"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // Guided service cannot be recorded: the plane's estimator
        // state is not replayable history.
        let s = parse("machine knl-flat\nserve guided=on\n").expect("parses");
        match execute_with_options(&s, sink(), opts) {
            Err(ExecError::Service { name, line, message }) => {
                assert_eq!(name, "serve");
                assert_eq!(line, 2);
                assert!(message.contains("guided"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn guided_serve_runs_and_reports_sampling_overhead() {
        let s = parse(
            "machine knl-flat\ninitiator 0-15\nthreads 16\n\
             serve fair-share guided=on budget=5\n\
             tenant app latency\nalloc a 1GiB bandwidth spill\n\
             phase p\n  read a 2GiB seq\nend\ntick\n",
        )
        .expect("parses");
        let r = execute_with_sink(&s, TelemetrySink::with_ring_words(1 << 12)).expect("runs");
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.tenants.len(), 1);
    }

    #[test]
    fn serve_shards_folds_ticks_into_epochs() {
        // With `shards=N` the broker's plane clock folds N ticks into
        // one contention epoch, so a served scenario behaves the same
        // whether one dispatcher ticks once or N dispatchers each
        // tick once per round. The scenario itself must still run end
        // to end.
        let s = parse(
            "machine knl-flat\nserve shards=2\ntenant t latency\n\
             alloc a 2GiB bandwidth spill\ntick\ntick\nfree a\n",
        )
        .expect("parses");
        let r = execute(&s).expect("runs");
        assert_eq!(r.tenants.len(), 1);
    }

    #[test]
    fn snapshot_stanza_misuse_errors() {
        // Needs served mode.
        let s = parse("machine knl-flat\nsnapshot epoch=1 file=/tmp/x.snap\n").expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, message }) => {
                assert_eq!(name, "snapshot");
                assert_eq!(line, 2);
                assert!(message.contains("serve"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        // The checkpoint epoch cannot be in the past.
        let s = parse("machine knl-flat\nserve\ntick 4\nsnapshot epoch=2 file=/tmp/x.snap\n")
            .expect("parses");
        match execute(&s) {
            Err(ExecError::Service { line, message, .. }) => {
                assert_eq!(line, 4);
                assert!(message.contains("past"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn expired_buffers_are_forgotten_by_tick() {
        // Referencing an expired lease reports unknown buffer, not a
        // panic or a stale-region access.
        let s = parse(
            "machine knl-flat\nserve\ntenant t\nalloc a 1GiB capacity ttl=1\ntick 2\nfree a\n",
        )
        .expect("parses");
        match execute(&s) {
            Err(ExecError::UnknownBuffer { name, line }) => {
                assert_eq!(name, "a");
                assert_eq!(line, 6);
            }
            other => panic!("expected unknown buffer, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn chaos_statements_need_served_mode() {
        let s = parse("machine knl-flat\nfault degrade hbm\n").expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, message }) => {
                assert_eq!(name, "fault");
                assert_eq!(line, 2);
                assert!(message.contains("serve"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        let s = parse("machine knl-flat\ntick 3\n").expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, .. }) => {
                assert_eq!(name, "tick");
                assert_eq!(line, 2);
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
        let s = parse("machine knl-flat\nalloc a 1GiB capacity ttl=2\n").expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, message }) => {
                assert_eq!(name, "a");
                assert_eq!(line, 2);
                assert!(message.contains("ttl"), "{message}");
            }
            other => panic!("expected service error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn served_admission_failure_reports_the_buffer() {
        // Strict fallback for more than the whole fast tier: denied.
        let s =
            parse("machine knl-flat\nserve\ntenant greedy\nalloc huge 40GiB bandwidth strict\n")
                .expect("parses");
        match execute(&s) {
            Err(ExecError::Service { name, line, message }) => {
                assert_eq!(name, "huge");
                assert_eq!(line, 4);
                assert!(message.contains("admission"), "{message}");
            }
            other => panic!("expected admission failure, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn guidance_statement_speeds_up_era_change() {
        // `a` wins MCDRAM; `b` falls back to DRAM entirely. The era
        // change is only profitable if guidance reacts well before the
        // six DRAM-speed phases are over.
        let mut base = String::from(
            "machine knl-flat
initiator 0-15
threads 16
alloc a 2GiB bandwidth
alloc b 2GiB bandwidth
phase era1
  read a 16GiB seq
end
",
        );
        for i in 0..9 {
            base.push_str(&format!("phase era2{i}\n  read b 16GiB seq\nend\n"));
        }
        let guided = format!("guidance 32768 bandwidth\n{base}");
        let plain = execute(&parse(&base).expect("valid")).expect("runs");
        let with_g = execute(&parse(&guided).expect("valid")).expect("runs");
        let stats = with_g.guidance.expect("guidance ran");
        assert!(stats.promotions >= 1, "{stats:?}");
        assert!(stats.intervals > 4);
        // Guidance notices the era change and beats the static run.
        assert!(
            with_g.total_ns < plain.total_ns,
            "guided {} vs static {}",
            with_g.total_ns,
            plain.total_ns
        );
    }

    #[test]
    fn shipped_federation_scenario_spills_across_brokers() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/federation.txt"
        ))
        .expect("scenarios/federation.txt");
        let r = execute(&parse(&text).expect("parses")).expect("runs");
        let fed = r.federation.expect("federated mode");
        assert_eq!(fed.members, 2);
        assert!(fed.spilled_leases >= 1, "{fed:?}");
        assert!(fed.digest_merges >= 2, "{fed:?}");
        assert!(fed.fast_bytes > 0 && fed.fast_bytes <= fed.granted_bytes, "{fed:?}");
        // The surviving lease is the spilled one, spanning both
        // shards: broker 0 owns the even nodes, broker 1 the odd.
        let (name, placement) = &r.final_placements[0];
        assert_eq!(name, "spilled");
        assert!(placement.iter().any(|(n, _)| n.0 % 2 == 0), "{placement:?}");
        assert!(placement.iter().any(|(n, _)| n.0 % 2 == 1), "{placement:?}");
    }

    #[test]
    fn federated_mode_misuse_errors_carry_line_and_name() {
        for (src, line, needle) in [
            // serve and federate are mutually exclusive, both ways.
            ("machine knl-flat\nserve\nfederate brokers=2\n", 3, "exclusive"),
            ("machine knl-flat\nfederate brokers=2\nserve\n", 3, "exclusive"),
            ("machine knl-flat\nfederate brokers=2\nfederate brokers=2\n", 3, "twice"),
            // federate after an alloc.
            ("machine knl-flat\nalloc a 1GiB capacity\nfederate brokers=2\n", 3, "first alloc"),
            // phases and migration stay single-broker features.
            (
                "machine knl-flat\nfederate brokers=2\ntenant t\nphase p\n  compute 1ms\nend\n",
                4,
                "not federated",
            ),
            (
                "machine knl-flat\nfederate brokers=2\ntenant t\nalloc a 1GiB capacity\nmigrate a bandwidth\n",
                5,
                "federated",
            ),
        ] {
            match execute(&parse(src).expect("parses")) {
                Err(ExecError::Service { line: l, message, .. }) => {
                    assert_eq!(l, line, "{src}");
                    assert!(message.contains(needle), "{src}: {message}");
                }
                other => panic!("{src}: expected service error, got {:?}", other.map(|_| ())),
            }
        }
        // --record refuses federated scenarios, naming the federate
        // statement's source line (the recorder drives one wire log).
        let s = parse("machine knl-flat\nfederate brokers=2\n").expect("parses");
        let e = execute_with_options(
            &s,
            TelemetrySink::disabled(),
            ExecOptions { record: true, ..Default::default() },
        )
        .map(|_| ())
        .expect_err("record refused");
        let text = e.to_string();
        assert!(text.contains("line 2"), "{text}");
        assert!(text.contains("recorded"), "{text}");
    }
}
