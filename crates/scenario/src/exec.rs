//! Executes a parsed scenario against the simulator.

use crate::parse::{Command, Discovery, Scenario};
use hetmem_alloc::{AllocRequest, HetAllocator};
use hetmem_bitmap::Bitmap;
use hetmem_core::MemAttrs;
use hetmem_memsim::{AccessEngine, BufferAccess, MemoryManager, Phase, RegionId};
use hetmem_profile::Profiler;
use hetmem_telemetry::{NullRecorder, Recorder};
use hetmem_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The `machine` statement named an unknown platform.
    UnknownMachine(String),
    /// The initiator cpuset failed to parse.
    BadInitiator(String),
    /// Attribute discovery failed.
    Discovery(String),
    /// An allocation failed.
    Alloc {
        /// Buffer name.
        name: String,
        /// The underlying failure.
        message: String,
    },
    /// A statement referenced an unknown buffer.
    UnknownBuffer(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownMachine(m) => {
                write!(f, "unknown machine {m:?} (known: {})", crate::PLATFORM_NAMES.join(", "))
            }
            ExecError::BadInitiator(e) => write!(f, "bad initiator cpuset: {e}"),
            ExecError::Discovery(e) => write!(f, "discovery failed: {e}"),
            ExecError::Alloc { name, message } => write!(f, "alloc {name:?} failed: {message}"),
            ExecError::UnknownBuffer(b) => write!(f, "unknown buffer {b:?}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One executed phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase name.
    pub name: String,
    /// Time, ns.
    pub time_ns: f64,
    /// Aggregate achieved bandwidth, MiB/s.
    pub bw_mbps: f64,
}

/// The full scenario outcome.
pub struct ScenarioReport {
    /// Per-phase results, in execution order.
    pub phases: Vec<PhaseOutcome>,
    /// Migration costs paid, ns, in order (explicit `migrate` and
    /// daemon rebalances combined).
    pub migrations_ns: Vec<f64>,
    /// Actions the tiering daemon took across `rebalance` statements.
    pub tiering_actions: Vec<hetmem_alloc::tiering::TieringAction>,
    /// Final placement of each live buffer.
    pub final_placements: Vec<(String, Vec<(NodeId, u64)>)>,
    /// The profiler, loaded with every phase (for summaries/objects).
    pub profiler: Profiler,
    /// Total simulated time (phases + migrations), ns.
    pub total_ns: f64,
}

/// Runs a scenario; deterministic like everything else.
pub fn execute(scenario: &Scenario) -> Result<ScenarioReport, ExecError> {
    execute_with_recorder(scenario, Arc::new(NullRecorder))
}

/// [`execute`] with every allocation decision, migration, phase span
/// and occupancy change streamed into `recorder` (the `--trace`
/// backend of `hetmem-run`).
pub fn execute_with_recorder(
    scenario: &Scenario,
    recorder: Arc<dyn Recorder>,
) -> Result<ScenarioReport, ExecError> {
    let machine = crate::machine_by_name(&scenario.machine)
        .ok_or_else(|| ExecError::UnknownMachine(scenario.machine.clone()))?;
    let machine = Arc::new(machine);
    let mut initiator: Bitmap = scenario
        .initiator
        .parse()
        .map_err(|e: hetmem_bitmap::ParseBitmapError| ExecError::BadInitiator(e.to_string()))?;
    // Clamp an unbounded initiator to the machine's PUs.
    initiator.and_assign(machine.topology().machine_cpuset());

    let attrs: Arc<MemAttrs> = match scenario.discovery {
        Discovery::Firmware => Arc::new(
            hetmem_core::discovery::from_firmware(&machine, true)
                .map_err(|e| ExecError::Discovery(e.to_string()))?,
        ),
        Discovery::Benchmarks => Arc::new(
            hetmem_membench::feed_attrs(
                &machine,
                &hetmem_membench::BenchOptions { include_remote: true, ..Default::default() },
            )
            .map_err(|e| ExecError::Discovery(e.to_string()))?,
        ),
    };
    let mut engine = AccessEngine::new(machine.clone());
    engine.set_recorder(recorder.clone());
    let mut allocator = HetAllocator::new(attrs, MemoryManager::new(machine.clone()));
    allocator.set_recorder(recorder);
    let mut profiler = Profiler::new(machine.clone());

    let mut buffers: BTreeMap<String, RegionId> = BTreeMap::new();
    let mut phases = Vec::new();
    let mut migrations_ns = Vec::new();
    let mut tiering_actions = Vec::new();
    let mut daemon =
        hetmem_alloc::tiering::TieringDaemon::new(hetmem_alloc::tiering::TieringPolicy::default());

    for cmd in &scenario.commands {
        match cmd {
            Command::Alloc { name, size, criterion, fallback, global } => {
                let mut req = AllocRequest::new(*size)
                    .criterion(*criterion)
                    .initiator(&initiator)
                    .fallback(*fallback)
                    .label(name.clone());
                if *global {
                    req = req.any_locality();
                }
                let result = allocator.alloc(&req);
                let id = result
                    .map_err(|e| ExecError::Alloc { name: name.clone(), message: e.to_string() })?;
                profiler.track(allocator.memory(), id, name, *size);
                buffers.insert(name.clone(), id);
            }
            Command::Free(name) => {
                let id =
                    buffers.remove(name).ok_or_else(|| ExecError::UnknownBuffer(name.clone()))?;
                allocator.free(id);
                daemon.forget(id);
            }
            Command::Migrate { name, criterion } => {
                let id =
                    *buffers.get(name).ok_or_else(|| ExecError::UnknownBuffer(name.clone()))?;
                let (_, report) = allocator
                    .migrate_to_best(id, *criterion, &initiator)
                    .map_err(|e| ExecError::Alloc { name: name.clone(), message: e.to_string() })?;
                migrations_ns.push(report.cost_ns);
            }
            Command::Phase(spec) => {
                let mut accesses = Vec::with_capacity(spec.accesses.len());
                for a in &spec.accesses {
                    let id = *buffers
                        .get(&a.buffer)
                        .ok_or_else(|| ExecError::UnknownBuffer(a.buffer.clone()))?;
                    accesses.push(BufferAccess {
                        region: id,
                        bytes_read: a.bytes_read,
                        bytes_written: a.bytes_written,
                        pattern: a.pattern,
                        hot_fraction: a.hot_fraction,
                    });
                }
                let phase = Phase {
                    name: spec.name.clone(),
                    accesses,
                    threads: scenario.threads,
                    initiator: initiator.clone(),
                    compute_ns: spec.compute_ns,
                };
                let report = engine.run_phase(allocator.memory(), &phase);
                phases.push(PhaseOutcome {
                    name: spec.name.clone(),
                    time_ns: report.time_ns,
                    bw_mbps: report.total_bw_mbps(),
                });
                daemon.observe(&report);
                profiler.record(report);
            }
            Command::Rebalance { criterion } => {
                let actions = daemon
                    .rebalance_with_criterion(&mut allocator, &initiator, *criterion)
                    .map_err(|e| ExecError::Alloc {
                        name: "rebalance".into(),
                        message: e.to_string(),
                    })?;
                for a in &actions {
                    let cost = match a {
                        hetmem_alloc::tiering::TieringAction::Promoted { cost_ns, .. }
                        | hetmem_alloc::tiering::TieringAction::Demoted { cost_ns, .. } => *cost_ns,
                    };
                    migrations_ns.push(cost);
                }
                tiering_actions.extend(actions);
            }
        }
    }

    let final_placements = buffers
        .iter()
        .map(|(name, &id)| {
            (
                name.clone(),
                allocator.memory().region(id).map(|r| r.placement.clone()).unwrap_or_default(),
            )
        })
        .collect();
    let total_ns =
        phases.iter().map(|p| p.time_ns).sum::<f64>() + migrations_ns.iter().sum::<f64>();
    Ok(ScenarioReport {
        phases,
        migrations_ns,
        final_placements,
        profiler,
        total_ns,
        tiering_actions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const CONFLICT: &str = r#"
machine knl-flat
initiator 0-15
threads 16
alloc hot 3GiB bandwidth spill
alloc cold 3GiB bandwidth spill
phase p1
  read hot 12GiB seq
  write hot 6GiB seq
end
free cold
migrate hot bandwidth
phase p2
  read hot 12GiB seq
  write hot 6GiB seq
end
"#;

    #[test]
    fn conflict_scenario_runs_and_migration_helps() {
        let s = parse(CONFLICT).expect("valid");
        let r = execute(&s).expect("runs");
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.migrations_ns.len(), 1);
        // hot spilled in p1 (cold grabbed MCDRAM first? no — hot first).
        // hot got MCDRAM first, so p1 is already fast; cold spilled.
        // After free+migrate the second phase is at least as fast.
        assert!(r.phases[1].time_ns <= r.phases[0].time_ns * 1.01);
        assert_eq!(r.final_placements.len(), 1);
        assert_eq!(r.final_placements[0].0, "hot");
    }

    #[test]
    fn unknown_machine_and_buffer_errors() {
        let s = parse("machine nope\n").expect("parses");
        assert!(matches!(execute(&s), Err(ExecError::UnknownMachine(_))));

        let s = parse("machine knl-flat\nfree ghost\n").expect("parses");
        assert!(matches!(execute(&s), Err(ExecError::UnknownBuffer(_))));

        let s = parse("machine knl-flat\nphase p\n  read ghost 1GiB seq\nend\n").expect("parses");
        assert!(matches!(execute(&s), Err(ExecError::UnknownBuffer(_))));
    }

    #[test]
    fn alloc_failure_is_reported() {
        let s = parse("machine knl-flat\ninitiator 0-15\nalloc big 100GiB latency strict\n")
            .expect("parses");
        match execute(&s) {
            Err(ExecError::Alloc { name, .. }) => assert_eq!(name, "big"),
            other => panic!("expected alloc failure, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn benchmark_discovery_scenario() {
        let s = parse(
            "machine xeon\ninitiator 0-19\nthreads 20\ndiscover benchmarks\n\
             alloc x 1GiB latency\nphase p\n  read x 4GiB random\nend\n",
        )
        .expect("parses");
        let r = execute(&s).expect("runs");
        assert_eq!(r.phases.len(), 1);
        assert!(r.total_ns > 0.0);
        // Latency criterion on the Xeon = DRAM node 0.
        assert_eq!(r.final_placements[0].1[0].0, NodeId(0));
    }

    #[test]
    fn profiler_is_populated() {
        let s = parse(
            "machine xeon\ninitiator 0-19\nthreads 20\nalloc a 8GiB capacity\n\
             phase chase\n  read a 8GiB chase\nend\n",
        )
        .expect("parses");
        let r = execute(&s).expect("runs");
        let summary = r.profiler.summary();
        assert_eq!(summary.sensitivity, hetmem_profile::Sensitivity::Latency);
        let objects = r.profiler.object_report();
        assert_eq!(objects.len(), 1);
        assert_eq!(objects[0].site, "a");
    }

    #[test]
    fn unbounded_initiator_is_clamped() {
        let s = parse("machine knl-flat\nalloc a 1GiB capacity\n").expect("parses");
        let r = execute(&s).expect("runs");
        assert_eq!(r.final_placements.len(), 1);
    }
}
