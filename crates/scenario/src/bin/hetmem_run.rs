//! CLI for the scenario DSL: `hetmem-run <file> [--objects] [--timeline]`.

use hetmem_scenario::{execute, parse};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut show_objects = false;
    let mut show_timeline = false;
    for a in &args {
        match a.as_str() {
            "--objects" => show_objects = true,
            "--timeline" => show_timeline = true,
            "--help" | "-h" => {
                eprintln!("usage: hetmem-run <scenario-file> [--objects] [--timeline]");
                eprintln!("platforms: {}", hetmem_scenario::PLATFORM_NAMES.join(", "));
                return;
            }
            other => file = Some(other.to_string()),
        }
    }
    let Some(file) = file else {
        eprintln!("hetmem-run: no scenario file (try --help)");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("hetmem-run: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let scenario = parse(&text).unwrap_or_else(|e| {
        eprintln!("hetmem-run: {file}: {e}");
        std::process::exit(1);
    });
    let report = execute(&scenario).unwrap_or_else(|e| {
        eprintln!("hetmem-run: {e}");
        std::process::exit(1);
    });

    println!("scenario: {file} on {}", scenario.machine);
    for p in &report.phases {
        println!(
            "  phase {:<16} {:>10.3} ms   {:>8.2} GiB/s",
            p.name,
            p.time_ns / 1e6,
            p.bw_mbps / 1024.0
        );
    }
    for (i, m) in report.migrations_ns.iter().enumerate() {
        println!("  migration #{i}: {:.3} ms", m / 1e6);
    }
    println!("  total: {:.3} ms", report.total_ns / 1e6);
    if !report.final_placements.is_empty() {
        println!("final placements:");
        for (name, placement) in &report.final_placements {
            let spots: Vec<String> =
                placement.iter().map(|(n, b)| format!("{n}:{}MiB", b >> 20)).collect();
            println!("  {name:<16} {}", spots.join(" + "));
        }
    }
    println!();
    print!("{}", report.profiler.render_summary());
    if show_objects {
        println!();
        print!("{}", report.profiler.render_objects());
    }
    if show_timeline {
        println!();
        print!("{}", report.profiler.render_timeline());
    }
}
