//! CLI for the scenario DSL:
//! `hetmem-run <file> [--objects] [--timeline] [--trace <out.jsonl>] [--guidance [period]]
//! [--record <out.hmwl>]`.
//!
//! `--record` writes the served request stream as a `hetmem-snapshot`
//! wire log (trailer included) that `hetmem-replay` can re-execute and
//! verify; combine with a `snapshot` stanza in the scenario to
//! checkpoint mid-run.

use hetmem_scenario::{execute_with_options, parse, ExecOptions};
use hetmem_telemetry::{read_jsonl, BackgroundCollector, JsonlWriter, Summary, TelemetrySink};
use std::sync::Arc;

/// Default sampling period for `--guidance` without a value.
const DEFAULT_PERIOD: u64 = 32768;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut show_objects = false;
    let mut show_timeline = false;
    let mut trace: Option<String> = None;
    let mut want_trace_path = false;
    let mut record: Option<String> = None;
    let mut want_record_path = false;
    let mut guidance: Option<u64> = None;
    let mut want_period = false;
    for a in &args {
        if want_trace_path {
            trace = Some(a.clone());
            want_trace_path = false;
            continue;
        }
        if want_record_path {
            record = Some(a.clone());
            want_record_path = false;
            continue;
        }
        if want_period {
            want_period = false;
            if let Ok(p) = a.parse::<u64>() {
                if p == 0 {
                    eprintln!("hetmem-run: --guidance period must be at least 1");
                    std::process::exit(2);
                }
                guidance = Some(p);
                continue;
            }
            // Not a number: fall through and treat it as the next arg.
        }
        match a.as_str() {
            "--objects" => show_objects = true,
            "--timeline" => show_timeline = true,
            "--trace" => want_trace_path = true,
            "--record" => want_record_path = true,
            "--guidance" => {
                guidance = Some(DEFAULT_PERIOD);
                want_period = true;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: hetmem-run <scenario-file> [--objects] [--timeline] \
                     [--trace <out.jsonl>] [--guidance [period]] [--record <out.hmwl>]"
                );
                eprintln!(
                    "  --guidance: run every phase under the online sampling engine \
                     (default period {DEFAULT_PERIOD} accesses/sample)"
                );
                eprintln!(
                    "  --record: write the served request stream as a wire log for \
                     hetmem-replay (served scenarios without phases only)"
                );
                eprintln!("platforms: {}", hetmem_scenario::PLATFORM_NAMES.join(", "));
                return;
            }
            other => file = Some(other.to_string()),
        }
    }
    if want_trace_path {
        eprintln!("hetmem-run: --trace needs a file argument");
        std::process::exit(2);
    }
    if want_record_path {
        eprintln!("hetmem-run: --record needs a file argument");
        std::process::exit(2);
    }
    let Some(file) = file else {
        eprintln!("hetmem-run: no scenario file (try --help)");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("hetmem-run: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let scenario = parse(&text).unwrap_or_else(|e| {
        eprintln!("hetmem-run: {file}: {e}");
        std::process::exit(1);
    });
    let options = ExecOptions {
        guidance: guidance.map(|period| (period, hetmem_core::attr::BANDWIDTH)),
        record: record.is_some(),
    };
    let result = match &trace {
        Some(path) => {
            let writer = JsonlWriter::create(path).unwrap_or_else(|e| {
                eprintln!("hetmem-run: cannot create {path}: {e}");
                std::process::exit(1);
            });
            let writer = Arc::new(writer);
            // Large rings plus a short drain cadence: a scenario trace
            // is expected to be complete, and any loss is reported.
            // Record mode sizes the ring like hetmem-replay does, so
            // overflow behavior cannot differ between the two sides.
            let words = if record.is_some() { 1 << 18 } else { 1 << 16 };
            let sink = TelemetrySink::with_ring_words(words);
            let collector = {
                let writer = writer.clone();
                BackgroundCollector::spawn(
                    &sink,
                    std::time::Duration::from_millis(5),
                    move |batch| {
                        for e in &batch {
                            writer.write_event(&e.event);
                        }
                    },
                )
            };
            let r = execute_with_options(&scenario, sink, options);
            let lost: u64 = collector.finish().iter().map(|l| l.lost).sum();
            if lost > 0 {
                eprintln!("hetmem-run: trace lost {lost} events (collector outpaced)");
            }
            let _ = writer.flush();
            r
        }
        None => {
            // Record mode needs a live sink even without --trace: the
            // trailer summary is computed from the recorded segment's
            // events (sized like hetmem-replay's sink).
            let sink = if record.is_some() {
                TelemetrySink::with_ring_words(1 << 18)
            } else {
                TelemetrySink::disabled()
            };
            execute_with_options(&scenario, sink, options)
        }
    };
    let report = result.unwrap_or_else(|e| {
        eprintln!("hetmem-run: {file}: {e}");
        std::process::exit(1);
    });
    if let (Some(path), Some(log)) = (&record, &report.wire_log) {
        if let Err(e) = log.write_file(std::path::Path::new(path)) {
            eprintln!("hetmem-run: cannot write wire log {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("record: {} frames -> {path}", log.frames.len());
    }

    println!("scenario: {file} on {}", scenario.machine);
    for p in &report.phases {
        println!(
            "  phase {:<16} {:>10.3} ms   {:>8.2} GiB/s",
            p.name,
            p.time_ns / 1e6,
            p.bw_mbps / 1024.0
        );
    }
    for (i, m) in report.migrations_ns.iter().enumerate() {
        println!("  migration #{i}: {:.3} ms", m / 1e6);
    }
    println!("  total: {:.3} ms", report.total_ns / 1e6);
    if let Some(g) = &report.guidance {
        println!(
            "  guidance: {} intervals, {} promotions, {} demotions, \
             {:.3} ms migrating, {:.3} ms sampling, {:.1}% hot-set accuracy",
            g.intervals,
            g.promotions,
            g.demotions,
            g.migration_ns / 1e6,
            g.overhead_ns / 1e6,
            g.mean_accuracy() * 100.0
        );
    }
    if let Some(fed) = &report.federation {
        println!(
            "  federation: {} brokers, {} spilled leases, {} digest merges, \
             {} MiB fast of {} MiB granted",
            fed.members,
            fed.spilled_leases,
            fed.digest_merges,
            fed.fast_bytes >> 20,
            fed.granted_bytes >> 20
        );
    }
    if !report.tenants.is_empty() {
        println!("tenants:");
        for t in &report.tenants {
            let held: u64 = t.held.values().sum();
            println!(
                "  {:<16} {:<8} {} admits, {} clamps, {} stalls, {} MiB held",
                t.name,
                t.priority.as_str(),
                t.admits,
                t.clamps,
                t.stalls,
                held >> 20
            );
        }
    }
    if !report.final_placements.is_empty() {
        println!("final placements:");
        for (name, placement) in &report.final_placements {
            let spots: Vec<String> =
                placement.iter().map(|(n, b)| format!("{n}:{}MiB", b >> 20)).collect();
            println!("  {name:<16} {}", spots.join(" + "));
        }
    }
    println!();
    print!("{}", report.profiler.render_summary());
    if show_objects {
        println!();
        print!("{}", report.profiler.render_objects());
    }
    if show_timeline {
        println!();
        print!("{}", report.profiler.render_timeline());
    }
    if let Some(path) = &trace {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        match read_jsonl(&text) {
            Ok(events) => {
                println!();
                print!("{}", Summary::from_events(&events).render());
                eprintln!("trace: {} events -> {path}", events.len());
            }
            Err(e) => eprintln!("hetmem-run: trace readback failed: {e}"),
        }
    }
}
