//! CLI for the scenario DSL:
//! `hetmem-run <file> [--objects] [--timeline] [--trace <out.jsonl>]`.

use hetmem_scenario::{execute, execute_with_recorder, parse};
use hetmem_telemetry::{read_jsonl, JsonlWriter, Summary};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut show_objects = false;
    let mut show_timeline = false;
    let mut trace: Option<String> = None;
    let mut want_trace_path = false;
    for a in &args {
        if want_trace_path {
            trace = Some(a.clone());
            want_trace_path = false;
            continue;
        }
        match a.as_str() {
            "--objects" => show_objects = true,
            "--timeline" => show_timeline = true,
            "--trace" => want_trace_path = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: hetmem-run <scenario-file> [--objects] [--timeline] [--trace <out.jsonl>]"
                );
                eprintln!("platforms: {}", hetmem_scenario::PLATFORM_NAMES.join(", "));
                return;
            }
            other => file = Some(other.to_string()),
        }
    }
    if want_trace_path {
        eprintln!("hetmem-run: --trace needs a file argument");
        std::process::exit(2);
    }
    let Some(file) = file else {
        eprintln!("hetmem-run: no scenario file (try --help)");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("hetmem-run: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let scenario = parse(&text).unwrap_or_else(|e| {
        eprintln!("hetmem-run: {file}: {e}");
        std::process::exit(1);
    });
    let result = match &trace {
        Some(path) => {
            let writer = JsonlWriter::create(path).unwrap_or_else(|e| {
                eprintln!("hetmem-run: cannot create {path}: {e}");
                std::process::exit(1);
            });
            let writer = Arc::new(writer);
            let r = execute_with_recorder(&scenario, writer.clone());
            let _ = writer.flush();
            r
        }
        None => execute(&scenario),
    };
    let report = result.unwrap_or_else(|e| {
        eprintln!("hetmem-run: {e}");
        std::process::exit(1);
    });

    println!("scenario: {file} on {}", scenario.machine);
    for p in &report.phases {
        println!(
            "  phase {:<16} {:>10.3} ms   {:>8.2} GiB/s",
            p.name,
            p.time_ns / 1e6,
            p.bw_mbps / 1024.0
        );
    }
    for (i, m) in report.migrations_ns.iter().enumerate() {
        println!("  migration #{i}: {:.3} ms", m / 1e6);
    }
    println!("  total: {:.3} ms", report.total_ns / 1e6);
    if !report.final_placements.is_empty() {
        println!("final placements:");
        for (name, placement) in &report.final_placements {
            let spots: Vec<String> =
                placement.iter().map(|(n, b)| format!("{n}:{}MiB", b >> 20)).collect();
            println!("  {name:<16} {}", spots.join(" + "));
        }
    }
    println!();
    print!("{}", report.profiler.render_summary());
    if show_objects {
        println!();
        print!("{}", report.profiler.render_objects());
    }
    if show_timeline {
        println!();
        print!("{}", report.profiler.render_timeline());
    }
    if let Some(path) = &trace {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        match read_jsonl(&text) {
            Ok(events) => {
                println!();
                print!("{}", Summary::from_events(&events).render());
                eprintln!("trace: {} events -> {path}", events.len());
            }
            Err(e) => eprintln!("hetmem-run: trace readback failed: {e}"),
        }
    }
}
