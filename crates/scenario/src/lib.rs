//! A small scenario DSL for driving the simulator from text files.
//!
//! The repo's applications (Graph500, STREAM, SpMV) hardcode their
//! phase structure; this crate lets a user describe *any* workload —
//! buffers, criteria, phases, migrations — in a plain text file and
//! run it against any built-in platform, without recompiling:
//!
//! ```text
//! # two-phase capacity conflict on the KNL
//! machine knl-flat
//! initiator 0-15
//! threads 16
//!
//! alloc hot   3GiB bandwidth spill
//! alloc bulk 10GiB capacity  next
//!
//! phase traverse
//!   read  hot  12GiB seq
//!   read  bulk  2GiB random
//!   compute 5ms
//! end
//!
//! free hot
//! migrate bulk bandwidth
//!
//! phase drain
//!   write bulk 10GiB seq
//! end
//! ```
//!
//! Run with `hetmem-run scenario.txt` (see the `scenarios/` directory
//! for ready-made files) or programmatically via [`parse`] and
//! [`execute`].

#![warn(missing_docs)]
mod exec;
mod parse;

pub use exec::{
    execute, execute_with_options, execute_with_sink, ExecError, ExecOptions, FederationSummary,
    PhaseOutcome, ScenarioReport,
};
pub use parse::{parse, AccessSpec, Command, ParseError, PhaseSpec, Scenario, Stmt};

use hetmem_memsim::Machine;

/// Resolves a platform name from the DSL's `machine` statement.
pub fn machine_by_name(name: &str) -> Option<Machine> {
    Some(match name {
        "knl-flat" => Machine::knl_snc4_flat(),
        "knl-cache" => Machine::knl_quadrant_cache(),
        "xeon" => Machine::xeon_1lm_no_snc(),
        "xeon-snc" => Machine::xeon_1lm_snc(),
        "xeon-2lm" => Machine::xeon_2lm(),
        "xeon-4s" => Machine::xeon_4s_snc(),
        "fictitious" => Machine::fictitious(),
        "power9" => Machine::power9_gpu(),
        "fugaku" => Machine::fugaku_like(),
        _ => return None,
    })
}

/// The platform names [`machine_by_name`] accepts.
pub const PLATFORM_NAMES: &[&str] = &[
    "knl-flat",
    "knl-cache",
    "xeon",
    "xeon-snc",
    "xeon-2lm",
    "xeon-4s",
    "fictitious",
    "power9",
    "fugaku",
];
