//! Parser for the scenario DSL.
//!
//! Line-oriented; `#` starts a comment. Grammar (one statement per
//! line):
//!
//! ```text
//! machine <platform>
//! initiator <cpuset>              # hwloc list format, e.g. 0-15
//! threads <n>
//! discover firmware|benchmarks    # attribute source (default firmware)
//!
//! alloc <name> <size> <criterion> [strict|next|spill] [global] [ttl=<n>]
//! free <name>
//! migrate <name> <criterion>
//! rebalance [criterion]           # run the tiering daemon (default bandwidth)
//! guidance <period> [criterion]   # sample every <period> accesses and let the
//!                                 # online engine migrate mid-phase
//!
//! serve [fair-share|fcfs|static] # switch to broker-backed multi-tenant
//!                                 # mode (before the first alloc)
//! federate brokers=<n> [spill=on|off] [fair-share|fcfs|static]
//!                                 # switch to a federation of n shard
//!                                 # brokers instead of one (tenants
//!                                 # home round-robin; shortfalls
//!                                 # spill to peers)
//! tenant <name> [latency|normal|batch]  # select (and register on first
//!                                 # use) the tenant owning what follows
//! fault degrade|restore <tier>    # mark a tier degraded/healthy
//!                                 # (dram|hbm|nvdimm|nam|gpu; served mode)
//! tick [n]                        # advance the service clock n epochs
//!                                 # (default 1; TTLs expire; served mode)
//! snapshot epoch=<n> file=<path>  # advance to epoch n and write a
//!                                 # broker checkpoint there (served
//!                                 # mode; see hetmem-snapshot)
//!
//! phase <name>
//!   read  <buffer> <size> seq|strided|random|chase [hot=<0..1>]
//!   write <buffer> <size> seq|strided|random|chase [hot=<0..1>]
//!   compute <duration>            # e.g. 5ms, 300us, 2s
//! end
//! ```
//!
//! Sizes accept `B`, `KiB`, `MiB`, `GiB` suffixes (and bare bytes);
//! criteria are `bandwidth`, `latency`, `capacity`, `readbandwidth`,
//! `writebandwidth`, `readlatency`, `writelatency`.

use hetmem_alloc::Fallback;
use hetmem_core::{attr, AttrId};
use hetmem_memsim::AccessPattern;
use hetmem_service::{ArbitrationPolicy, Priority};
use hetmem_topology::MemoryKind;

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One access line inside a phase.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSpec {
    /// Buffer name.
    pub buffer: String,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Pattern.
    pub pattern: AccessPattern,
    /// Fraction of the buffer that is hot (working set), 0..=1.
    pub hot_fraction: f64,
}

/// A phase block.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name.
    pub name: String,
    /// Accesses.
    pub accesses: Vec<AccessSpec>,
    /// Pure compute, ns.
    pub compute_ns: f64,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `alloc name size criterion fallback [global] [ttl=n]`.
    Alloc {
        /// Buffer name.
        name: String,
        /// Bytes.
        size: u64,
        /// Attribute criterion.
        criterion: AttrId,
        /// Fallback mode.
        fallback: Fallback,
        /// Rank all targets (remote included) instead of local only —
        /// the §VIII mode; needs `discover benchmarks`.
        global: bool,
        /// Lease TTL in epochs (`ttl=<n>`; served mode only — the
        /// lease is reclaimed after `n` silent `tick`s).
        ttl: Option<u64>,
    },
    /// `free name`.
    Free(String),
    /// `migrate name criterion`.
    Migrate {
        /// Buffer name.
        name: String,
        /// Attribute criterion for the new placement.
        criterion: AttrId,
    },
    /// A `phase ... end` block.
    Phase(PhaseSpec),
    /// `rebalance [criterion]`: run the tiering daemon.
    Rebalance {
        /// The hot-tier criterion.
        criterion: AttrId,
    },
    /// `guidance <period> [criterion]`: enable the online guidance
    /// engine for all following phases.
    Guidance {
        /// Sampling period, accesses per sample.
        period: u64,
        /// Attribute whose best local target hot regions move to.
        criterion: AttrId,
    },
    /// `serve [policy] [shards=N] [guided=on|off] [budget=N]`: switch
    /// execution to broker-backed multi-tenant mode; all following
    /// allocations go through the arbiter (must appear before the
    /// first `alloc`). `shards=N` declares the dispatch plane width
    /// the scenario models — the broker folds N dispatcher ticks into
    /// each contention epoch, as the live sharded server would.
    /// `guided=on` embeds one adaptive guidance plane per tenant;
    /// `budget=N` caps each epoch's migration batch at N milliseconds
    /// of modelled move cost (requires `guided=on`).
    Serve {
        /// The arbitration policy (default fair-share).
        policy: ArbitrationPolicy,
        /// Dispatch shards (default 1, the single dispatcher).
        shards: u32,
        /// Whether guided service (per-tenant guidance planes) is on.
        guided: bool,
        /// Per-epoch migration budget in milliseconds of modelled move
        /// cost; `None` keeps [`hetmem_service::GuidedConfig`]'s
        /// default.
        budget_ms: Option<u64>,
    },
    /// `federate brokers=<n> [spill=on|off] [policy]`: switch
    /// execution to a federation of `n` shard brokers instead of a
    /// single broker (mutually exclusive with `serve`; before the
    /// first `alloc`). Tenants home round-robin across members in
    /// registration order; with spill on (the default), shortfalling
    /// placements forward their residual to the best-ranked peer.
    Federate {
        /// Member broker count (≥ 1).
        members: u32,
        /// Whether shortfalls spill to peers.
        spill: bool,
        /// The arbitration policy every member runs (default
        /// fair-share).
        policy: ArbitrationPolicy,
    },
    /// `tenant <name> [priority]`: select — registering on first use —
    /// the tenant that owns the following statements (served mode
    /// only).
    Tenant {
        /// Tenant name.
        name: String,
        /// Priority class (default normal; only applied at
        /// registration).
        priority: Priority,
    },
    /// `fault degrade <tier>` / `fault restore <tier>`: mark a memory
    /// tier degraded or healthy again (served mode only — the broker
    /// demotes degraded tiers to last resort).
    Fault {
        /// The affected tier.
        kind: MemoryKind,
        /// `true` for `degrade`, `false` for `restore`.
        degraded: bool,
    },
    /// `tick [n]`: advance the broker's epoch clock `n` times (served
    /// mode only). Leases whose TTL elapses without a renewal are
    /// reclaimed during the sweep.
    Tick {
        /// Epochs to advance (at least 1).
        epochs: u64,
    },
    /// `snapshot epoch=<n> file=<path>`: advance the broker to epoch
    /// `n` (an error if the clock is already past it) and write a
    /// `hetmem-snapshot` checkpoint of the full broker state to
    /// `path` (served mode only). Under `hetmem-run --record`, wire
    /// logging starts at this boundary so the log continues exactly
    /// where the checkpoint leaves off.
    Snapshot {
        /// The epoch boundary to checkpoint at.
        epoch: u64,
        /// Output path for the snapshot file.
        file: String,
    },
}

/// One statement with the source line it came from (for error
/// reporting by the executor).
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// 1-based line in the scenario text (`phase` blocks report the
    /// line of the `phase` keyword).
    pub line: usize,
    /// The parsed statement.
    pub cmd: Command,
}

/// Which attribute source to discover with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discovery {
    /// ACPI SRAT/HMAT (local-only, like Linux).
    #[default]
    Firmware,
    /// Benchmark the full matrix.
    Benchmarks,
}

/// A parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Platform name (resolved by [`crate::machine_by_name`]).
    pub machine: String,
    /// Initiator cpuset in hwloc list format.
    pub initiator: String,
    /// Worker threads.
    pub threads: usize,
    /// Attribute source.
    pub discovery: Discovery,
    /// The statements, in order.
    pub commands: Vec<Stmt>,
}

fn parse_size(tok: &str, line: usize) -> Result<u64, ParseError> {
    let err = |m: String| ParseError { line, message: m };
    let lower = tok.to_ascii_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("gib") {
        (n, 1u64 << 30)
    } else if let Some(n) = lower.strip_suffix("mib") {
        (n, 1u64 << 20)
    } else if let Some(n) = lower.strip_suffix("kib") {
        (n, 1u64 << 10)
    } else if let Some(n) = lower.strip_suffix('b') {
        (n, 1)
    } else {
        (lower.as_str(), 1)
    };
    let v: f64 = num.parse().map_err(|_| err(format!("bad size {tok:?}")))?;
    if v < 0.0 {
        return Err(err(format!("negative size {tok:?}")));
    }
    Ok((v * mult as f64) as u64)
}

fn parse_duration_ns(tok: &str, line: usize) -> Result<f64, ParseError> {
    let err = |m: String| ParseError { line, message: m };
    let lower = tok.to_ascii_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = lower.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = lower.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = lower.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(err(format!("duration {tok:?} needs a unit (ns/us/ms/s)")));
    };
    let v: f64 = num.parse().map_err(|_| err(format!("bad duration {tok:?}")))?;
    Ok(v * mult)
}

fn parse_criterion(tok: &str, line: usize) -> Result<AttrId, ParseError> {
    Ok(match tok.to_ascii_lowercase().as_str() {
        "bandwidth" => attr::BANDWIDTH,
        "latency" => attr::LATENCY,
        "capacity" => attr::CAPACITY,
        "locality" => attr::LOCALITY,
        "readbandwidth" => attr::READ_BANDWIDTH,
        "writebandwidth" => attr::WRITE_BANDWIDTH,
        "readlatency" => attr::READ_LATENCY,
        "writelatency" => attr::WRITE_LATENCY,
        other => return Err(ParseError { line, message: format!("unknown criterion {other:?}") }),
    })
}

fn parse_tier(tok: &str, line: usize) -> Result<MemoryKind, ParseError> {
    Ok(match tok.to_ascii_lowercase().as_str() {
        "dram" | "ddr" => MemoryKind::Dram,
        "hbm" | "mcdram" => MemoryKind::Hbm,
        "nvdimm" | "optane" | "pmem" => MemoryKind::Nvdimm,
        "nam" | "network" => MemoryKind::NetworkAttached,
        "gpu" => MemoryKind::GpuMemory,
        other => {
            return Err(ParseError {
                line,
                message: format!("unknown tier {other:?} (dram|hbm|nvdimm|nam|gpu)"),
            })
        }
    })
}

fn parse_pattern(tok: &str, line: usize) -> Result<AccessPattern, ParseError> {
    Ok(match tok.to_ascii_lowercase().as_str() {
        "seq" | "sequential" => AccessPattern::Sequential,
        "strided" => AccessPattern::Strided,
        "random" => AccessPattern::Random,
        "chase" | "pointerchase" => AccessPattern::PointerChase,
        other => return Err(ParseError { line, message: format!("unknown pattern {other:?}") }),
    })
}

/// Parses a scenario file.
pub fn parse(text: &str) -> Result<Scenario, ParseError> {
    let mut machine = None;
    let mut initiator = None;
    let mut threads = None;
    let mut discovery = Discovery::default();
    let mut commands = Vec::new();
    let mut current_phase: Option<(usize, PhaseSpec)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let err = |m: String| ParseError { line, message: m };
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let toks: Vec<&str> = content.split_whitespace().collect();
        let kw = toks[0].to_ascii_lowercase();

        if let Some((_, phase)) = current_phase.as_mut() {
            match kw.as_str() {
                "read" | "write" => {
                    if !(4..=5).contains(&toks.len()) {
                        return Err(err(format!(
                            "{kw} needs: {kw} <buffer> <size> <pattern> [hot=<f>]"
                        )));
                    }
                    let bytes = parse_size(toks[2], line)?;
                    let pattern = parse_pattern(toks[3], line)?;
                    let hot_fraction = match toks.get(4) {
                        None => 1.0,
                        Some(tok) => {
                            let v: f64 = tok
                                .strip_prefix("hot=")
                                .ok_or_else(|| err(format!("unknown option {tok:?}")))?
                                .parse()
                                .map_err(|_| err(format!("bad hot= value {tok:?}")))?;
                            if !(0.0..=1.0).contains(&v) {
                                return Err(err(format!("hot= out of range in {tok:?}")));
                            }
                            v
                        }
                    };
                    let (r, w) = if kw == "read" { (bytes, 0) } else { (0, bytes) };
                    phase.accesses.push(AccessSpec {
                        buffer: toks[1].to_string(),
                        bytes_read: r,
                        bytes_written: w,
                        pattern,
                        hot_fraction,
                    });
                }
                "compute" => {
                    if toks.len() != 2 {
                        return Err(err("compute needs a duration".into()));
                    }
                    phase.compute_ns += parse_duration_ns(toks[1], line)?;
                }
                "end" => {
                    let (start, phase) = current_phase.take().expect("in phase");
                    commands.push(Stmt { line: start, cmd: Command::Phase(phase) });
                }
                other => {
                    return Err(err(format!("unexpected {other:?} inside phase (missing end?)")))
                }
            }
            continue;
        }

        match kw.as_str() {
            "machine" => {
                if toks.len() != 2 {
                    return Err(err("machine needs a platform name".into()));
                }
                machine = Some(toks[1].to_string());
            }
            "initiator" => {
                if toks.len() != 2 {
                    return Err(err("initiator needs a cpuset".into()));
                }
                initiator = Some(toks[1].to_string());
            }
            "threads" => {
                if toks.len() != 2 {
                    return Err(err("threads needs a count".into()));
                }
                threads =
                    Some(toks[1].parse().map_err(|_| err(format!("bad count {:?}", toks[1])))?);
            }
            "discover" => {
                discovery = match toks.get(1).copied() {
                    Some("firmware") => Discovery::Firmware,
                    Some("benchmarks") => Discovery::Benchmarks,
                    other => {
                        return Err(err(format!("discover firmware|benchmarks, got {other:?}")))
                    }
                };
            }
            "alloc" => {
                if !(4..=7).contains(&toks.len()) {
                    return Err(err("alloc needs: alloc <name> <size> <criterion> \
                         [strict|next|spill] [global] [ttl=<n>]"
                        .into()));
                }
                let mut fallback = Fallback::NextTarget;
                let mut global = false;
                let mut ttl = None;
                for &tok in &toks[4..] {
                    match tok {
                        "next" => fallback = Fallback::NextTarget,
                        "strict" => fallback = Fallback::Strict,
                        "spill" => fallback = Fallback::PartialSpill,
                        "global" => global = true,
                        other => match other.strip_prefix("ttl=") {
                            Some(n) => {
                                let n: u64 = n
                                    .parse()
                                    .map_err(|_| err(format!("bad ttl= value {other:?}")))?;
                                if n == 0 {
                                    return Err(err("ttl= must be at least 1 epoch".into()));
                                }
                                ttl = Some(n);
                            }
                            None => return Err(err(format!("unknown alloc option {other:?}"))),
                        },
                    }
                }
                commands.push(Stmt {
                    line,
                    cmd: Command::Alloc {
                        name: toks[1].to_string(),
                        size: parse_size(toks[2], line)?,
                        criterion: parse_criterion(toks[3], line)?,
                        fallback,
                        global,
                        ttl,
                    },
                });
            }
            "free" => {
                if toks.len() != 2 {
                    return Err(err("free needs a buffer name".into()));
                }
                commands.push(Stmt { line, cmd: Command::Free(toks[1].to_string()) });
            }
            "migrate" => {
                if toks.len() != 3 {
                    return Err(err("migrate needs: migrate <name> <criterion>".into()));
                }
                commands.push(Stmt {
                    line,
                    cmd: Command::Migrate {
                        name: toks[1].to_string(),
                        criterion: parse_criterion(toks[2], line)?,
                    },
                });
            }
            "rebalance" => {
                let criterion = match toks.get(1) {
                    Some(tok) => parse_criterion(tok, line)?,
                    None => attr::BANDWIDTH,
                };
                commands.push(Stmt { line, cmd: Command::Rebalance { criterion } });
            }
            "guidance" => {
                if !(2..=3).contains(&toks.len()) {
                    return Err(err("guidance needs: guidance <period> [criterion]".into()));
                }
                let period: u64 = toks[1]
                    .parse()
                    .map_err(|_| err(format!("bad sampling period {:?}", toks[1])))?;
                if period == 0 {
                    return Err(err("sampling period must be at least 1".into()));
                }
                let criterion = match toks.get(2) {
                    Some(tok) => parse_criterion(tok, line)?,
                    None => attr::BANDWIDTH,
                };
                commands.push(Stmt { line, cmd: Command::Guidance { period, criterion } });
            }
            "serve" => {
                let mut policy = None;
                let mut shards = 1u32;
                let mut guided = false;
                let mut budget_ms = None;
                for &tok in &toks[1..] {
                    if let Some(n) = tok.strip_prefix("shards=") {
                        shards =
                            n.parse().map_err(|_| err(format!("bad shards= value {tok:?}")))?;
                        if shards == 0 {
                            return Err(err("serve needs at least 1 shard".into()));
                        }
                    } else if let Some(v) = tok.strip_prefix("guided=") {
                        guided = match v {
                            "on" => true,
                            "off" => false,
                            _ => return Err(err(format!("bad guided= value {tok:?} (on|off)"))),
                        };
                    } else if let Some(n) = tok.strip_prefix("budget=") {
                        let ms: u64 =
                            n.parse().map_err(|_| err(format!("bad budget= value {tok:?}")))?;
                        if ms == 0 {
                            return Err(err("serve budget= must be at least 1 ms".into()));
                        }
                        budget_ms = Some(ms);
                    } else if let Some(p) = ArbitrationPolicy::from_str_opt(tok) {
                        if policy.replace(p).is_some() {
                            return Err(err("serve takes at most one policy name".into()));
                        }
                    } else {
                        return Err(err(format!(
                            "unknown serve argument {tok:?} \
                             (fair-share|fcfs|static, shards=N, guided=on|off, budget=N)"
                        )));
                    }
                }
                if budget_ms.is_some() && !guided {
                    return Err(err("serve budget= requires guided=on".into()));
                }
                commands.push(Stmt {
                    line,
                    cmd: Command::Serve {
                        policy: policy.unwrap_or(ArbitrationPolicy::FairShare),
                        shards,
                        guided,
                        budget_ms,
                    },
                });
            }
            "federate" => {
                let mut members = None;
                let mut spill = true;
                let mut policy = ArbitrationPolicy::FairShare;
                for &tok in &toks[1..] {
                    if let Some(n) = tok.strip_prefix("brokers=") {
                        let n: u32 =
                            n.parse().map_err(|_| err(format!("bad brokers= value {tok:?}")))?;
                        if n == 0 {
                            return Err(err("federate needs at least 1 broker".into()));
                        }
                        members = Some(n);
                    } else if let Some(v) = tok.strip_prefix("spill=") {
                        spill = match v {
                            "on" => true,
                            "off" => false,
                            _ => return Err(err(format!("bad spill= value {tok:?} (on|off)"))),
                        };
                    } else if let Some(p) = ArbitrationPolicy::from_str_opt(tok) {
                        policy = p;
                    } else {
                        return Err(err(format!("unknown federate option {tok:?}")));
                    }
                }
                let Some(members) = members else {
                    return Err(err(
                        "federate needs: federate brokers=<n> [spill=on|off] [policy]".into(),
                    ));
                };
                commands.push(Stmt { line, cmd: Command::Federate { members, spill, policy } });
            }
            "tenant" => {
                if !(2..=3).contains(&toks.len()) {
                    return Err(err("tenant needs: tenant <name> [latency|normal|batch]".into()));
                }
                let name = toks[1].to_string();
                let priority = match toks.get(2) {
                    Some(tok) => Priority::from_str_opt(tok).ok_or_else(|| {
                        err(format!(
                            "unknown priority {tok:?} for tenant {name:?} (latency|normal|batch)"
                        ))
                    })?,
                    None => Priority::Normal,
                };
                commands.push(Stmt { line, cmd: Command::Tenant { name, priority } });
            }
            "fault" => {
                if toks.len() != 3 {
                    return Err(err("fault needs: fault degrade|restore <tier>".into()));
                }
                let degraded = match toks[1].to_ascii_lowercase().as_str() {
                    "degrade" => true,
                    "restore" => false,
                    other => return Err(err(format!("fault action {other:?} (degrade|restore)"))),
                };
                let kind = parse_tier(toks[2], line)?;
                commands.push(Stmt { line, cmd: Command::Fault { kind, degraded } });
            }
            "tick" => {
                if toks.len() > 2 {
                    return Err(err("tick takes at most an epoch count".into()));
                }
                let epochs: u64 = match toks.get(1) {
                    Some(tok) => {
                        tok.parse().map_err(|_| err(format!("bad epoch count {tok:?}")))?
                    }
                    None => 1,
                };
                if epochs == 0 {
                    return Err(err("tick needs at least 1 epoch".into()));
                }
                commands.push(Stmt { line, cmd: Command::Tick { epochs } });
            }
            "snapshot" => {
                let mut epoch = None;
                let mut file = None;
                for &tok in &toks[1..] {
                    if let Some(n) = tok.strip_prefix("epoch=") {
                        epoch =
                            Some(n.parse().map_err(|_| err(format!("bad epoch= value {tok:?}")))?);
                    } else if let Some(path) = tok.strip_prefix("file=") {
                        file = Some(path.to_string());
                    } else {
                        return Err(err(format!("unknown snapshot option {tok:?}")));
                    }
                }
                let (Some(epoch), Some(file)) = (epoch, file) else {
                    return Err(err("snapshot needs: snapshot epoch=<n> file=<path>".into()));
                };
                commands.push(Stmt { line, cmd: Command::Snapshot { epoch, file } });
            }
            "phase" => {
                if toks.len() != 2 {
                    return Err(err("phase needs a name".into()));
                }
                current_phase = Some((
                    line,
                    PhaseSpec { name: toks[1].to_string(), accesses: Vec::new(), compute_ns: 0.0 },
                ));
            }
            "end" => return Err(err("end outside a phase".into())),
            other => return Err(err(format!("unknown statement {other:?}"))),
        }
    }

    if current_phase.is_some() {
        return Err(ParseError {
            line: text.lines().count(),
            message: "unterminated phase".into(),
        });
    }
    Ok(Scenario {
        machine: machine.ok_or(ParseError { line: 0, message: "missing machine".into() })?,
        initiator: initiator.unwrap_or_else(|| "0-".to_string()),
        threads: threads.unwrap_or(1),
        discovery,
        commands,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
machine knl-flat
initiator 0-15
threads 16
alloc hot 3GiB bandwidth spill
alloc bulk 10GiB capacity
phase traverse
  read hot 12GiB seq
  read bulk 2GiB random
  compute 5ms
end
free hot
migrate bulk bandwidth
"#;

    #[test]
    fn parses_sample() {
        let s = parse(SAMPLE).expect("valid");
        assert_eq!(s.machine, "knl-flat");
        assert_eq!(s.initiator, "0-15");
        assert_eq!(s.threads, 16);
        assert_eq!(s.commands.len(), 5);
        match &s.commands[0].cmd {
            Command::Alloc { name, size, criterion, fallback, global, ttl } => {
                assert_eq!(name, "hot");
                assert_eq!(*size, 3 << 30);
                assert_eq!(*criterion, attr::BANDWIDTH);
                assert_eq!(*fallback, Fallback::PartialSpill);
                assert!(!global);
                assert_eq!(*ttl, None);
            }
            other => panic!("expected alloc, got {other:?}"),
        }
        match &s.commands[2].cmd {
            Command::Phase(p) => {
                assert_eq!(p.name, "traverse");
                assert_eq!(p.accesses.len(), 2);
                assert_eq!(p.accesses[0].bytes_read, 12 << 30);
                assert_eq!(p.accesses[1].pattern, AccessPattern::Random);
                assert_eq!(p.accesses[0].hot_fraction, 1.0);
                assert!((p.compute_ns - 5e6).abs() < 1e-9);
            }
            other => panic!("expected phase, got {other:?}"),
        }
        assert_eq!(s.commands[3].cmd, Command::Free("hot".into()));
    }

    #[test]
    fn statements_carry_source_lines() {
        let s = parse(SAMPLE).expect("valid");
        // Lines of: alloc hot, alloc bulk, phase traverse, free, migrate.
        let lines: Vec<usize> = s.commands.iter().map(|c| c.line).collect();
        assert_eq!(lines, vec![6, 7, 8, 13, 14]);
    }

    #[test]
    fn guidance_statement() {
        let s = parse(
            "machine knl-flat
guidance 32768
guidance 8192 latency
",
        )
        .expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Guidance { period: 32768, criterion: attr::BANDWIDTH }
        );
        assert_eq!(s.commands[1].cmd, Command::Guidance { period: 8192, criterion: attr::LATENCY });
        assert!(parse("machine m\nguidance\n").is_err());
        assert!(parse("machine m\nguidance 0\n").is_err());
        assert!(parse("machine m\nguidance many\n").is_err());
        assert!(parse("machine m\nguidance 4096 bogus\n").is_err());
    }

    #[test]
    fn sizes_and_durations() {
        assert_eq!(parse_size("512MiB", 1).unwrap(), 512 << 20);
        assert_eq!(parse_size("2KiB", 1).unwrap(), 2048);
        assert_eq!(parse_size("1.5GiB", 1).unwrap(), 3 << 29);
        assert_eq!(parse_size("4096", 1).unwrap(), 4096);
        assert_eq!(parse_size("64B", 1).unwrap(), 64);
        assert!(parse_size("xx", 1).is_err());
        assert!((parse_duration_ns("2s", 1).unwrap() - 2e9).abs() < 1.0);
        assert!((parse_duration_ns("300us", 1).unwrap() - 3e5).abs() < 1e-9);
        assert!(parse_duration_ns("5", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "machine knl-flat\nallocate x 1GiB bandwidth\n";
        let e = parse(bad).expect_err("bad keyword");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown statement"));

        let e = parse("machine knl-flat\nphase p\n  read a 1GiB seq\n").expect_err("no end");
        assert!(e.message.contains("unterminated"));

        let e = parse("alloc x 1GiB bandwidth\n").expect_err("no machine");
        assert!(e.message.contains("missing machine"));

        let e = parse("machine m\nphase p\n  alloc y 1GiB latency\nend\n")
            .expect_err("alloc inside phase");
        assert!(e.message.contains("inside phase"));
    }

    #[test]
    fn hot_fraction_option() {
        let s = parse(
            "machine xeon
phase p
  read a 1GiB random hot=0.25
end
",
        )
        .expect("valid");
        match &s.commands[0].cmd {
            Command::Phase(p) => assert_eq!(p.accesses[0].hot_fraction, 0.25),
            other => panic!("expected phase, got {other:?}"),
        }
        assert!(parse(
            "machine m
phase p
  read a 1GiB random hot=2
end
"
        )
        .is_err());
        assert!(parse(
            "machine m
phase p
  read a 1GiB random bogus
end
"
        )
        .is_err());
    }

    #[test]
    fn rebalance_statement() {
        let s = parse(
            "machine knl-flat
rebalance
rebalance latency
",
        )
        .expect("valid");
        assert_eq!(s.commands[0].cmd, Command::Rebalance { criterion: attr::BANDWIDTH });
        assert_eq!(s.commands[1].cmd, Command::Rebalance { criterion: attr::LATENCY });
        assert!(parse(
            "machine m
rebalance bogus
"
        )
        .is_err());
    }

    #[test]
    fn global_alloc_option() {
        let s = parse(
            "machine xeon-4s
alloc w 1GiB latency next global
",
        )
        .expect("valid");
        match &s.commands[0].cmd {
            Command::Alloc { global, fallback, .. } => {
                assert!(*global);
                assert_eq!(*fallback, Fallback::NextTarget);
            }
            other => panic!("expected alloc, got {other:?}"),
        }
        assert!(parse(
            "machine m
alloc w 1GiB latency bogus
"
        )
        .is_err());
    }

    #[test]
    fn serve_and_tenant_statements() {
        let s = parse(
            "machine knl-flat
serve
tenant graph latency
alloc frontier 1GiB bandwidth spill
tenant stream batch
serve fcfs
",
        )
        .expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Serve {
                policy: ArbitrationPolicy::FairShare,
                shards: 1,
                guided: false,
                budget_ms: None
            }
        );
        assert_eq!(
            s.commands[1].cmd,
            Command::Tenant { name: "graph".into(), priority: Priority::Latency }
        );
        assert_eq!(
            s.commands[3].cmd,
            Command::Tenant { name: "stream".into(), priority: Priority::Batch }
        );
        assert_eq!(
            s.commands[4].cmd,
            Command::Serve {
                policy: ArbitrationPolicy::Fcfs,
                shards: 1,
                guided: false,
                budget_ms: None
            }
        );
        // Default priority is normal.
        let s = parse("machine m\ntenant t\n").expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Tenant { name: "t".into(), priority: Priority::Normal }
        );
    }

    #[test]
    fn serve_and_tenant_parse_errors_carry_line_and_name() {
        let e = parse("machine knl-flat\n\ntenant graph urgent\n").expect_err("bad priority");
        assert_eq!(e.line, 3);
        assert!(e.message.contains("urgent"), "{e}");
        assert!(e.message.contains("graph"), "{e}");
        assert!(e.to_string().contains("line 3"), "{e}");

        let e = parse("machine m\nserve lottery\n").expect_err("bad policy");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("lottery"), "{e}");

        let e = parse("machine m\ntenant\n").expect_err("missing name");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("tenant needs"), "{e}");

        let e = parse("machine m\nserve fcfs extra\n").expect_err("too many args");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn serve_shards_argument() {
        let s = parse("machine knl-flat\nserve fcfs shards=4\n").expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Serve {
                policy: ArbitrationPolicy::Fcfs,
                shards: 4,
                guided: false,
                budget_ms: None
            }
        );
        // Order-independent: shards= may precede the policy.
        let s = parse("machine knl-flat\nserve shards=2 fair-share\n").expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Serve {
                policy: ArbitrationPolicy::FairShare,
                shards: 2,
                guided: false,
                budget_ms: None
            }
        );

        let e = parse("machine m\nserve shards=0\n").expect_err("zero shards");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("at least 1 shard"), "{e}");

        let e = parse("machine m\nserve shards=many\n").expect_err("bad count");
        assert!(e.message.contains("shards="), "{e}");

        let e = parse("machine m\nserve fcfs static\n").expect_err("two policies");
        assert!(e.message.contains("at most one policy"), "{e}");
    }

    #[test]
    fn serve_guided_arguments() {
        let s = parse("machine knl-flat\nserve guided=on budget=5\n").expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Serve {
                policy: ArbitrationPolicy::FairShare,
                shards: 1,
                guided: true,
                budget_ms: Some(5),
            }
        );
        // guided=off is accepted and equals the default.
        let s = parse("machine knl-flat\nserve fcfs guided=off\n").expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Serve {
                policy: ArbitrationPolicy::Fcfs,
                shards: 1,
                guided: false,
                budget_ms: None,
            }
        );

        let e = parse("machine m\nserve guided=maybe\n").expect_err("bad value");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("guided="), "{e}");

        let e = parse("machine m\nserve guided=on budget=0\n").expect_err("zero budget");
        assert!(e.message.contains("at least 1 ms"), "{e}");

        let e = parse("machine m\nserve budget=5\n").expect_err("budget without guided");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("requires guided=on"), "{e}");
    }

    #[test]
    fn fault_and_tick_statements() {
        let s = parse(
            "machine knl-flat
serve
fault degrade hbm
tick
tick 4
fault restore mcdram
",
        )
        .expect("valid");
        assert_eq!(s.commands[1].cmd, Command::Fault { kind: MemoryKind::Hbm, degraded: true });
        assert_eq!(s.commands[2].cmd, Command::Tick { epochs: 1 });
        assert_eq!(s.commands[3].cmd, Command::Tick { epochs: 4 });
        // mcdram is an alias for the HBM tier; restore clears the flag.
        assert_eq!(s.commands[4].cmd, Command::Fault { kind: MemoryKind::Hbm, degraded: false });

        let e = parse("machine m\nfault degrade floppy\n").expect_err("bad tier");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("floppy"), "{e}");
        let e = parse("machine m\nfault explode hbm\n").expect_err("bad action");
        assert!(e.message.contains("degrade|restore"), "{e}");
        assert!(parse("machine m\nfault degrade\n").is_err());
        assert!(parse("machine m\ntick 0\n").is_err());
        assert!(parse("machine m\ntick soon\n").is_err());
        assert!(parse("machine m\ntick 2 3\n").is_err());
    }

    #[test]
    fn snapshot_statement() {
        let s =
            parse("machine knl-flat\nserve\nsnapshot epoch=6 file=/tmp/brk.snap\n").expect("valid");
        assert_eq!(s.commands[1].cmd, Command::Snapshot { epoch: 6, file: "/tmp/brk.snap".into() });
        // Options are order-independent.
        let s = parse("machine m\nsnapshot file=x.snap epoch=0\n").expect("valid");
        assert_eq!(s.commands[0].cmd, Command::Snapshot { epoch: 0, file: "x.snap".into() });

        let e = parse("machine m\nsnapshot epoch=6\n").expect_err("missing file");
        assert!(e.message.contains("snapshot needs"), "{e}");
        let e = parse("machine m\nsnapshot file=x.snap\n").expect_err("missing epoch");
        assert!(e.message.contains("snapshot needs"), "{e}");
        let e = parse("machine m\nsnapshot epoch=soon file=x\n").expect_err("bad epoch");
        assert!(e.message.contains("epoch="), "{e}");
        let e = parse("machine m\nsnapshot epoch=1 file=x verbose\n").expect_err("bad option");
        assert!(e.message.contains("verbose"), "{e}");
    }

    #[test]
    fn federate_statement() {
        let s = parse("machine knl-flat\nfederate brokers=2\n").expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Federate { members: 2, spill: true, policy: ArbitrationPolicy::FairShare }
        );
        let s = parse("machine knl-flat\nfederate spill=off brokers=4 fcfs\n").expect("valid");
        assert_eq!(
            s.commands[0].cmd,
            Command::Federate { members: 4, spill: false, policy: ArbitrationPolicy::Fcfs }
        );
        let e = parse("machine m\nfederate\n").expect_err("missing brokers");
        assert!(e.message.contains("federate needs"), "{e}");
        let e = parse("machine m\nfederate brokers=0\n").expect_err("zero brokers");
        assert!(e.message.contains("at least 1"), "{e}");
        let e = parse("machine m\nfederate brokers=two\n").expect_err("bad count");
        assert!(e.message.contains("brokers="), "{e}");
        let e = parse("machine m\nfederate brokers=2 spill=maybe\n").expect_err("bad spill");
        assert!(e.message.contains("spill="), "{e}");
        let e = parse("machine m\nfederate brokers=2 verbose\n").expect_err("bad option");
        assert!(e.message.contains("verbose"), "{e}");
    }

    #[test]
    fn alloc_ttl_option() {
        let s = parse("machine knl-flat\nserve\ntenant t\nalloc a 1GiB bandwidth spill ttl=6\n")
            .expect("valid");
        match &s.commands[2].cmd {
            Command::Alloc { ttl, fallback, .. } => {
                assert_eq!(*ttl, Some(6));
                assert_eq!(*fallback, Fallback::PartialSpill);
            }
            other => panic!("expected alloc, got {other:?}"),
        }
        let e = parse("machine m\nalloc a 1GiB bandwidth ttl=0\n").expect_err("zero ttl");
        assert!(e.message.contains("at least 1"), "{e}");
        assert!(parse("machine m\nalloc a 1GiB bandwidth ttl=many\n").is_err());
        assert!(parse("machine m\nalloc a 1GiB bandwidth ttl\n").is_err());
    }

    #[test]
    fn defaults() {
        let s = parse("machine xeon\n").expect("minimal");
        assert_eq!(s.initiator, "0-");
        assert_eq!(s.threads, 1);
        assert_eq!(s.discovery, Discovery::Firmware);
        let s = parse("machine xeon\ndiscover benchmarks\n").expect("valid");
        assert_eq!(s.discovery, Discovery::Benchmarks);
    }
}
