//! Robustness: the scenario parser never panics, whatever the input.

use hetmem_scenario::parse;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(text in ".{0,400}") {
        let _ = parse(&text);
    }

    /// Lines assembled from DSL-ish tokens either parse or produce a
    /// located error — never a panic, never a bogus line number.
    #[test]
    fn token_soup_errors_are_located(
        lines in prop::collection::vec(
            prop::sample::select(vec![
                "machine knl-flat",
                "machine xeon",
                "initiator 0-15",
                "threads 16",
                "alloc a 1GiB bandwidth",
                "alloc b 2MiB latency spill",
                "free a",
                "migrate a capacity",
                "rebalance bandwidth",
                "guidance 32768 bandwidth",
                "guidance 1",
                "guidance 0",
                "guidance",
                "phase p",
                "  read a 1GiB seq",
                "  write b 4KiB random",
                "  compute 1ms",
                "end",
                "# comment",
                "",
                "garbage tokens here",
            ]),
            0..20
        )
    ) {
        let text = lines.join("\n");
        match parse(&text) {
            Ok(s) => prop_assert!(!s.machine.is_empty()),
            Err(e) => prop_assert!(e.line <= lines.len() + 1, "line {} of {}", e.line, lines.len()),
        }
    }
}
