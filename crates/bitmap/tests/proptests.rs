//! Property-based tests for bitmap set algebra.

use hetmem_bitmap::Bitmap;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy producing a finite bitmap together with its reference model.
fn finite_bitmap() -> impl Strategy<Value = (Bitmap, BTreeSet<usize>)> {
    prop::collection::btree_set(0usize..512, 0..64)
        .prop_map(|set| (Bitmap::from_indices(set.iter().copied()), set))
}

proptest! {
    #[test]
    fn model_or((a, ma) in finite_bitmap(), (b, mb) in finite_bitmap()) {
        let r = a.or(&b);
        let mr: BTreeSet<_> = ma.union(&mb).copied().collect();
        prop_assert_eq!(r.iter().collect::<Vec<_>>(), mr.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn model_and((a, ma) in finite_bitmap(), (b, mb) in finite_bitmap()) {
        let r = a.and(&b);
        let mr: BTreeSet<_> = ma.intersection(&mb).copied().collect();
        prop_assert_eq!(r.iter().collect::<Vec<_>>(), mr.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn model_xor((a, ma) in finite_bitmap(), (b, mb) in finite_bitmap()) {
        let r = a.xor(&b);
        let mr: BTreeSet<_> = ma.symmetric_difference(&mb).copied().collect();
        prop_assert_eq!(r.iter().collect::<Vec<_>>(), mr.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn model_andnot((a, ma) in finite_bitmap(), (b, mb) in finite_bitmap()) {
        let r = a.andnot(&b);
        let mr: BTreeSet<_> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(r.iter().collect::<Vec<_>>(), mr.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn weight_matches_model((a, ma) in finite_bitmap()) {
        prop_assert_eq!(a.weight(), Some(ma.len()));
    }

    #[test]
    fn first_last_match_model((a, ma) in finite_bitmap()) {
        prop_assert_eq!(a.first(), ma.iter().next().copied());
        prop_assert_eq!(a.last(), ma.iter().next_back().copied());
    }

    #[test]
    fn display_parse_roundtrip((a, _) in finite_bitmap()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Bitmap>().unwrap(), a);
    }

    #[test]
    fn taskset_roundtrip((a, _) in finite_bitmap()) {
        let s = a.to_taskset().unwrap();
        prop_assert_eq!(Bitmap::from_taskset(&s).unwrap(), a);
    }

    #[test]
    fn includes_is_subset_relation((a, ma) in finite_bitmap(), (b, mb) in finite_bitmap()) {
        prop_assert_eq!(a.includes(&b), mb.is_subset(&ma));
    }

    #[test]
    fn intersects_is_nonempty_intersection((a, ma) in finite_bitmap(), (b, mb) in finite_bitmap()) {
        prop_assert_eq!(a.intersects(&b), !ma.is_disjoint(&mb));
    }

    #[test]
    fn demorgan((a, _) in finite_bitmap(), (b, _) in finite_bitmap()) {
        // !(a | b) == !a & !b — exercises the infinite representation.
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    #[test]
    fn complement_partitions((a, _) in finite_bitmap()) {
        let c = a.not();
        prop_assert!(!a.intersects(&c));
        prop_assert!(a.or(&c).is_full());
    }

    #[test]
    fn compare_is_total_order((a, _) in finite_bitmap(), (b, _) in finite_bitmap()) {
        use std::cmp::Ordering;
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn set_then_clear_is_identity((a, _) in finite_bitmap(), idx in 0usize..512) {
        let mut m = a.clone();
        let was = m.is_set(idx);
        m.set(idx);
        prop_assert!(m.is_set(idx));
        if !was {
            m.clear(idx);
            prop_assert_eq!(m, a);
        }
    }

    #[test]
    fn range_set_matches_loop(lo in 0usize..256, len in 0usize..64) {
        let hi = lo + len;
        let ranged = Bitmap::from_range(lo, hi);
        let looped = Bitmap::from_indices(lo..=hi);
        prop_assert_eq!(ranged, looped);
    }
}
