//! Textual formats for bitmaps.
//!
//! Two formats are supported, mirroring hwloc:
//!
//! * the **list format** used by `Display`/`FromStr`: comma-separated
//!   indices and inclusive ranges, e.g. `"0-3,8,12-"` where a trailing
//!   `-` means "to infinity". The empty set prints as `""` and the full
//!   set as `"0-"`.
//! * the **taskset format** (`to_taskset` / `from_taskset`): a single
//!   hexadecimal mask prefixed by `0x`, as consumed by Linux `taskset`.
//!   Infinite bitmaps cannot be represented and are rejected.

use crate::Bitmap;
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a bitmap from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitmapError {
    msg: String,
}

impl ParseBitmapError {
    fn new(msg: impl Into<String>) -> Self {
        ParseBitmapError { msg: msg.into() }
    }
}

impl fmt::Display for ParseBitmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bitmap string: {}", self.msg)
    }
}

impl std::error::Error for ParseBitmapError {}

impl fmt::Display for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Every index at or above this point is set; a run reaching it
        // never ends and must print as "begin-" (extending it via
        // `next()` would loop forever).
        let inf_from = self.is_infinite().then(|| self.words.len() * crate::BITS_PER_WORD);
        let mut first = true;
        let mut cur = self.first();
        while let Some(begin) = cur {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            // Extend the run as far as it goes.
            let mut end = begin;
            loop {
                if inf_from.is_some_and(|s| end + 1 >= s) {
                    return write!(f, "{begin}-");
                }
                match self.next(end) {
                    Some(n) if n == end + 1 => end = n,
                    other => {
                        cur = other;
                        break;
                    }
                }
            }
            if begin == end {
                write!(f, "{begin}")?;
            } else {
                write!(f, "{begin}-{end}")?;
            }
        }
        Ok(())
    }
}

impl FromStr for Bitmap {
    type Err = ParseBitmapError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let mut b = Bitmap::new();
        if s.is_empty() {
            return Ok(b);
        }
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(ParseBitmapError::new("empty element"));
            }
            if let Some(begin) = part.strip_suffix('-') {
                let begin: usize = begin
                    .trim()
                    .parse()
                    .map_err(|_| ParseBitmapError::new(format!("bad index in {part:?}")))?;
                b.set_range_unbounded(begin);
            } else if let Some((lo, hi)) = part.split_once('-') {
                let lo: usize = lo
                    .trim()
                    .parse()
                    .map_err(|_| ParseBitmapError::new(format!("bad range start in {part:?}")))?;
                let hi: usize = hi
                    .trim()
                    .parse()
                    .map_err(|_| ParseBitmapError::new(format!("bad range end in {part:?}")))?;
                if lo > hi {
                    return Err(ParseBitmapError::new(format!("reversed range {part:?}")));
                }
                b.set_range(lo, hi);
            } else {
                let i: usize = part
                    .parse()
                    .map_err(|_| ParseBitmapError::new(format!("bad index {part:?}")))?;
                b.set(i);
            }
        }
        Ok(b)
    }
}

impl Bitmap {
    /// Renders the bitmap as a Linux `taskset`-style hexadecimal mask.
    ///
    /// Returns `None` for infinite bitmaps, which have no finite mask.
    pub fn to_taskset(&self) -> Option<String> {
        if self.is_infinite() {
            return None;
        }
        let last = match self.last() {
            None => return Some("0x0".to_string()),
            Some(l) => l,
        };
        let nibbles = last / 4 + 1;
        let mut s = String::with_capacity(nibbles + 2);
        s.push_str("0x");
        let mut leading = true;
        for n in (0..nibbles).rev() {
            let mut v = 0u8;
            for bit in 0..4 {
                if self.is_set(n * 4 + bit) {
                    v |= 1 << bit;
                }
            }
            if v == 0 && leading && n != 0 {
                continue;
            }
            leading = false;
            s.push(char::from_digit(v as u32, 16).unwrap());
        }
        Some(s)
    }

    /// Parses a Linux `taskset`-style hexadecimal mask (`0x` prefix
    /// optional, commas ignored).
    pub fn from_taskset(s: &str) -> Result<Bitmap, ParseBitmapError> {
        let s = s.trim();
        let hex = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")).unwrap_or(s);
        let hex: String = hex.chars().filter(|&c| c != ',').collect();
        if hex.is_empty() {
            return Err(ParseBitmapError::new("empty taskset mask"));
        }
        let mut b = Bitmap::new();
        let n = hex.len();
        for (pos, c) in hex.chars().enumerate() {
            let v = c
                .to_digit(16)
                .ok_or_else(|| ParseBitmapError::new(format!("bad hex digit {c:?}")))?;
            let nibble = n - 1 - pos;
            for bit in 0..4 {
                if v & (1 << bit) != 0 {
                    b.set(nibble * 4 + bit);
                }
            }
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_simple() {
        assert_eq!(Bitmap::new().to_string(), "");
        assert_eq!(Bitmap::only(4).to_string(), "4");
        assert_eq!(Bitmap::from_range(0, 3).to_string(), "0-3");
        assert_eq!(Bitmap::from_indices([0, 1, 2, 3, 8]).to_string(), "0-3,8");
        assert_eq!(Bitmap::full().to_string(), "0-");
    }

    #[test]
    fn display_infinite_tail() {
        let mut b = Bitmap::from_indices([1, 2]);
        b.set_range_unbounded(100);
        assert_eq!(b.to_string(), "1-2,100-");
    }

    #[test]
    fn parse_simple() {
        assert_eq!("".parse::<Bitmap>().unwrap(), Bitmap::new());
        assert_eq!("0-3,8".parse::<Bitmap>().unwrap(), Bitmap::from_indices([0, 1, 2, 3, 8]));
        assert_eq!("0-".parse::<Bitmap>().unwrap(), Bitmap::full());
        assert_eq!("5".parse::<Bitmap>().unwrap(), Bitmap::only(5));
        assert_eq!(" 1 - 2 , 4 ".parse::<Bitmap>().unwrap(), Bitmap::from_indices([1, 2, 4]));
    }

    #[test]
    fn parse_errors() {
        assert!("x".parse::<Bitmap>().is_err());
        assert!("3-1".parse::<Bitmap>().is_err());
        assert!("1,,2".parse::<Bitmap>().is_err());
        assert!("-3".parse::<Bitmap>().is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let cases = [
            Bitmap::new(),
            Bitmap::only(0),
            Bitmap::from_range(3, 70),
            Bitmap::from_indices([0, 2, 4, 6, 63, 64, 65, 127]),
            Bitmap::full(),
        ];
        for b in cases {
            let s = b.to_string();
            assert_eq!(s.parse::<Bitmap>().unwrap(), b, "roundtrip of {s:?}");
        }
    }

    #[test]
    fn taskset_format() {
        assert_eq!(Bitmap::new().to_taskset().unwrap(), "0x0");
        assert_eq!(Bitmap::from_range(0, 3).to_taskset().unwrap(), "0xf");
        assert_eq!(Bitmap::from_indices([0, 4]).to_taskset().unwrap(), "0x11");
        assert_eq!(Bitmap::only(64).to_taskset().unwrap(), "0x10000000000000000");
        assert_eq!(Bitmap::full().to_taskset(), None);
    }

    #[test]
    fn taskset_parse() {
        assert_eq!(Bitmap::from_taskset("0xf").unwrap(), Bitmap::from_range(0, 3));
        assert_eq!(Bitmap::from_taskset("11").unwrap(), Bitmap::from_indices([0, 4]));
        assert_eq!(Bitmap::from_taskset("0x1,0000").unwrap(), Bitmap::only(16));
        assert!(Bitmap::from_taskset("0xzz").is_err());
        assert!(Bitmap::from_taskset("").is_err());
    }

    #[test]
    fn taskset_roundtrip() {
        let cases = [
            Bitmap::new(),
            Bitmap::only(7),
            Bitmap::from_range(0, 100),
            Bitmap::from_indices([3, 64, 129]),
        ];
        for b in cases {
            let s = b.to_taskset().unwrap();
            assert_eq!(Bitmap::from_taskset(&s).unwrap(), b, "roundtrip of {s}");
        }
    }
}
