//! hwloc-style dynamic bitmaps.
//!
//! This crate provides [`Bitmap`], a growable set of unsigned bit indices
//! modelled on hwloc's `hwloc_bitmap_t`. Bitmaps are used throughout the
//! workspace as *CPU sets* (which logical processors an initiator covers)
//! and *node sets* (which NUMA nodes a memory binding covers).
//!
//! Like hwloc bitmaps, a [`Bitmap`] may be *infinitely set*: every index
//! above the explicitly stored words is considered set. This is how
//! `hwloc_bitmap_full()` and unbounded ranges (`"4-"`) are represented
//! without allocating unbounded storage.
//!
//! # Example
//!
//! ```
//! use hetmem_bitmap::Bitmap;
//!
//! let mut set = Bitmap::new();
//! set.set_range(0, 3);
//! set.set(8);
//! assert_eq!(set.to_string(), "0-3,8");
//! assert_eq!(set.weight(), Some(5));
//!
//! let full = Bitmap::full();
//! assert!(full.is_set(1_000_000));
//! assert!(full.includes(&set));
//! ```

#![warn(missing_docs)]
mod parse;

pub use parse::ParseBitmapError;

use std::cmp::Ordering;
use std::fmt;

const BITS_PER_WORD: usize = 64;

/// A dynamically sized set of unsigned bit indices, possibly infinite.
///
/// The set is stored as a vector of 64-bit words plus an `infinite` flag;
/// when `infinite` is true, every index at or above `words.len() * 64` is
/// considered a member. All operations normalize the representation so
/// that structural equality (`==`) matches set equality.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bitmap {
    words: Vec<u64>,
    infinite: bool,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Bitmap { words: Vec::new(), infinite: false }
    }

    /// Creates a bitmap with every index set (hwloc's "full" bitmap).
    pub fn full() -> Self {
        Bitmap { words: Vec::new(), infinite: true }
    }

    /// Creates a bitmap with exactly one index set.
    pub fn only(index: usize) -> Self {
        let mut b = Bitmap::new();
        b.set(index);
        b
    }

    /// Creates a bitmap from an inclusive range of indices.
    pub fn from_range(begin: usize, end: usize) -> Self {
        let mut b = Bitmap::new();
        b.set_range(begin, end);
        b
    }

    /// Creates a bitmap from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut b = Bitmap::new();
        for i in indices {
            b.set(i);
        }
        b
    }

    fn word_index(index: usize) -> (usize, u64) {
        (index / BITS_PER_WORD, 1u64 << (index % BITS_PER_WORD))
    }

    fn ensure_words(&mut self, nwords: usize) {
        if self.words.len() < nwords {
            let fill = if self.infinite { u64::MAX } else { 0 };
            self.words.resize(nwords, fill);
        }
    }

    /// Removes trailing words that carry no information.
    fn normalize(&mut self) {
        let trail = if self.infinite { u64::MAX } else { 0 };
        while self.words.last() == Some(&trail) {
            self.words.pop();
        }
    }

    fn word_at(&self, i: usize) -> u64 {
        if i < self.words.len() {
            self.words[i]
        } else if self.infinite {
            u64::MAX
        } else {
            0
        }
    }

    /// Returns `true` if the bitmap has no index set.
    pub fn is_zero(&self) -> bool {
        !self.infinite && self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if every index is set.
    pub fn is_full(&self) -> bool {
        self.infinite && self.words.iter().all(|&w| w == u64::MAX)
    }

    /// Returns `true` if the bitmap is infinitely set (all indices above
    /// some point are members).
    pub fn is_infinite(&self) -> bool {
        self.infinite
    }

    /// Tests whether `index` is a member.
    pub fn is_set(&self, index: usize) -> bool {
        let (w, m) = Self::word_index(index);
        self.word_at(w) & m != 0
    }

    /// Adds `index` to the set.
    pub fn set(&mut self, index: usize) {
        if self.infinite && index / BITS_PER_WORD >= self.words.len() {
            return;
        }
        let (w, m) = Self::word_index(index);
        self.ensure_words(w + 1);
        self.words[w] |= m;
        self.normalize();
    }

    /// Removes `index` from the set.
    pub fn clear(&mut self, index: usize) {
        let (w, m) = Self::word_index(index);
        if !self.infinite && w >= self.words.len() {
            return;
        }
        self.ensure_words(w + 1);
        self.words[w] &= !m;
        self.normalize();
    }

    /// Adds the inclusive range `[begin, end]` to the set.
    pub fn set_range(&mut self, begin: usize, end: usize) {
        if begin > end {
            return;
        }
        let last_word = end / BITS_PER_WORD;
        self.ensure_words(last_word + 1);
        for i in begin..=end {
            let (w, m) = Self::word_index(i);
            self.words[w] |= m;
        }
        self.normalize();
    }

    /// Adds every index at or above `begin` (an unbounded range, like
    /// hwloc's `"N-"` syntax).
    pub fn set_range_unbounded(&mut self, begin: usize) {
        let first_word = begin / BITS_PER_WORD;
        self.ensure_words(first_word + 1);
        // Set the partial word then drop everything after it.
        let within = begin % BITS_PER_WORD;
        let mask = u64::MAX << within;
        self.words[first_word] |= mask;
        for w in self.words.iter_mut().skip(first_word + 1) {
            *w = u64::MAX;
        }
        self.infinite = true;
        self.normalize();
    }

    /// Removes the inclusive range `[begin, end]` from the set.
    pub fn clear_range(&mut self, begin: usize, end: usize) {
        if begin > end {
            return;
        }
        let last_word = end / BITS_PER_WORD;
        if self.infinite || last_word < self.words.len() {
            self.ensure_words(last_word + 1);
        }
        let max = (self.words.len() * BITS_PER_WORD).saturating_sub(1);
        for i in begin..=end.min(max) {
            let (w, m) = Self::word_index(i);
            if w < self.words.len() {
                self.words[w] &= !m;
            }
        }
        self.normalize();
    }

    /// Empties the set.
    pub fn clear_all(&mut self) {
        self.words.clear();
        self.infinite = false;
    }

    /// Keeps only the lowest set index (hwloc's `hwloc_bitmap_singlify`).
    ///
    /// Used to pick one PU out of a CPU set when binding a thread.
    pub fn singlify(&mut self) {
        match self.first() {
            Some(first) => {
                self.clear_all();
                self.set(first);
            }
            None => self.clear_all(),
        }
    }

    /// Lowest set index, or `None` when empty.
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * BITS_PER_WORD + w.trailing_zeros() as usize);
            }
        }
        if self.infinite {
            Some(self.words.len() * BITS_PER_WORD)
        } else {
            None
        }
    }

    /// Highest set index; `None` when empty **or** infinite.
    pub fn last(&self) -> Option<usize> {
        if self.infinite {
            return None;
        }
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * BITS_PER_WORD + (BITS_PER_WORD - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Lowest set index strictly greater than `prev`, or `None`.
    pub fn next(&self, prev: usize) -> Option<usize> {
        let start = prev + 1;
        let (mut w, _) = Self::word_index(start);
        let within = start % BITS_PER_WORD;
        if w >= self.words.len() {
            return if self.infinite { Some(start) } else { None };
        }
        let masked = self.words[w] & (u64::MAX << within);
        if masked != 0 {
            return Some(w * BITS_PER_WORD + masked.trailing_zeros() as usize);
        }
        w += 1;
        while w < self.words.len() {
            if self.words[w] != 0 {
                return Some(w * BITS_PER_WORD + self.words[w].trailing_zeros() as usize);
            }
            w += 1;
        }
        if self.infinite {
            Some(self.words.len() * BITS_PER_WORD)
        } else {
            None
        }
    }

    /// Lowest unset index, or `None` when full.
    pub fn first_unset(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                return Some(i * BITS_PER_WORD + (!w).trailing_zeros() as usize);
            }
        }
        if self.infinite {
            None
        } else {
            Some(self.words.len() * BITS_PER_WORD)
        }
    }

    /// Number of set indices; `None` when infinite.
    pub fn weight(&self) -> Option<usize> {
        if self.infinite {
            None
        } else {
            Some(self.words.iter().map(|w| w.count_ones() as usize).sum())
        }
    }

    /// Iterates over the set indices in increasing order.
    ///
    /// For infinite bitmaps the iterator never ends; callers typically
    /// bound it with `take`.
    pub fn iter(&self) -> Iter<'_> {
        Iter { bitmap: self, next: self.first() }
    }

    /// Set union, in place.
    pub fn or_assign(&mut self, other: &Bitmap) {
        let n = self.words.len().max(other.words.len());
        self.ensure_words(n);
        for (i, w) in self.words.iter_mut().enumerate() {
            *w |= other.word_at(i);
        }
        self.infinite |= other.infinite;
        self.normalize();
    }

    /// Set intersection, in place.
    pub fn and_assign(&mut self, other: &Bitmap) {
        let n = self.words.len().max(other.words.len());
        self.ensure_words(n);
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.word_at(i);
        }
        self.infinite &= other.infinite;
        self.normalize();
    }

    /// Symmetric difference, in place.
    pub fn xor_assign(&mut self, other: &Bitmap) {
        let n = self.words.len().max(other.words.len());
        self.ensure_words(n);
        for (i, w) in self.words.iter_mut().enumerate() {
            *w ^= other.word_at(i);
        }
        self.infinite ^= other.infinite;
        self.normalize();
    }

    /// Set difference (`self \ other`), in place.
    pub fn andnot_assign(&mut self, other: &Bitmap) {
        let n = self.words.len().max(other.words.len());
        self.ensure_words(n);
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= !other.word_at(i);
        }
        self.infinite &= !other.infinite;
        self.normalize();
    }

    /// Returns the union of two bitmaps.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut r = self.clone();
        r.or_assign(other);
        r
    }

    /// Returns the intersection of two bitmaps.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut r = self.clone();
        r.and_assign(other);
        r
    }

    /// Returns the symmetric difference of two bitmaps.
    pub fn xor(&self, other: &Bitmap) -> Bitmap {
        let mut r = self.clone();
        r.xor_assign(other);
        r
    }

    /// Returns `self \ other`.
    pub fn andnot(&self, other: &Bitmap) -> Bitmap {
        let mut r = self.clone();
        r.andnot_assign(other);
        r
    }

    /// Returns the complement.
    pub fn not(&self) -> Bitmap {
        let mut r =
            Bitmap { words: self.words.iter().map(|w| !w).collect(), infinite: !self.infinite };
        r.normalize();
        r
    }

    /// Returns `true` if the two bitmaps share at least one index.
    pub fn intersects(&self, other: &Bitmap) -> bool {
        let n = self.words.len().max(other.words.len());
        for i in 0..n {
            if self.word_at(i) & other.word_at(i) != 0 {
                return true;
            }
        }
        self.infinite && other.infinite
    }

    /// Returns `true` if `self` is a superset of `other`
    /// (hwloc's `hwloc_bitmap_isincluded(other, self)`).
    pub fn includes(&self, other: &Bitmap) -> bool {
        let n = self.words.len().max(other.words.len());
        for i in 0..n {
            if other.word_at(i) & !self.word_at(i) != 0 {
                return false;
            }
        }
        !other.infinite || self.infinite
    }

    /// hwloc-style total order: compares the highest differing index
    /// (the bitmap containing it is "greater").
    pub fn compare(&self, other: &Bitmap) -> Ordering {
        match (self.infinite, other.infinite) {
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        let n = self.words.len().max(other.words.len());
        for i in (0..n).rev() {
            let (a, b) = (self.word_at(i), other.word_at(i));
            if a != b {
                // The bitmap with the highest differing bit set is greater.
                let diff = a ^ b;
                let top = 1u64 << (63 - diff.leading_zeros());
                return if a & top != 0 { Ordering::Greater } else { Ordering::Less };
            }
        }
        Ordering::Equal
    }

    /// Compares lowest indices first (hwloc's `compare_first`): the bitmap
    /// whose lowest set index is smaller is "less". Empty sorts last.
    pub fn compare_first(&self, other: &Bitmap) -> Ordering {
        match (self.first(), other.first()) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => Ordering::Greater,
            (Some(_), None) => Ordering::Less,
            (Some(a), Some(b)) => a.cmp(&b),
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap({self})")
    }
}

impl FromIterator<usize> for Bitmap {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Bitmap::from_indices(iter)
    }
}

/// Iterator over the set indices of a [`Bitmap`], in increasing order.
pub struct Iter<'a> {
    bitmap: &'a Bitmap,
    next: Option<usize>,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let cur = self.next?;
        self.next = self.bitmap.next(cur);
        Some(cur)
    }
}

impl<'a> IntoIterator for &'a Bitmap {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = Bitmap::new();
        assert!(e.is_zero());
        assert!(!e.is_full());
        assert_eq!(e.weight(), Some(0));
        assert_eq!(e.first(), None);
        assert_eq!(e.last(), None);

        let f = Bitmap::full();
        assert!(f.is_full());
        assert!(!f.is_zero());
        assert_eq!(f.weight(), None);
        assert_eq!(f.first(), Some(0));
        assert_eq!(f.last(), None);
        assert!(f.is_set(123456));
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut b = Bitmap::new();
        b.set(5);
        b.set(64);
        b.set(129);
        assert!(b.is_set(5) && b.is_set(64) && b.is_set(129));
        assert!(!b.is_set(6));
        assert_eq!(b.weight(), Some(3));
        b.clear(64);
        assert!(!b.is_set(64));
        assert_eq!(b.weight(), Some(2));
        b.clear(64); // idempotent
        assert_eq!(b.weight(), Some(2));
    }

    #[test]
    fn set_on_full_is_noop() {
        let mut f = Bitmap::full();
        f.set(10);
        assert!(f.is_full());
    }

    #[test]
    fn clear_on_full_punches_hole() {
        let mut f = Bitmap::full();
        f.clear(70);
        assert!(!f.is_set(70));
        assert!(f.is_set(69) && f.is_set(71));
        assert!(f.is_infinite());
        assert_eq!(f.first_unset(), Some(70));
    }

    #[test]
    fn ranges() {
        let mut b = Bitmap::new();
        b.set_range(10, 20);
        assert_eq!(b.weight(), Some(11));
        assert_eq!(b.first(), Some(10));
        assert_eq!(b.last(), Some(20));
        b.clear_range(12, 18);
        assert_eq!(b.weight(), Some(4));
        assert!(b.is_set(11) && b.is_set(19));
        assert!(!b.is_set(15));
    }

    #[test]
    fn degenerate_range_is_empty() {
        let mut b = Bitmap::new();
        b.set_range(5, 4);
        assert!(b.is_zero());
        b.set_range(7, 7);
        assert_eq!(b.weight(), Some(1));
    }

    #[test]
    fn unbounded_range() {
        let mut b = Bitmap::new();
        b.set_range_unbounded(100);
        assert!(b.is_infinite());
        assert!(!b.is_set(99));
        assert!(b.is_set(100));
        assert!(b.is_set(1 << 20));
        assert_eq!(b.first(), Some(100));
        assert_eq!(b.weight(), None);
    }

    #[test]
    fn clear_range_on_infinite() {
        let mut b = Bitmap::full();
        b.clear_range(0, 63);
        assert_eq!(b.first(), Some(64));
        assert!(b.is_infinite());
    }

    #[test]
    fn singlify() {
        let mut b = Bitmap::from_indices([3, 9, 200]);
        b.singlify();
        assert_eq!(b.weight(), Some(1));
        assert!(b.is_set(3));

        let mut f = Bitmap::full();
        f.singlify();
        assert_eq!(f.weight(), Some(1));
        assert!(f.is_set(0));
    }

    #[test]
    fn next_iteration() {
        let b = Bitmap::from_indices([0, 1, 63, 64, 200]);
        let collected: Vec<_> = b.iter().collect();
        assert_eq!(collected, vec![0, 1, 63, 64, 200]);
        assert_eq!(b.next(0), Some(1));
        assert_eq!(b.next(1), Some(63));
        assert_eq!(b.next(200), None);
    }

    #[test]
    fn infinite_iteration_is_lazy() {
        let b = Bitmap::full();
        let first5: Vec<_> = b.iter().take(5).collect();
        assert_eq!(first5, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn boolean_ops() {
        let a = Bitmap::from_range(0, 9);
        let b = Bitmap::from_range(5, 14);
        assert_eq!(a.and(&b), Bitmap::from_range(5, 9));
        assert_eq!(a.or(&b), Bitmap::from_range(0, 14));
        let mut expected_xor = Bitmap::from_range(0, 4);
        expected_xor.set_range(10, 14);
        assert_eq!(a.xor(&b), expected_xor);
        assert_eq!(a.andnot(&b), Bitmap::from_range(0, 4));
    }

    #[test]
    fn not_involution() {
        let a = Bitmap::from_indices([1, 5, 77]);
        assert_eq!(a.not().not(), a);
        assert!(a.not().is_infinite());
        assert!(!a.not().is_set(5));
        assert!(a.not().is_set(4));
    }

    #[test]
    fn includes_and_intersects() {
        let a = Bitmap::from_range(0, 9);
        let b = Bitmap::from_range(3, 5);
        assert!(a.includes(&b));
        assert!(!b.includes(&a));
        assert!(a.intersects(&b));
        let c = Bitmap::from_range(100, 110);
        assert!(!a.intersects(&c));
        assert!(Bitmap::full().includes(&a));
        assert!(!a.includes(&Bitmap::full()));
        assert!(a.includes(&Bitmap::new()));
        assert!(!a.intersects(&Bitmap::new()));
        assert!(Bitmap::full().intersects(&Bitmap::full()));
    }

    #[test]
    fn compare_order() {
        let a = Bitmap::from_indices([1]);
        let b = Bitmap::from_indices([2]);
        assert_eq!(a.compare(&b), Ordering::Less);
        assert_eq!(b.compare(&a), Ordering::Greater);
        assert_eq!(a.compare(&a), Ordering::Equal);
        assert_eq!(Bitmap::full().compare(&a), Ordering::Greater);
        let c = Bitmap::from_indices([1, 2]);
        assert_eq!(c.compare(&b), Ordering::Greater);
    }

    #[test]
    fn compare_first_order() {
        let a = Bitmap::from_indices([1, 50]);
        let b = Bitmap::from_indices([2]);
        assert_eq!(a.compare_first(&b), Ordering::Less);
        assert_eq!(Bitmap::new().compare_first(&a), Ordering::Greater);
    }

    #[test]
    fn first_unset() {
        let b = Bitmap::from_range(0, 5);
        assert_eq!(b.first_unset(), Some(6));
        assert_eq!(Bitmap::full().first_unset(), None);
        assert_eq!(Bitmap::new().first_unset(), Some(0));
    }

    #[test]
    fn normalization_keeps_equality_structural() {
        let mut a = Bitmap::new();
        a.set(500);
        a.clear(500);
        assert_eq!(a, Bitmap::new());

        let mut f = Bitmap::full();
        f.clear(100);
        f.set(100);
        assert_eq!(f, Bitmap::full());
    }
}
