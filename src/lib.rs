//! # hetmem — performance attributes for heterogeneous memory
//!
//! Umbrella crate re-exporting the whole workspace: a reproduction of
//! *"Using Performance Attributes for Managing Heterogeneous Memory in
//! HPC Applications"* (Goglin & Rubio Proaño, PDSEC/IPDPS-W 2022).
//!
//! See the README for the architecture tour; in short:
//!
//! * [`topology`] — hwloc-style object tree and the paper's platforms;
//! * [`hmat`] — simulated ACPI SRAT/HMAT firmware tables;
//! * [`memsim`] — the deterministic memory-system simulator replacing
//!   the paper's physical machines;
//! * [`core`] — the memory-attributes API (the contribution);
//! * [`membench`] — STREAM/lmbench/multichase-style benchmarks that
//!   feed measured attribute values;
//! * [`placement`] — the unified placement engine: attribute-fallback
//!   ranking, admission policies, and the Strict/NextTarget/
//!   PartialSpill planning walk shared by the allocator, tiering,
//!   guidance, and the service broker;
//! * [`alloc`] — the heterogeneous allocator `mem_alloc(.., attribute)`
//!   plus the baselines it is compared against;
//! * [`guidance`] — online access sampling (PEBS-style) feeding an
//!   automatic mid-phase promotion/demotion engine;
//! * [`profile`] — the VTune-like memory-access profiler;
//! * [`apps`] — Graph500 BFS, STREAM, SpMV and a two-phase migration
//!   workload;
//! * [`scenario`] — a text DSL to drive custom workloads through the
//!   whole stack without recompiling (`hetmem-run`);
//! * [`service`] — a multi-tenant allocation broker with fair-share
//!   arbitration, a JSONL wire protocol (`hetmem-serve`) and
//!   contention feedback between co-located tenants;
//! * [`snapshot`] — versioned broker checkpoints, crash-safe wire-log
//!   recording (`hetmem-serve --record/--restore`), and byte-for-byte
//!   deterministic replay (`hetmem-replay`);
//! * [`telemetry`] — allocation-decision events, the wait-free
//!   [`TelemetrySink`]/[`ThreadWriter`] emission fast path with
//!   loss-accounted collection, JSONL traces, and the per-run
//!   placement report behind `--trace`.

#![warn(missing_docs)]
pub use hetmem_alloc as alloc;
pub use hetmem_apps as apps;
pub use hetmem_bitmap as bitmap;
pub use hetmem_core as core;
pub use hetmem_federation as federation;
pub use hetmem_guidance as guidance;
pub use hetmem_hmat as hmat;
pub use hetmem_membench as membench;
pub use hetmem_memsim as memsim;
pub use hetmem_placement as placement;
pub use hetmem_profile as profile;
pub use hetmem_scenario as scenario;
pub use hetmem_service as service;
pub use hetmem_snapshot as snapshot;
pub use hetmem_telemetry as telemetry;
pub use hetmem_topology as topology;

pub use hetmem_bitmap::Bitmap;
pub use hetmem_core::{attr, AttrFlags, AttrId, LocalityFlags, MemAttrs, NodeId};
pub use hetmem_memsim::Machine;
pub use hetmem_placement::{
    AdmissionPolicy, FallbackChain, PlacementEngine, PlacementPlan, RankedCandidates,
};
pub use hetmem_telemetry::{
    BackgroundCollector, CollectedEvent, Collector, TelemetrySink, ThreadLoss, ThreadWriter,
};
