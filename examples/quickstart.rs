//! Quickstart: discover a machine's memory attributes and allocate by
//! *requirement*, not by technology name.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hetmem::alloc::{AllocRequest, Fallback, HetAllocator};
use hetmem::core::{attr, discovery};
use hetmem::memsim::{Machine, MemoryManager};
use hetmem::telemetry::TelemetrySink;
use hetmem::Bitmap;
use std::sync::Arc;

fn main() {
    // A simulated KNL in SNC-4 Flat mode: 4 clusters, each with 24 GB
    // of DRAM and 4 GB of MCDRAM.
    let machine = Arc::new(Machine::knl_snc4_flat());
    println!("{}", machine.topology().render_numa_summary());

    // 1. Discover attributes from the (simulated) firmware tables.
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("firmware discovery"));

    // 2. Our threads run on cluster 0.
    let cluster0: Bitmap = "0-15".parse().expect("cpuset");

    // 3. Ask questions instead of hardcoding memory kinds.
    let (bw_node, bw) = attrs.get_best_target(attr::BANDWIDTH, &cluster0).expect("values");
    let (lat_node, lat) = attrs.get_best_target(attr::LATENCY, &cluster0).expect("values");
    let (cap_node, cap) = attrs.get_best_target(attr::CAPACITY, &cluster0).expect("values");
    println!("best bandwidth target: {bw_node} ({bw} MB/s)");
    println!("best latency target:   {lat_node} ({lat} ns)");
    println!("best capacity target:  {cap_node} ({} GiB)", cap >> 30);

    // 4. Allocate through the heterogeneous allocator: one request
    //    builder, one criterion, ranked fallback when the best target
    //    is full — with every decision recorded.
    let mut allocator = HetAllocator::new(attrs, MemoryManager::new(machine.clone()));
    let sink = TelemetrySink::new();
    allocator.set_sink(sink.clone());
    let hot = allocator
        .alloc(
            &AllocRequest::new(1 << 30)
                .criterion(attr::BANDWIDTH)
                .initiator(&cluster0)
                .fallback(Fallback::NextTarget)
                .label("hot"),
        )
        .expect("1 GiB fits MCDRAM");
    let big = allocator
        .alloc(
            &AllocRequest::new(10 << 30)
                .criterion(attr::CAPACITY)
                .initiator(&cluster0)
                .fallback(Fallback::NextTarget)
                .label("big"),
        )
        .expect("10 GiB fits DRAM");
    for (label, id) in [("hot (bandwidth)", hot), ("big (capacity)", big)] {
        let region = allocator.memory().region(id).expect("live");
        let node = region.single_node().expect("single node");
        println!(
            "{label:<18} -> {node} [{}]",
            machine.topology().node_kind(node).expect("known").subtype()
        );
    }

    // 5. The telemetry subsystem saw every decision — drained from
    //    the wait-free per-thread rings, with exact loss accounting.
    println!();
    let (_events, summary) = sink.collector().summarize();
    print!("{}", summary.render());
}
