//! Portability demo (§VI-A of the paper): the *same* Graph500 code
//! path — "allocate my buffers on the best local target for
//! **Latency**" — runs optimally on two very different machines,
//! while a memkind-style hardwired `hbw_malloc` fails on one of them.
//!
//! ```text
//! cargo run --release --example graph500_portable
//! ```

use hetmem::alloc::baselines::Kind;
use hetmem::alloc::Fallback;
use hetmem::apps::graph500::{run, Graph500Config};
use hetmem::apps::Placement;
use hetmem::core::{attr, discovery};
use hetmem::memsim::{AccessEngine, Machine, MemoryManager};
use hetmem::NodeId;
use std::sync::Arc;

fn run_on(machine: Machine, cfg: Graph500Config, manual_best: NodeId) {
    let machine = Arc::new(machine);
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("discovery"));
    let engine = AccessEngine::new(machine.clone());
    let name = machine.name().to_string();

    let run_with = |placement: &Placement| {
        let mut alloc =
            hetmem::alloc::HetAllocator::new(attrs.clone(), MemoryManager::new(machine.clone()));
        run(&mut alloc, &engine, &cfg, placement, None)
    };

    let manual = run_with(&Placement::BindAll(manual_best)).expect("manual fits");
    let portable =
        run_with(&Placement::Criterion { attr: attr::LATENCY, fallback: Fallback::NextTarget })
            .expect("criterion fits");
    let hardwired = run_with(&Placement::HardwiredKind(Kind::HighBandwidth));

    println!("machine: {name}");
    println!("  manual best node     : {:.3} TEPSe+8", manual.teps_harmonic / 1e8);
    println!(
        "  attr(Latency)        : {:.3} TEPSe+8  <- same code on every machine",
        portable.teps_harmonic / 1e8
    );
    match hardwired {
        Ok(r) => println!("  memkind hbw_malloc   : {:.3} TEPSe+8", r.teps_harmonic / 1e8),
        Err(e) => println!("  memkind hbw_malloc   : FAILS ({e})"),
    }
    for (label, placement) in &portable.placements {
        let nodes: Vec<String> = placement.iter().map(|(n, _)| n.to_string()).collect();
        println!("    {label:<30} -> {}", nodes.join("+"));
    }
    println!();
}

fn main() {
    run_on(Machine::xeon_1lm_no_snc(), Graph500Config::xeon_paper(26), NodeId(0));
    run_on(Machine::knl_snc4_flat(), Graph500Config::knl_paper(26), NodeId(0));
}
