//! Capacity conflicts and how to manage them (§VII of the paper):
//! FCFS vs priority ordering, partial spill, and phase-boundary
//! migration.
//!
//! ```text
//! cargo run --example capacity_planning
//! ```

use hetmem::alloc::planner::{plan, PlanOrder, PlannedAlloc};
use hetmem::alloc::HetAllocator;
use hetmem::core::{attr, discovery};
use hetmem::memsim::{Machine, MemoryManager};
use hetmem::Bitmap;
use std::sync::Arc;

const GIB: u64 = 1 << 30;

fn describe(machine: &Machine, placed: &[hetmem::alloc::planner::PlacedAlloc]) {
    for p in placed {
        let spots: Vec<String> = p
            .placement
            .iter()
            .map(|&(n, b)| {
                format!(
                    "{}:{:.1}GiB",
                    machine.topology().node_kind(n).expect("known").subtype(),
                    b as f64 / GIB as f64
                )
            })
            .collect();
        println!(
            "  {:<24} -> {:<28} ({})",
            p.name,
            spots.join(" + "),
            if p.got_best { "got best target" } else { "displaced" }
        );
    }
}

fn main() {
    let machine = Arc::new(Machine::knl_snc4_flat());
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("discovery"));
    let cluster: Bitmap = "0-15".parse().expect("cpuset");

    // Two bandwidth-hungry buffers compete for one small MCDRAM; the
    // important one is allocated *last* in program order.
    let reqs = vec![
        PlannedAlloc {
            name: "scratch (cold)".into(),
            size: 3 * GIB,
            criterion: attr::BANDWIDTH,
            priority: 1,
        },
        PlannedAlloc {
            name: "frontier (hot)".into(),
            size: 3 * GIB,
            criterion: attr::BANDWIDTH,
            priority: 10,
        },
    ];

    println!("-- First Come First Served (what naive runtimes do) --");
    let mut alloc = HetAllocator::new(attrs.clone(), MemoryManager::new(machine.clone()));
    let placed = plan(&mut alloc, &reqs, &cluster, PlanOrder::Fcfs).expect("fits");
    describe(&machine, &placed);

    println!("-- Priority order (the paper's proposal) --");
    let mut alloc = HetAllocator::new(attrs.clone(), MemoryManager::new(machine.clone()));
    let placed = plan(&mut alloc, &reqs, &cluster, PlanOrder::Priority).expect("fits");
    describe(&machine, &placed);

    println!("-- Migration at a phase boundary --");
    let mut alloc = HetAllocator::new(attrs, MemoryManager::new(machine.clone()));
    let placed = plan(&mut alloc, &reqs, &cluster, PlanOrder::Fcfs).expect("fits");
    let hot = placed[1].region;
    alloc.free(placed[0].region); // the cold buffer's phase ended
    let (node, report) =
        alloc.migrate_to_best(hot, attr::BANDWIDTH, &cluster).expect("MCDRAM now free");
    println!(
        "  migrated hot buffer to {} [{}]: {} MiB moved, modelled cost {:.1} ms",
        node,
        machine.topology().node_kind(node).expect("known").subtype(),
        report.bytes_moved >> 20,
        report.cost_ns / 1e6
    );
    println!("  (migration is expensive — §VII: avoid unless phases change significantly)");
}
