//! Online guidance: place buffers from *sampled* hotness, no oracle.
//!
//! The working set switches from `a` to `b` halfway through the run.
//! Nothing tells the engine — it notices from PEBS-style samples,
//! demotes the stale buffer and promotes the hot one mid-phase, and
//! pays the (modelled) sampling and migration bills for doing so.
//!
//! ```text
//! cargo run --example online_guidance
//! ```

use hetmem::core::discovery;
use hetmem::guidance::{GuidanceEngine, GuidancePolicy, SamplerConfig};
use hetmem::memsim::{
    AccessEngine, AccessPattern, AllocPolicy, BufferAccess, Machine, MemoryManager, Phase, RegionId,
};
use hetmem::telemetry::{Event, TelemetrySink};
use hetmem::{Bitmap, NodeId};
use std::sync::Arc;

const GIB: u64 = 1 << 30;

fn read_phase(name: &str, region: RegionId, cluster: &Bitmap) -> Phase {
    Phase {
        name: name.into(),
        accesses: vec![BufferAccess::new(region, 16 * GIB, 0, AccessPattern::Sequential)],
        threads: 16,
        initiator: cluster.clone(),
        compute_ns: 0.0,
    }
}

fn main() {
    // KNL SNC-4 Flat, working on cluster 0: DRAM node 0, MCDRAM node 4.
    let machine = Arc::new(Machine::knl_snc4_flat());
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("firmware discovery"));
    let engine = AccessEngine::new(machine.clone());
    let mut mm = MemoryManager::new(machine);
    let cluster: Bitmap = "0-15".parse().expect("cpuset");

    // `a` gets the MCDRAM; the 3.8 GiB node can't also hold `b`.
    let a = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(4))).expect("a in MCDRAM");
    let b = mm.alloc(2 * GIB, AllocPolicy::Bind(NodeId(0))).expect("b in DRAM");

    // Default policy: rank by bandwidth, promote at a 25% traffic
    // share, demote below 10%, 2-interval hysteresis. Period 32768
    // accesses per sample.
    let sink = TelemetrySink::new();
    let mut g = GuidanceEngine::new(attrs, GuidancePolicy::default(), SamplerConfig::default());
    g.set_sink(sink.clone());

    println!("phase        intervals   time (ms)   moved");
    let names = ["era1.0", "era1.1", "era1.2", "era2.0", "era2.1", "era2.2", "era2.3"];
    for (i, name) in names.iter().enumerate() {
        // The era change: phases stop touching `a` and hammer `b`.
        let hot = if i < 3 { a } else { b };
        let report = g.run_phase(&engine, &mut mm, &read_phase(name, hot, &cluster));
        let moved: Vec<String> = report
            .actions
            .iter()
            .map(|act| {
                format!(
                    "{} region {} -> {} (est. share {:.2})",
                    if act.promoted { "promoted" } else { "demoted" },
                    act.region.0,
                    act.to,
                    act.estimated_hotness
                )
            })
            .collect();
        println!(
            "{name:<12} {:>9}   {:>9.1}   {}",
            report.intervals,
            report.time_ns() / 1e6,
            if moved.is_empty() { "-".to_string() } else { moved.join(", ") }
        );
    }

    let stats = g.stats();
    println!();
    println!(
        "{} intervals sampled, {} promotions, {} demotions",
        stats.intervals, stats.promotions, stats.demotions
    );
    println!(
        "bills: {:.1} ms migrating, {:.2} ms sampling overhead",
        stats.migration_ns / 1e6,
        stats.overhead_ns / 1e6
    );
    println!("mean hot-set accuracy vs ground truth: {:.1}%", stats.mean_accuracy() * 100.0);

    // Every migration went through telemetry as a GuidanceDecision,
    // recording how hot the engine *thought* the region was vs how hot
    // it actually was in that interval.
    println!();
    for event in sink.collector().drain_sorted() {
        if let Event::GuidanceDecision(d) = &event.event {
            println!(
                "decision @interval {}: region {} {} -> {} (estimated {:.2}, actual {:.2})",
                d.interval,
                d.region,
                if d.promoted { "promote" } else { "demote" },
                d.to,
                d.estimated_hotness,
                d.actual_hotness
            );
        }
    }
}
