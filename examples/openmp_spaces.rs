//! OpenMP 5.x memory spaces over the attributes (§IV / §VIII): the
//! same `omp_alloc` calls resolve to the right physical memory on
//! every machine, because each space maps to an attribute criterion
//! instead of a technology.
//!
//! ```text
//! cargo run --example openmp_spaces
//! ```

use hetmem::alloc::omp::{omp_alloc, omp_free, OmpAllocator, OmpMemSpace, OmpPartition};
use hetmem::alloc::HetAllocator;
use hetmem::core::discovery;
use hetmem::memsim::{Machine, MemoryManager};
use hetmem::Bitmap;
use std::sync::Arc;

fn demo(machine: Machine, initiator: &str) {
    let machine = Arc::new(machine);
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("discovery"));
    let mut het = HetAllocator::new(attrs, MemoryManager::new(machine.clone()));
    let cpus: Bitmap = initiator.parse().expect("cpuset");

    println!("machine: {}", machine.name());
    for (label, space) in [
        ("omp_default_mem_space ", OmpMemSpace::Default),
        ("omp_high_bw_mem_space ", OmpMemSpace::HighBw),
        ("omp_low_lat_mem_space ", OmpMemSpace::LowLat),
        ("omp_large_cap_mem_space", OmpMemSpace::LargeCap),
    ] {
        let allocator = OmpAllocator::for_space(space);
        match omp_alloc(&mut het, 1 << 30, &allocator, &cpus) {
            Ok(id) => {
                let node = het.memory().region(id).expect("live").single_node().expect("one");
                println!(
                    "  {label} -> {node} [{}]",
                    machine.topology().node_kind(node).expect("known").subtype()
                );
                omp_free(&mut het, id);
            }
            Err(e) => println!("  {label} -> failed: {e}"),
        }
    }
    // partition(interleaved) spreads across the space's candidates.
    let interleaved = OmpAllocator {
        space: OmpMemSpace::LowLat,
        partition: OmpPartition::Interleaved,
        ..Default::default()
    };
    if let Ok(id) = omp_alloc(&mut het, 2 << 30, &interleaved, &cpus) {
        let region = het.memory().region(id).expect("live");
        let spots: Vec<String> = region
            .placement
            .iter()
            .map(|&(n, b)| {
                format!(
                    "{}:{}GiB",
                    machine.topology().node_kind(n).expect("known").subtype(),
                    b >> 30
                )
            })
            .collect();
        println!("  interleaved(low_lat)    -> {}", spots.join(" + "));
        omp_free(&mut het, id);
    }
    println!();
}

fn main() {
    demo(Machine::knl_snc4_flat(), "0-15");
    demo(Machine::xeon_1lm_no_snc(), "0-19");
    demo(Machine::fugaku_like(), "0-11");
}
