//! The two discovery paths of Table I side by side: ACPI HMAT firmware
//! tables (theoretical, local-only on today's platforms) versus
//! benchmarking (measured, can cover remote pairs too) — and the
//! paper's point that both produce the *same ranking*.
//!
//! ```text
//! cargo run --release --example discover_attributes
//! ```

use hetmem::core::{attr, discovery, render_fig5, MemAttrs};
use hetmem::membench::{feed_attrs, register_stream_triad_attr, BenchOptions};
use hetmem::memsim::Machine;
use hetmem::Bitmap;
use std::sync::Arc;

fn ranking(attrs: &MemAttrs, id: hetmem::AttrId, ini: &Bitmap) -> String {
    attrs
        .rank_local_targets(id, ini)
        .expect("known attribute")
        .iter()
        .map(|tv| format!("{}({})", tv.node, tv.value))
        .collect::<Vec<_>>()
        .join(" > ")
}

fn main() {
    let machine = Arc::new(Machine::xeon_1lm_snc());
    let socket0: Bitmap = "0-19".parse().expect("cpuset");

    println!("== native discovery: ACPI SRAT+HMAT, Linux local-only view ==");
    let firmware = discovery::from_firmware(&machine, true).expect("firmware discovery");
    println!("{}", render_fig5(&firmware));

    println!("== benchmark discovery: STREAM + pointer chase (incl. remote pairs) ==");
    let mut measured = feed_attrs(
        &machine,
        &BenchOptions { include_remote: true, read_write_variants: true, loaded_latency: false },
    )
    .expect("benchmark discovery");
    let triad = register_stream_triad_attr(&mut measured, &machine).expect("custom attribute");

    for (name, id) in [("Bandwidth", attr::BANDWIDTH), ("Latency", attr::LATENCY)] {
        println!("{name} ranking from socket 0:");
        println!("  firmware : {}", ranking(&firmware, id, &socket0));
        println!("  measured : {}", ranking(&measured, id, &socket0));
    }
    println!("custom StreamTriad ranking: {}", ranking(&measured, triad, &socket0));

    // The values differ (theoretical vs measured) but the *order* is
    // identical — which is all the allocator needs.
    for id in [attr::BANDWIDTH, attr::LATENCY] {
        let f: Vec<_> = firmware
            .rank_local_targets(id, &socket0)
            .expect("rank")
            .iter()
            .map(|t| t.node)
            .collect();
        let m: Vec<_> = measured
            .rank_local_targets(id, &socket0)
            .expect("rank")
            .iter()
            .map(|t| t.node)
            .collect();
        assert_eq!(f, m, "rankings must agree");
    }
    println!(
        "\nrankings agree between firmware and benchmarks — either source drives the allocator"
    );
}
