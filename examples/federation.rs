//! Two shard brokers federate the fictitious heterogeneous platform
//! (Fig. 3): each broker owns one package's DRAM, NVDIMM and HBM, and
//! the machine's single CXL-style far pool (the 1 TiB
//! network-attached node) lands in broker 0's shard alone.
//!
//! The demo runs the same three-tenant sequence twice:
//!
//! * a staging job fills broker 0's fast tiers (DRAM + HBM);
//! * a latency-class analytics tenant then asks for 8 GiB of strict
//!   fast memory on broker 0 — with spill enabled the shortfall
//!   forwards to broker 1 and the tenant **stays on the fast tier**
//!   (the peer's HBM); with spill disabled it must either fail or
//!   settle for local NVDIMM;
//! * an archive tenant homed on broker 1 asks for more capacity than
//!   its whole shard — only the federation can reach the far pool on
//!   broker 0's side of the machine.
//!
//! ```text
//! cargo run --example federation
//! ```

use hetmem::alloc::Fallback;
use hetmem::core::{attr, discovery};
use hetmem::federation::{shard_nodes, FederatedLease, Federation, FederationConfig};
use hetmem::memsim::Machine;
use hetmem::service::{ArbitrationPolicy, LeaseId, Priority};
use std::sync::Arc;

const GIB: u64 = 1 << 30;

fn describe(fed: &Federation, who: &str, lease: &FederatedLease) {
    let topo = fed.machine().topology();
    let spots: Vec<String> = lease
        .parts
        .iter()
        .flat_map(|part| {
            let placement =
                fed.broker(part.broker).placement(LeaseId(part.lease)).unwrap_or_default();
            placement.into_iter().map(move |(n, b)| {
                format!(
                    "broker{}/{}:{:.0}GiB",
                    part.broker,
                    topo.node_kind(n).expect("known").subtype(),
                    b as f64 / GIB as f64
                )
            })
        })
        .collect();
    println!(
        "  {:<22} -> {:<44} ({:.0} GiB fast)",
        who,
        spots.join(" + "),
        lease.fast_bytes() as f64 / GIB as f64
    );
}

fn run(spill: bool) {
    println!("-- federation of 2 brokers, spill {} --", if spill { "on" } else { "off" });
    let machine = Arc::new(Machine::fictitious());
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("discovery"));
    let fed = Federation::new(
        machine.clone(),
        attrs,
        &FederationConfig { members: 2, policy: ArbitrationPolicy::Fcfs, spill, record: false },
    );
    for (i, shard) in shard_nodes(machine.topology(), 2).iter().enumerate() {
        let spots: Vec<String> = shard
            .iter()
            .map(|&n| {
                format!(
                    "{}:{:.0}GiB",
                    machine.topology().node_kind(n).expect("known").subtype(),
                    machine.usable_capacity(n) as f64 / GIB as f64
                )
            })
            .collect();
        println!("  broker{i} shard: {}", spots.join(" + "));
    }

    // Registration order picks homes round-robin: analytics and
    // staging share broker 0, the archive lives on broker 1.
    fed.register("analytics", Priority::Latency).expect("register");
    fed.register("archive", Priority::Batch).expect("register");
    fed.register("staging", Priority::Batch).expect("register");
    // One gossip round: each broker now holds its peer's digest.
    fed.gossip();

    // The staging job swallows broker 0's DRAM and HBM exactly.
    let fast = describe_fast_capacity(&fed);
    let staging = fed
        .acquire(0, "staging", fast, attr::BANDWIDTH, Fallback::PartialSpill, Some("stage"), None)
        .expect("staging admitted");
    describe(&fed, "staging buffers", &staging);

    // The latency-class tenant refuses slow tiers outright. With
    // spill on, the shortfall forwards to broker 1 and lands on the
    // peer's HBM — still the fast tier. With spill off the same
    // request dies.
    match fed.acquire(0, "analytics", 8 * GIB, attr::BANDWIDTH, Fallback::Strict, Some("hot"), None)
    {
        Ok(lease) => describe(&fed, "analytics hot set", &lease),
        Err(e) => {
            println!("  analytics hot set      -> DENIED: {e}");
            let fallback = fed
                .acquire(
                    0,
                    "analytics",
                    8 * GIB,
                    attr::BANDWIDTH,
                    Fallback::PartialSpill,
                    Some("hot"),
                    None,
                )
                .expect("local spill fits");
            describe(&fed, "analytics (local spill)", &fallback);
        }
    }

    // Refresh digests, then ask broker 1 for more capacity than its
    // whole shard holds: only the federation reaches the far pool.
    fed.gossip();
    match fed.acquire(
        1,
        "archive",
        1200 * GIB,
        attr::CAPACITY,
        Fallback::PartialSpill,
        Some("cold"),
        None,
    ) {
        Ok(lease) => describe(&fed, "archive cold store", &lease),
        Err(e) => println!("  archive cold store     -> DENIED: {e}"),
    }
    println!();
}

/// Usable DRAM + HBM bytes in broker 0's shard.
fn describe_fast_capacity(fed: &Federation) -> u64 {
    use hetmem::topology::MemoryKind;
    let topo = fed.machine().topology();
    shard_nodes(topo, 2)[0]
        .iter()
        .filter(|&&n| matches!(topo.node_kind(n), Some(MemoryKind::Dram) | Some(MemoryKind::Hbm)))
        .map(|&n| fed.machine().usable_capacity(n))
        .sum()
}

fn main() {
    run(true);
    run(false);
    println!(
        "(with spill the latency tenant keeps the fast tier via the peer's HBM, and the \
         archive reaches the far pool; without it one is exiled to NVDIMM and the other denied)"
    );
}
