//! Mixed-sensitivity SpMV (§VII): the matrix streams (bandwidth), the
//! `x` vector gathers randomly (latency) — per-buffer criteria place
//! each where it belongs, beating any single-criterion placement.
//!
//! ```text
//! cargo run --release --example spmv_mixed
//! ```

use hetmem::alloc::{Fallback, HetAllocator};
use hetmem::apps::spmv::{advised_criteria, run, CsrMatrix, SpmvConfig};
use hetmem::apps::Placement;
use hetmem::core::{attr, discovery};
use hetmem::memsim::{AccessEngine, Machine, MemoryManager};
use std::sync::Arc;

fn main() {
    // The functional kernel is real — prove it at laptop scale first.
    let m = CsrMatrix::banded(10_000, 16);
    let x = vec![1.0; 10_000];
    let mut y = vec![0.0; 10_000];
    m.multiply(&x, &mut y);
    println!("functional SpMV: n=10000, nnz={}, y[0]={}", m.nnz(), y[0]);

    // Paper-scale run on the simulated KNL cluster.
    let machine = Arc::new(Machine::knl_snc4_flat());
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("discovery"));
    let engine = AccessEngine::new(machine.clone());
    let cfg = SpmvConfig { n: 1 << 25, nnz_per_row: 16, iterations: 4, threads: 16, first_cpu: 0 };
    println!(
        "\nsimulated SpMV: matrix {:.1} GiB, vectors {} MiB each, 16 threads",
        cfg.matrix_bytes() as f64 / (1u64 << 30) as f64,
        cfg.vector_bytes() >> 20
    );

    let placements: [(&str, Placement); 3] = [
        (
            "single criterion: Bandwidth",
            Placement::Criterion { attr: attr::BANDWIDTH, fallback: Fallback::PartialSpill },
        ),
        (
            "single criterion: Latency",
            Placement::Criterion { attr: attr::LATENCY, fallback: Fallback::PartialSpill },
        ),
        ("per-buffer advice (Fig. 6)", Placement::Advised(advised_criteria())),
    ];
    for (label, placement) in placements {
        let mut alloc = HetAllocator::new(attrs.clone(), MemoryManager::new(machine.clone()));
        match run(&mut alloc, &engine, &cfg, &placement, None) {
            Ok(res) => {
                println!("{label:<30} {:.3} GFLOP/s", res.gflops);
                for (name, pl) in &res.placements {
                    let spots: Vec<String> = pl
                        .iter()
                        .map(|&(n, b)| {
                            format!(
                                "{}:{:.2}GiB",
                                machine.topology().node_kind(n).expect("known").subtype(),
                                b as f64 / (1u64 << 30) as f64
                            )
                        })
                        .collect();
                    println!(
                        "    {:<20} -> {}",
                        name.split(' ').next().unwrap_or(name),
                        spots.join(" + ")
                    );
                }
            }
            Err(e) => println!("{label:<30} failed: {e}"),
        }
    }
}
