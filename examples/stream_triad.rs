//! STREAM Triad with the Bandwidth criterion (§VI / Table IIIb): fast
//! while the arrays fit the high-bandwidth memory, graceful spill when
//! they outgrow it.
//!
//! ```text
//! cargo run --release --example stream_triad
//! ```

use hetmem::alloc::{Fallback, HetAllocator};
use hetmem::apps::stream::{run, StreamConfig};
use hetmem::apps::Placement;
use hetmem::core::{attr, discovery};
use hetmem::memsim::{AccessEngine, Machine, MemoryManager};
use std::sync::Arc;

fn main() {
    let machine = Arc::new(Machine::knl_snc4_flat());
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("discovery"));
    let engine = AccessEngine::new(machine.clone());
    const GIB: f64 = (1u64 << 30) as f64;

    println!("KNL SNC-4 cluster: MCDRAM ~3.8 GiB usable, DRAM ~17.5 GiB usable");
    println!("{:<12} {:>12}   placement", "arrays", "Triad GiB/s");
    for total in [1.1, 3.4, 8.0, 17.9] {
        let mut alloc = HetAllocator::new(attrs.clone(), MemoryManager::new(machine.clone()));
        let cfg = StreamConfig::knl_paper((total * GIB) as u64);
        let placement =
            Placement::Criterion { attr: attr::BANDWIDTH, fallback: Fallback::PartialSpill };
        match run(&mut alloc, &engine, &cfg, &placement, None) {
            Ok(res) => {
                let mut spots: Vec<String> = Vec::new();
                for (name, pl) in &res.placements {
                    let desc: Vec<String> = pl
                        .iter()
                        .map(|&(n, b)| {
                            format!(
                                "{}:{:.1}GiB",
                                machine.topology().node_kind(n).expect("known").subtype(),
                                b as f64 / GIB
                            )
                        })
                        .collect();
                    spots.push(format!(
                        "{}={}",
                        name.split(' ').next().unwrap_or(name),
                        desc.join("+")
                    ));
                }
                println!(
                    "{:<12} {:>12.2}   {}",
                    format!("{total} GiB"),
                    res.triad_gibps,
                    spots.join("  ")
                );
            }
            Err(e) => println!("{:<12} {:>12}   {e}", format!("{total} GiB"), "-"),
        }
    }
}
