//! Two applications share one Cascade Lake machine through the
//! allocation broker (`hetmem-service`): a latency-critical
//! Graph500-style analytics job and a bandwidth-hungry STREAM-style
//! batch job.
//!
//! The batch job arrives first and asks for 340 GiB of "bandwidth"
//! memory. Under FCFS it swallows nearly the whole 368 GiB DRAM tier,
//! so the analytics job's working set lands on Optane — and its
//! random-access BFS phase pays the NVDIMM latency. Under fair-share
//! arbitration the batch job is clamped to its weighted share (minus
//! the analytics job's explicit reservation) and BFS keeps its DRAM.
//!
//! ```text
//! cargo run --example multi_tenant
//! ```

use hetmem::alloc::{AllocRequest, Fallback};
use hetmem::core::{attr, discovery};
use hetmem::memsim::{AccessPattern, BufferAccess, Machine, Phase};
use hetmem::service::{ArbitrationPolicy, Broker, Lease, Priority, TenantSpec};
use hetmem::topology::MemoryKind;
use hetmem::Bitmap;
use std::sync::Arc;

const GIB: u64 = 1 << 30;

fn describe(broker: &Broker, who: &str, lease: &Lease) {
    let spots: Vec<String> = lease
        .placement()
        .iter()
        .map(|&(n, b)| {
            format!(
                "{}:{:.0}GiB",
                broker.machine().topology().node_kind(n).expect("known").subtype(),
                b as f64 / GIB as f64
            )
        })
        .collect();
    println!(
        "  {:<20} -> {:<40} ({:.0} GiB fast)",
        who,
        spots.join(" + "),
        lease.fast_bytes() as f64 / GIB as f64
    );
}

fn run(policy: ArbitrationPolicy) {
    println!("-- {} arbitration --", policy.as_str());
    let machine = Arc::new(Machine::xeon_1lm_no_snc());
    let attrs = Arc::new(discovery::from_firmware(&machine, true).expect("discovery"));
    let socket0: Bitmap = "0-19".parse().expect("cpuset");
    let broker = Broker::new(machine, attrs, policy);

    // The analytics job reserved 64 GiB of fast memory up front;
    // fair-share honors the reservation, FCFS ignores it.
    let graph = broker
        .register(
            TenantSpec::new("graph500")
                .priority(Priority::Latency)
                .reserve(MemoryKind::Dram, 64 * GIB),
        )
        .expect("register graph500");
    let stream = broker
        .register(TenantSpec::new("stream").priority(Priority::Batch))
        .expect("register stream");

    // The batch job is already resident when the analytics job shows
    // up — the classic noisy-neighbor ordering.
    let vectors = broker
        .acquire(
            stream,
            &AllocRequest::new(340 * GIB)
                .criterion(attr::BANDWIDTH)
                .fallback(Fallback::PartialSpill)
                .any_locality(),
        )
        .expect("stream admitted");
    describe(&broker, "stream vectors", &vectors);
    let frontier = broker
        .acquire(
            graph,
            &AllocRequest::new(16 * GIB)
                .criterion(attr::LATENCY)
                .fallback(Fallback::PartialSpill)
                .any_locality(),
        )
        .expect("graph admitted");
    let edges = broker
        .acquire(
            graph,
            &AllocRequest::new(48 * GIB)
                .criterion(attr::LATENCY)
                .fallback(Fallback::PartialSpill)
                .any_locality(),
        )
        .expect("graph admitted");
    describe(&broker, "graph500 frontier", &frontier);
    describe(&broker, "graph500 edges", &edges);

    // Both tenants burn their working sets in the same service tick;
    // the broker charges contention where they saturate a node.
    for (tenant, name, phase) in [
        (
            graph,
            "bfs",
            Phase {
                name: "bfs".into(),
                accesses: vec![
                    BufferAccess::new(frontier.region(), 32 * GIB, 0, AccessPattern::Random),
                    BufferAccess::new(edges.region(), 64 * GIB, 0, AccessPattern::Sequential),
                ],
                threads: 20,
                initiator: socket0.clone(),
                compute_ns: 0.0,
            },
        ),
        (
            stream,
            "triad",
            Phase {
                name: "triad".into(),
                accesses: vec![BufferAccess::new(
                    vectors.region(),
                    128 * GIB,
                    0,
                    AccessPattern::Sequential,
                )],
                threads: 20,
                initiator: socket0.clone(),
                compute_ns: 0.0,
            },
        ),
    ] {
        let served = broker.run_phase(tenant, &phase).expect("phase runs");
        println!(
            "  phase {:<10} {:>9.1} ms ({:.1} ms of contention stall)",
            name,
            served.time_ns() / 1e6,
            served.stall_ns / 1e6
        );
    }

    for t in broker.tenants() {
        let held: u64 = t.held.values().sum();
        println!(
            "  {:<10} [{}] {} admits, {} clamps, {} stalls, {:.0} GiB held",
            t.name,
            t.priority.as_str(),
            t.admits,
            t.clamps,
            t.stalls,
            held as f64 / GIB as f64
        );
    }
    for lease in [vectors, frontier, edges] {
        broker.release(lease).expect("release");
    }
    println!();
}

fn main() {
    run(ArbitrationPolicy::FairShare);
    run(ArbitrationPolicy::Fcfs);
    println!("(the BFS phase keeps its DRAM under fair-share; FCFS gave it to the hog)");
}
